//! The engine's component event loop: the scheduler, the CPU and the
//! disk as [`Component`](rtx_sim::component::Component)-style lanes on a
//! global min-heap.
//!
//! [`ComponentCalendar`] replaces the engine's single
//! [`Calendar`](rtx_sim::calendar::Calendar) with one event heap per
//! lane ([`Lane::Sched`] for arrivals, [`Lane::Cpu`] for compute-burst
//! completions and stall retries, [`Lane::Disk`] for transfer
//! completions and IO retries), arbitrated by a
//! [`ComponentHeap`] keyed by each
//! lane's earliest `(time, seq)`. Sequence numbers are issued from one
//! global counter, so every event's `(time, seq)` key is globally
//! unique and the merged pop order is **bit-identical** to the single
//! calendar's — the determinism spine the sharded engine builds on —
//! while per-device timelines become separable state, which is what
//! unlocks the M-CPU/N-disk scenarios.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rtx_sim::calendar::{EventHandle, Fired};
use rtx_sim::component::{ComponentHeap, ComponentId};
use rtx_sim::time::SimTime;

/// Which component's timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The scheduler: transaction arrivals.
    Sched,
    /// The CPU: burst completions and stall retries.
    Cpu,
    /// The disk: transfer completions and IO retries.
    Disk,
}

/// Number of lanes (components) the calendar arbitrates.
pub const LANES: usize = 3;

/// Payloads that know which lane they fire on.
pub trait LaneRouted {
    /// The lane this event belongs to.
    fn lane(&self) -> Lane;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventState {
    Pending,
    Cancelled,
    Fired,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Per-lane heaps pop earliest (time, seq) first, same as the single
// calendar: BinaryHeap is a max-heap, so invert.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A lane-split future event list with a [`Calendar`]-compatible surface.
///
/// Drop-in for `Calendar<E>` wherever `E: LaneRouted`: `schedule`,
/// `cancel`, `pop`, `peek_time`, `is_pending`, `now`, `len`,
/// `scheduled_total` all behave identically, and handles are plain
/// [`EventHandle`]s (global sequence numbers). Only the internal
/// organization differs: one heap per component lane, merged through the
/// component min-heap.
///
/// [`Calendar`]: rtx_sim::calendar::Calendar
pub struct ComponentCalendar<E> {
    lanes: [BinaryHeap<Entry<E>>; LANES],
    /// Arbiter over lane heads, keyed by each lane's earliest pending
    /// `(time, seq)`.
    arbiter: ComponentHeap<(SimTime, u64)>,
    /// Lifecycle state indexed by global sequence number.
    states: Vec<EventState>,
    /// Which lane each sequence number was scheduled on.
    lane_of: Vec<u8>,
    live: usize,
    now: SimTime,
}

impl<E> Default for ComponentCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ComponentCalendar<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        ComponentCalendar {
            lanes: [BinaryHeap::new(), BinaryHeap::new(), BinaryHeap::new()],
            arbiter: ComponentHeap::new(LANES),
            states: Vec::new(),
            lane_of: Vec::new(),
            live: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the firing time of the last popped
    /// event (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events across all lanes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (fired, cancelled or pending).
    pub fn scheduled_total(&self) -> u64 {
        self.states.len() as u64
    }

    /// Schedule `payload` on its lane, to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current simulation time — scheduling
    /// into the past is always an engine bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle
    where
        E: LaneRouted,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let lane = payload.lane() as usize;
        let seq = self.states.len() as u64;
        self.states.push(EventState::Pending);
        self.lane_of.push(lane as u8);
        self.lanes[lane].push(Entry {
            time: at,
            seq,
            payload,
        });
        self.live += 1;
        self.refresh_lane(lane);
        EventHandle::from_raw(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` iff the event
    /// was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.is_null() {
            return false;
        }
        let seq = handle.raw() as usize;
        match self.states.get(seq) {
            Some(EventState::Pending) => {
                self.states[seq] = EventState::Cancelled;
                self.live -= 1;
                self.refresh_lane(self.lane_of[seq] as usize);
                true
            }
            _ => false,
        }
    }

    /// True iff `handle` refers to an event that has not yet fired nor
    /// been cancelled.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        !handle.is_null()
            && matches!(
                self.states.get(handle.raw() as usize),
                Some(EventState::Pending)
            )
    }

    /// Pop the globally earliest pending event — the minimum `(time, seq)`
    /// over all lane heads — advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        let ((time, seq), lane) = self.arbiter.peek_min()?;
        let entry = self.lanes[lane.0 as usize]
            .pop()
            .expect("arbiter key without a lane head");
        debug_assert_eq!((entry.time, entry.seq), (time, seq));
        debug_assert_eq!(self.states[seq as usize], EventState::Pending);
        self.states[seq as usize] = EventState::Fired;
        self.live -= 1;
        debug_assert!(time >= self.now, "event calendar went backwards");
        self.now = time;
        self.refresh_lane(lane.0 as usize);
        Some(Fired {
            time,
            handle: EventHandle::from_raw(seq),
            payload: entry.payload,
        })
    }

    /// Peek at the time of the next pending event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.arbiter.peek_min().map(|((time, _), _)| time)
    }

    /// Re-key `lane` in the arbiter from its earliest *pending* entry,
    /// draining tombstoned (cancelled) entries off its top.
    fn refresh_lane(&mut self, lane: usize) {
        let heap = &mut self.lanes[lane];
        while let Some(head) = heap.peek() {
            match self.states[head.seq as usize] {
                EventState::Cancelled => {
                    heap.pop();
                }
                EventState::Pending => {
                    self.arbiter
                        .set_key(ComponentId(lane as u32), (head.time, head.seq));
                    return;
                }
                EventState::Fired => unreachable!("fired event still in lane heap"),
            }
        }
        self.arbiter.clear_key(ComponentId(lane as u32));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_sim::time::SimDuration;

    /// Test payload: an id routed to a lane round-robin by construction.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ev {
        lane: Lane,
        id: u64,
    }

    impl LaneRouted for Ev {
        fn lane(&self) -> Lane {
            self.lane
        }
    }

    fn ev(lane: Lane, id: u64) -> Ev {
        Ev { lane, id }
    }

    fn ms(x: f64) -> SimTime {
        SimTime::from_ms(x)
    }

    const ALL: [Lane; 3] = [Lane::Sched, Lane::Cpu, Lane::Disk];

    #[test]
    fn pops_in_global_time_order_across_lanes() {
        let mut cal = ComponentCalendar::new();
        cal.schedule(ms(3.0), ev(Lane::Disk, 3));
        cal.schedule(ms(1.0), ev(Lane::Cpu, 1));
        cal.schedule(ms(2.0), ev(Lane::Sched, 2));
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|f| f.payload.id)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order_across_lanes() {
        // The single calendar fires same-time events FIFO by global seq;
        // the lane split must preserve that even when the events landed
        // on different lanes.
        let mut cal = ComponentCalendar::new();
        for i in 0..12u64 {
            cal.schedule(ms(5.0), ev(ALL[(i % 3) as usize], i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|f| f.payload.id)).collect();
        assert_eq!(order, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn matches_single_calendar_pop_for_pop() {
        // Differential check against the reference Calendar on a
        // deterministic pseudo-random schedule/cancel workload.
        let mut reference = rtx_sim::calendar::Calendar::new();
        let mut lanes = ComponentCalendar::new();
        let mut handles = Vec::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for i in 0..400u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = SimTime::from_micros((x >> 40) % 10_000);
            let lane = ALL[(x % 3) as usize];
            let hr = reference.schedule(at, ev(lane, i));
            let hl = lanes.schedule(at, ev(lane, i));
            assert_eq!(hr, hl, "handles must be identical sequence numbers");
            handles.push(hr);
            if x.is_multiple_of(7) {
                let victim = handles[((x >> 13) as usize) % handles.len()];
                assert_eq!(reference.cancel(victim), lanes.cancel(victim));
            }
        }
        assert_eq!(reference.len(), lanes.len());
        loop {
            assert_eq!(reference.peek_time(), lanes.peek_time());
            match (reference.pop(), lanes.pop()) {
                (None, None) => break,
                (r, l) => {
                    let (r, l) = (r.unwrap(), l.unwrap());
                    assert_eq!((r.time, r.handle, r.payload), (l.time, l.handle, l.payload));
                    assert_eq!(reference.now(), lanes.now());
                }
            }
        }
    }

    #[test]
    fn cancel_semantics_match_calendar() {
        let mut cal = ComponentCalendar::new();
        let a = cal.schedule(ms(1.0), ev(Lane::Cpu, 0));
        cal.schedule(ms(2.0), ev(Lane::Disk, 1));
        assert_eq!(cal.len(), 2);
        assert!(cal.is_pending(a));
        assert!(cal.cancel(a));
        assert!(!cal.is_pending(a));
        assert!(!cal.cancel(a), "double cancel is a no-op");
        assert_eq!(cal.peek_time(), Some(ms(2.0)));
        assert_eq!(cal.pop().unwrap().payload.id, 1);
        assert!(cal.pop().is_none());
        assert!(!cal.cancel(EventHandle::NULL));
        assert!(!cal.is_pending(EventHandle::NULL));
    }

    #[test]
    fn cancelled_lane_head_rekeys_arbiter() {
        // Cancelling the globally earliest event (a lane head) must fall
        // the arbiter back to the next-best lane.
        let mut cal = ComponentCalendar::new();
        let a = cal.schedule(ms(1.0), ev(Lane::Cpu, 0));
        cal.schedule(ms(1.5), ev(Lane::Cpu, 1));
        cal.schedule(ms(2.0), ev(Lane::Disk, 2));
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(ms(1.5)));
        assert_eq!(cal.pop().unwrap().payload.id, 1);
        assert_eq!(cal.pop().unwrap().payload.id, 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = ComponentCalendar::new();
        cal.schedule(ms(5.0), ev(Lane::Sched, 0));
        cal.pop();
        cal.schedule(ms(1.0), ev(Lane::Sched, 1));
    }

    #[test]
    fn relative_scheduling_and_totals() {
        let mut cal = ComponentCalendar::new();
        let a = cal.schedule(ms(10.0), ev(Lane::Sched, 0));
        assert!(!cal.is_empty());
        let fired = cal.pop().unwrap();
        assert_eq!(fired.handle, a);
        cal.schedule(fired.time + SimDuration::from_ms(4.0), ev(Lane::Cpu, 1));
        assert_eq!(cal.pop().unwrap().time, ms(14.0));
        assert_eq!(cal.scheduled_total(), 2);
        assert!(cal.is_empty());
        assert_eq!(cal.now(), ms(14.0));
    }
}
