//! The lock table.
//!
//! The paper analyzes write locks only ("we allow only write locks in our
//! current analysis", §3.1) but names shared locks as future work ("the
//! effect of shared locks in transactions … will affect the performance",
//! §6). The table therefore supports both modes: exclusive (write) locks
//! and shared (read) locks, with the usual compatibility matrix. Under HP
//! conflict resolution there is still **no queueing inside the table** —
//! a conflicting request either aborts the holders or the requester
//! blocks, both decided by the engine.

use rtx_preanalysis::sets::ItemId;

use crate::txn::TxnId;

/// Access mode of one lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: compatible with nothing.
    Exclusive,
}

/// Per-item lock state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Free,
    /// Shared holders, sorted by id (small vectors: contention on one
    /// item involves a handful of transactions).
    Shared(Vec<TxnId>),
    Exclusive(TxnId),
}

/// Exclusive/shared lock table over a database of fixed size, partitioned
/// into contiguous item-range shards.
///
/// Sharding is an internal acceleration, never a semantic change: the
/// per-shard held counts let [`LockTable::release_all`] and
/// [`LockTable::held_by`] skip ranges where the transaction can hold
/// nothing (most of the table, once footprints are range-local), and
/// outcomes are identical for every shard count.
#[derive(Debug, Clone)]
pub struct LockTable {
    slots: Vec<Slot>,
    held_count: usize,
    /// Exclusive ends of each shard's item range: shard `s` owns items
    /// `bounds[s-1]..bounds[s]` (with an implicit 0 start).
    shard_ends: Vec<usize>,
    /// Held (transaction, item) pairs per shard.
    shard_held: Vec<usize>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The request is granted (also covers re-requests and read→write
    /// upgrades with no other holders).
    Granted,
    /// Incompatible holders exist; under HP the engine aborts them all or
    /// the requester waits. Never contains the requester itself.
    HeldBy(Vec<TxnId>),
}

impl LockTable {
    /// A table for `db_size` items, all free, in a single shard.
    pub fn new(db_size: u64) -> Self {
        Self::with_shards(db_size, 1)
    }

    /// A table for `db_size` items partitioned into `shards` contiguous
    /// item ranges (`shard of item i = i × shards / db_size`, the same
    /// map the engine's conflict fan-out uses). Behaviour is identical
    /// for every shard count; only the scan-skipping changes.
    pub fn with_shards(db_size: u64, shards: usize) -> Self {
        let db = db_size as usize;
        let n = shards.clamp(1, db.max(1));
        // Exclusive end of shard s-1: smallest i with i*n/db >= s, i.e.
        // ceil(s*db/n) — the exact inverse of `shard_index`.
        let shard_ends = (1..=n).map(|s| (db * s).div_ceil(n)).collect();
        LockTable {
            slots: vec![Slot::Free; db],
            held_count: 0,
            shard_ends,
            shard_held: vec![0; n],
        }
    }

    /// Number of items in the database.
    pub fn db_size(&self) -> usize {
        self.slots.len()
    }

    /// Number of item-range shards the table is partitioned into.
    pub fn shards(&self) -> usize {
        self.shard_held.len()
    }

    /// The shard owning item index `i`.
    fn shard_index(&self, i: usize) -> usize {
        i * self.shard_held.len() / self.slots.len()
    }

    /// The item range of shard `s`.
    fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        let start = if s == 0 { 0 } else { self.shard_ends[s - 1] };
        start..self.shard_ends[s]
    }

    /// Number of (transaction, item) lock pairs currently held.
    pub fn held_count(&self) -> usize {
        self.held_count
    }

    /// The holders of `item` (empty if free). The second element tells
    /// whether the lock is exclusive.
    pub fn holders(&self, item: ItemId) -> (Vec<TxnId>, bool) {
        match &self.slots[item.0 as usize] {
            Slot::Free => (Vec::new(), false),
            Slot::Shared(hs) => (hs.clone(), false),
            Slot::Exclusive(h) => (vec![*h], true),
        }
    }

    /// Compatibility-checked lock request.
    ///
    /// * `Exclusive` conflicts with any other holder;
    /// * `Shared` conflicts with an exclusive holder only;
    /// * re-requests are idempotent; a shared holder requesting exclusive
    ///   is an upgrade, granted iff it is the only holder.
    pub fn request(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockOutcome {
        let shard = self.shard_index(item.0 as usize);
        let slot = &mut self.slots[item.0 as usize];
        match (&mut *slot, mode) {
            (Slot::Free, LockMode::Shared) => {
                *slot = Slot::Shared(vec![txn]);
                self.held_count += 1;
                self.shard_held[shard] += 1;
                LockOutcome::Granted
            }
            (Slot::Free, LockMode::Exclusive) => {
                *slot = Slot::Exclusive(txn);
                self.held_count += 1;
                self.shard_held[shard] += 1;
                LockOutcome::Granted
            }
            (Slot::Shared(holders), LockMode::Shared) => {
                if !holders.contains(&txn) {
                    holders.push(txn);
                    holders.sort_unstable();
                    self.held_count += 1;
                    self.shard_held[shard] += 1;
                }
                LockOutcome::Granted
            }
            (Slot::Shared(holders), LockMode::Exclusive) => {
                let others: Vec<TxnId> = holders.iter().copied().filter(|&h| h != txn).collect();
                if others.is_empty() {
                    // Upgrade: the requester is the sole shared holder.
                    debug_assert!(holders.contains(&txn));
                    *slot = Slot::Exclusive(txn);
                    LockOutcome::Granted
                } else {
                    LockOutcome::HeldBy(others)
                }
            }
            (Slot::Exclusive(h), _) if *h == txn => LockOutcome::Granted,
            (Slot::Exclusive(h), _) => LockOutcome::HeldBy(vec![*h]),
        }
    }

    /// Forcibly grant `item` to `txn` after its conflicting holders were
    /// aborted (their locks released).
    ///
    /// # Panics
    /// Panics if an incompatible holder remains — the abort path must have
    /// released the victims' locks first.
    pub fn grant_after_abort(&mut self, txn: TxnId, item: ItemId, mode: LockMode) {
        match self.request(txn, item, mode) {
            LockOutcome::Granted => {}
            LockOutcome::HeldBy(hs) => {
                panic!("lock on {item} still held by {hs:?} after the victims' abort")
            }
        }
    }

    /// Release every lock held by `txn` (commit or abort). Returns how
    /// many were released. Shards holding no locks at all are skipped
    /// without touching their slots.
    pub fn release_all(&mut self, txn: TxnId) -> usize {
        let mut released = 0;
        for s in 0..self.shard_held.len() {
            if self.shard_held[s] == 0 {
                continue;
            }
            let mut in_shard = 0;
            let range = self.shard_range(s);
            for slot in &mut self.slots[range] {
                match slot {
                    Slot::Exclusive(h) if *h == txn => {
                        *slot = Slot::Free;
                        in_shard += 1;
                    }
                    Slot::Shared(holders) => {
                        let before = holders.len();
                        holders.retain(|&h| h != txn);
                        if holders.len() != before {
                            in_shard += 1;
                            if holders.is_empty() {
                                *slot = Slot::Free;
                            }
                        }
                    }
                    _ => {}
                }
            }
            self.shard_held[s] -= in_shard;
            released += in_shard;
        }
        self.held_count -= released;
        released
    }

    /// Items on which `txn` holds a lock (either mode), in item order.
    /// Shards holding no locks at all are skipped.
    pub fn held_by(&self, txn: TxnId) -> Vec<ItemId> {
        let mut held = Vec::new();
        for s in 0..self.shard_held.len() {
            if self.shard_held[s] == 0 {
                continue;
            }
            let range = self.shard_range(s);
            for (i, slot) in range.clone().zip(&self.slots[range]) {
                let mine = match slot {
                    Slot::Free => false,
                    Slot::Exclusive(h) => *h == txn,
                    Slot::Shared(hs) => hs.contains(&txn),
                };
                if mine {
                    held.push(ItemId(i as u32));
                }
            }
        }
        held
    }

    /// Debug invariant: `held_count` and the per-shard counts match the
    /// table contents.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut actual = 0;
        let mut per_shard = vec![0usize; self.shard_held.len()];
        for (i, slot) in self.slots.iter().enumerate() {
            let here = match slot {
                Slot::Free => 0,
                Slot::Exclusive(_) => 1,
                Slot::Shared(hs) => {
                    if hs.is_empty() {
                        return Err(format!("item {i}: empty shared holder list"));
                    }
                    let mut sorted = hs.clone();
                    sorted.dedup();
                    if sorted.len() != hs.len() {
                        return Err(format!("item {i}: duplicate shared holders"));
                    }
                    hs.len()
                }
            };
            actual += here;
            per_shard[self.shard_index(i)] += here;
        }
        if actual != self.held_count {
            return Err(format!(
                "held_count {} != actual {}",
                self.held_count, actual
            ));
        }
        if per_shard != self.shard_held {
            return Err(format!(
                "shard_held {:?} != actual {per_shard:?}",
                self.shard_held
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    #[test]
    fn exclusive_grant_and_conflict() {
        let mut lt = LockTable::new(10);
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lt.holders(ItemId(3)), (vec![TxnId(1)], true));
        assert_eq!(
            lt.request(TxnId(2), ItemId(3), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1)])
        );
        assert_eq!(
            lt.request(TxnId(2), ItemId(3), Shared),
            LockOutcome::HeldBy(vec![TxnId(1)])
        );
        assert_eq!(lt.held_count(), 1);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut lt = LockTable::new(10);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(2), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(3), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(lt.held_count(), 3);
        let (holders, exclusive) = lt.holders(ItemId(0));
        assert_eq!(holders, vec![TxnId(1), TxnId(2), TxnId(3)]);
        assert!(!exclusive);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn write_blocked_by_readers_lists_all() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        lt.request(TxnId(2), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(3), ItemId(0), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1), TxnId(2)])
        );
    }

    #[test]
    fn reentrant_requests_idempotent() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(3), Exclusive);
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Shared),
            LockOutcome::Granted,
            "read after write is covered by the exclusive lock"
        );
        assert_eq!(lt.held_count(), 1);
        lt.request(TxnId(2), ItemId(4), Shared);
        assert_eq!(
            lt.request(TxnId(2), ItemId(4), Shared),
            LockOutcome::Granted
        );
        assert_eq!(lt.held_count(), 2);
    }

    #[test]
    fn upgrade_sole_reader_granted() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lt.holders(ItemId(0)), (vec![TxnId(1)], true));
        assert_eq!(lt.held_count(), 1);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_with_other_readers_conflicts() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        lt.request(TxnId(2), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(2)]),
            "the requester itself is never in the conflict list"
        );
    }

    #[test]
    fn release_all_frees_both_modes() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Exclusive);
        lt.request(TxnId(1), ItemId(5), Shared);
        lt.request(TxnId(2), ItemId(5), Shared);
        assert_eq!(lt.release_all(TxnId(1)), 2);
        assert_eq!(lt.holders(ItemId(0)), (vec![], false));
        assert_eq!(lt.holders(ItemId(5)), (vec![TxnId(2)], false));
        assert_eq!(lt.held_count(), 1);
        assert_eq!(lt.release_all(TxnId(1)), 0, "idempotent");
        lt.check_invariants().unwrap();
    }

    #[test]
    fn held_by_lists_items_in_order() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(9), Exclusive);
        lt.request(TxnId(1), ItemId(2), Shared);
        lt.request(TxnId(2), ItemId(2), Shared);
        assert_eq!(lt.held_by(TxnId(1)), vec![ItemId(2), ItemId(9)]);
        assert_eq!(lt.held_by(TxnId(2)), vec![ItemId(2)]);
        assert!(lt.held_by(TxnId(3)).is_empty());
    }

    #[test]
    fn grant_after_abort_flow() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(4), Shared);
        lt.request(TxnId(2), ItemId(4), Shared);
        // HP: T3 wants item 4 exclusively → abort both readers → grant.
        assert_eq!(
            lt.request(TxnId(3), ItemId(4), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1), TxnId(2)])
        );
        lt.release_all(TxnId(1));
        lt.release_all(TxnId(2));
        lt.grant_after_abort(TxnId(3), ItemId(4), LockMode::Exclusive);
        assert_eq!(lt.holders(ItemId(4)), (vec![TxnId(3)], true));
        lt.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "still held by")]
    fn grant_after_abort_requires_compatible_state() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(4), Exclusive);
        lt.grant_after_abort(TxnId(2), ItemId(4), LockMode::Exclusive);
    }

    /// Drive the same request/release script through tables with
    /// different shard counts; observable behaviour must be identical.
    #[test]
    fn shard_count_is_invisible() {
        let db = 13u64;
        let mut tables: Vec<LockTable> = [1usize, 2, 4, 8, 13]
            .iter()
            .map(|&s| LockTable::with_shards(db, s))
            .collect();
        // Deterministic pseudo-random script of grants and releases.
        let mut state = 0x9e3779b9u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..400 {
            let r = step();
            let txn = TxnId(r % 7);
            let item = ItemId(step() % db as u32);
            let outcomes: Vec<_> = tables
                .iter_mut()
                .map(|lt| {
                    if r % 5 == 0 {
                        lt.release_all(txn);
                        None
                    } else {
                        let mode = if r % 2 == 0 { Exclusive } else { Shared };
                        Some(lt.request(txn, item, mode))
                    }
                })
                .collect();
            assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
            let views: Vec<_> = tables
                .iter()
                .map(|lt| (lt.held_count(), lt.held_by(txn), lt.holders(item)))
                .collect();
            for v in &views[1..] {
                assert_eq!(*v, views[0], "shard views diverged: {views:?}");
            }
            for lt in &tables {
                lt.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn shards_clamped_to_db_size() {
        let lt = LockTable::with_shards(3, 8);
        assert_eq!(lt.shards(), 3);
        let lt = LockTable::with_shards(100, 4);
        assert_eq!(lt.shards(), 4);
        assert_eq!(LockTable::new(10).shards(), 1);
    }
}
