//! The lock table.
//!
//! The paper analyzes write locks only ("we allow only write locks in our
//! current analysis", §3.1) but names shared locks as future work ("the
//! effect of shared locks in transactions … will affect the performance",
//! §6). The table therefore supports both modes: exclusive (write) locks
//! and shared (read) locks, with the usual compatibility matrix. Under HP
//! conflict resolution there is still **no queueing inside the table** —
//! a conflicting request either aborts the holders or the requester
//! blocks, both decided by the engine.

use rtx_preanalysis::sets::ItemId;

use crate::txn::TxnId;

/// Access mode of one lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock: compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock: compatible with nothing.
    Exclusive,
}

/// Per-item lock state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Free,
    /// Shared holders, sorted by id (small vectors: contention on one
    /// item involves a handful of transactions).
    Shared(Vec<TxnId>),
    Exclusive(TxnId),
}

/// Exclusive/shared lock table over a database of fixed size.
#[derive(Debug, Clone)]
pub struct LockTable {
    slots: Vec<Slot>,
    held_count: usize,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The request is granted (also covers re-requests and read→write
    /// upgrades with no other holders).
    Granted,
    /// Incompatible holders exist; under HP the engine aborts them all or
    /// the requester waits. Never contains the requester itself.
    HeldBy(Vec<TxnId>),
}

impl LockTable {
    /// A table for `db_size` items, all free.
    pub fn new(db_size: u64) -> Self {
        LockTable {
            slots: vec![Slot::Free; db_size as usize],
            held_count: 0,
        }
    }

    /// Number of items in the database.
    pub fn db_size(&self) -> usize {
        self.slots.len()
    }

    /// Number of (transaction, item) lock pairs currently held.
    pub fn held_count(&self) -> usize {
        self.held_count
    }

    /// The holders of `item` (empty if free). The second element tells
    /// whether the lock is exclusive.
    pub fn holders(&self, item: ItemId) -> (Vec<TxnId>, bool) {
        match &self.slots[item.0 as usize] {
            Slot::Free => (Vec::new(), false),
            Slot::Shared(hs) => (hs.clone(), false),
            Slot::Exclusive(h) => (vec![*h], true),
        }
    }

    /// Compatibility-checked lock request.
    ///
    /// * `Exclusive` conflicts with any other holder;
    /// * `Shared` conflicts with an exclusive holder only;
    /// * re-requests are idempotent; a shared holder requesting exclusive
    ///   is an upgrade, granted iff it is the only holder.
    pub fn request(&mut self, txn: TxnId, item: ItemId, mode: LockMode) -> LockOutcome {
        let slot = &mut self.slots[item.0 as usize];
        match (&mut *slot, mode) {
            (Slot::Free, LockMode::Shared) => {
                *slot = Slot::Shared(vec![txn]);
                self.held_count += 1;
                LockOutcome::Granted
            }
            (Slot::Free, LockMode::Exclusive) => {
                *slot = Slot::Exclusive(txn);
                self.held_count += 1;
                LockOutcome::Granted
            }
            (Slot::Shared(holders), LockMode::Shared) => {
                if !holders.contains(&txn) {
                    holders.push(txn);
                    holders.sort_unstable();
                    self.held_count += 1;
                }
                LockOutcome::Granted
            }
            (Slot::Shared(holders), LockMode::Exclusive) => {
                let others: Vec<TxnId> = holders.iter().copied().filter(|&h| h != txn).collect();
                if others.is_empty() {
                    // Upgrade: the requester is the sole shared holder.
                    debug_assert!(holders.contains(&txn));
                    *slot = Slot::Exclusive(txn);
                    LockOutcome::Granted
                } else {
                    LockOutcome::HeldBy(others)
                }
            }
            (Slot::Exclusive(h), _) if *h == txn => LockOutcome::Granted,
            (Slot::Exclusive(h), _) => LockOutcome::HeldBy(vec![*h]),
        }
    }

    /// Forcibly grant `item` to `txn` after its conflicting holders were
    /// aborted (their locks released).
    ///
    /// # Panics
    /// Panics if an incompatible holder remains — the abort path must have
    /// released the victims' locks first.
    pub fn grant_after_abort(&mut self, txn: TxnId, item: ItemId, mode: LockMode) {
        match self.request(txn, item, mode) {
            LockOutcome::Granted => {}
            LockOutcome::HeldBy(hs) => {
                panic!("lock on {item} still held by {hs:?} after the victims' abort")
            }
        }
    }

    /// Release every lock held by `txn` (commit or abort). Returns how
    /// many were released.
    pub fn release_all(&mut self, txn: TxnId) -> usize {
        let mut released = 0;
        for slot in &mut self.slots {
            match slot {
                Slot::Exclusive(h) if *h == txn => {
                    *slot = Slot::Free;
                    released += 1;
                }
                Slot::Shared(holders) => {
                    let before = holders.len();
                    holders.retain(|&h| h != txn);
                    if holders.len() != before {
                        released += 1;
                        if holders.is_empty() {
                            *slot = Slot::Free;
                        }
                    }
                }
                _ => {}
            }
        }
        self.held_count -= released;
        released
    }

    /// Items on which `txn` holds a lock (either mode), in item order.
    pub fn held_by(&self, txn: TxnId) -> Vec<ItemId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let held = match slot {
                    Slot::Free => false,
                    Slot::Exclusive(h) => *h == txn,
                    Slot::Shared(hs) => hs.contains(&txn),
                };
                held.then_some(ItemId(i as u32))
            })
            .collect()
    }

    /// Debug invariant: `held_count` matches the table contents.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut actual = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Slot::Free => {}
                Slot::Exclusive(_) => actual += 1,
                Slot::Shared(hs) => {
                    if hs.is_empty() {
                        return Err(format!("item {i}: empty shared holder list"));
                    }
                    let mut sorted = hs.clone();
                    sorted.dedup();
                    if sorted.len() != hs.len() {
                        return Err(format!("item {i}: duplicate shared holders"));
                    }
                    actual += hs.len();
                }
            }
        }
        if actual != self.held_count {
            return Err(format!(
                "held_count {} != actual {}",
                self.held_count, actual
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::{Exclusive, Shared};

    #[test]
    fn exclusive_grant_and_conflict() {
        let mut lt = LockTable::new(10);
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lt.holders(ItemId(3)), (vec![TxnId(1)], true));
        assert_eq!(
            lt.request(TxnId(2), ItemId(3), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1)])
        );
        assert_eq!(
            lt.request(TxnId(2), ItemId(3), Shared),
            LockOutcome::HeldBy(vec![TxnId(1)])
        );
        assert_eq!(lt.held_count(), 1);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut lt = LockTable::new(10);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(2), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(3), ItemId(0), Shared),
            LockOutcome::Granted
        );
        assert_eq!(lt.held_count(), 3);
        let (holders, exclusive) = lt.holders(ItemId(0));
        assert_eq!(holders, vec![TxnId(1), TxnId(2), TxnId(3)]);
        assert!(!exclusive);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn write_blocked_by_readers_lists_all() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        lt.request(TxnId(2), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(3), ItemId(0), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1), TxnId(2)])
        );
    }

    #[test]
    fn reentrant_requests_idempotent() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(3), Exclusive);
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lt.request(TxnId(1), ItemId(3), Shared),
            LockOutcome::Granted,
            "read after write is covered by the exclusive lock"
        );
        assert_eq!(lt.held_count(), 1);
        lt.request(TxnId(2), ItemId(4), Shared);
        assert_eq!(
            lt.request(TxnId(2), ItemId(4), Shared),
            LockOutcome::Granted
        );
        assert_eq!(lt.held_count(), 2);
    }

    #[test]
    fn upgrade_sole_reader_granted() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lt.holders(ItemId(0)), (vec![TxnId(1)], true));
        assert_eq!(lt.held_count(), 1);
        lt.check_invariants().unwrap();
    }

    #[test]
    fn upgrade_with_other_readers_conflicts() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Shared);
        lt.request(TxnId(2), ItemId(0), Shared);
        assert_eq!(
            lt.request(TxnId(1), ItemId(0), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(2)]),
            "the requester itself is never in the conflict list"
        );
    }

    #[test]
    fn release_all_frees_both_modes() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(0), Exclusive);
        lt.request(TxnId(1), ItemId(5), Shared);
        lt.request(TxnId(2), ItemId(5), Shared);
        assert_eq!(lt.release_all(TxnId(1)), 2);
        assert_eq!(lt.holders(ItemId(0)), (vec![], false));
        assert_eq!(lt.holders(ItemId(5)), (vec![TxnId(2)], false));
        assert_eq!(lt.held_count(), 1);
        assert_eq!(lt.release_all(TxnId(1)), 0, "idempotent");
        lt.check_invariants().unwrap();
    }

    #[test]
    fn held_by_lists_items_in_order() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(9), Exclusive);
        lt.request(TxnId(1), ItemId(2), Shared);
        lt.request(TxnId(2), ItemId(2), Shared);
        assert_eq!(lt.held_by(TxnId(1)), vec![ItemId(2), ItemId(9)]);
        assert_eq!(lt.held_by(TxnId(2)), vec![ItemId(2)]);
        assert!(lt.held_by(TxnId(3)).is_empty());
    }

    #[test]
    fn grant_after_abort_flow() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(4), Shared);
        lt.request(TxnId(2), ItemId(4), Shared);
        // HP: T3 wants item 4 exclusively → abort both readers → grant.
        assert_eq!(
            lt.request(TxnId(3), ItemId(4), Exclusive),
            LockOutcome::HeldBy(vec![TxnId(1), TxnId(2)])
        );
        lt.release_all(TxnId(1));
        lt.release_all(TxnId(2));
        lt.grant_after_abort(TxnId(3), ItemId(4), LockMode::Exclusive);
        assert_eq!(lt.holders(ItemId(4)), (vec![TxnId(3)], true));
        lt.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "still held by")]
    fn grant_after_abort_requires_compatible_state() {
        let mut lt = LockTable::new(10);
        lt.request(TxnId(1), ItemId(4), Exclusive);
        lt.grant_after_abort(TxnId(2), ItemId(4), LockMode::Exclusive);
    }
}
