//! Execution traces: a per-run log of scheduling decisions.
//!
//! The paper's arguments are about *decisions* — who preempts whom, which
//! victim an abort destroys, which transaction fills an IO wait. A
//! [`Trace`] records every such decision with its timestamp so tests can
//! assert on scheduling behaviour directly and examples can render
//! schedules (see `examples/schedule_trace.rs`).

use std::fmt;

use rtx_preanalysis::sets::ItemId;
use rtx_sim::time::SimTime;

use crate::txn::TxnId;

/// One scheduling decision or lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A transaction entered the system.
    Arrival {
        /// The transaction.
        txn: TxnId,
        /// Its absolute deadline.
        deadline: SimTime,
    },
    /// A transaction was put on the CPU.
    Dispatch {
        /// The transaction.
        txn: TxnId,
        /// True iff it was chosen by `IOwait-schedule` (a secondary).
        secondary: bool,
    },
    /// The running transaction was preempted.
    Preempt {
        /// The preempted transaction.
        txn: TxnId,
    },
    /// The runner aborted a conflicting lock holder (HP wound).
    Abort {
        /// The aborted holder.
        victim: TxnId,
        /// The transaction whose lock request caused it.
        by: TxnId,
        /// The contended item.
        item: ItemId,
    },
    /// The requester blocked on a higher-priority holder (wound-wait).
    LockWait {
        /// The blocked requester.
        txn: TxnId,
        /// The contended item.
        item: ItemId,
    },
    /// A transaction issued a disk request.
    IoIssued {
        /// The transaction.
        txn: TxnId,
        /// True iff the disk was busy and the request queued.
        queued: bool,
    },
    /// A disk transfer completed.
    IoDone {
        /// The transaction whose transfer finished.
        txn: TxnId,
    },
    /// A disk transfer failed with an injected transient error; the
    /// transaction backs off before retrying.
    IoFault {
        /// The transaction whose transfer failed.
        txn: TxnId,
        /// Retries already spent on this transfer (0 = first failure).
        retries: u32,
    },
    /// A transaction exhausted its IO retry budget and was
    /// aborted-and-restarted.
    IoGaveUp {
        /// The transaction.
        txn: TxnId,
    },
    /// A transaction was rejected on arrival by admission control.
    Rejected {
        /// The transaction.
        txn: TxnId,
        /// Its absolute deadline (infeasible at arrival).
        deadline: SimTime,
    },
    /// A transaction committed.
    Commit {
        /// The transaction.
        txn: TxnId,
        /// Signed lateness at commit, ms.
        lateness_ms: f64,
    },
    /// The deadlock resolver broke a lock-wait cycle.
    DeadlockResolved {
        /// The aborted cycle member.
        victim: TxnId,
    },
    /// One scheduler pass (a `reschedule` invocation) completed; the
    /// counters are this pass's deltas of the run-wide scheduler-overhead
    /// tallies (see [`crate::metrics::SchedStats`]).
    SchedulerPass {
        /// `Policy::priority` evaluations this pass performed.
        evals: u64,
        /// Priority lookups this pass answered from the cache.
        cache_hits: u64,
        /// Pairwise conflict tests this pass requested.
        pair_checks: u64,
        /// Cached priorities this pass invalidated via per-pair
        /// conflict stamps.
        invalidations: u64,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// What happened.
    pub event: TraceEvent,
}

/// The full event log of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        self.records.push(TraceRecord { at, event });
    }

    /// All records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records concerning one transaction.
    pub fn for_txn(&self, txn: TxnId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| match &r.event {
            TraceEvent::Arrival { txn: t, .. }
            | TraceEvent::Dispatch { txn: t, .. }
            | TraceEvent::Preempt { txn: t }
            | TraceEvent::LockWait { txn: t, .. }
            | TraceEvent::IoIssued { txn: t, .. }
            | TraceEvent::IoDone { txn: t }
            | TraceEvent::IoFault { txn: t, .. }
            | TraceEvent::IoGaveUp { txn: t }
            | TraceEvent::Rejected { txn: t, .. }
            | TraceEvent::Commit { txn: t, .. }
            | TraceEvent::DeadlockResolved { victim: t } => *t == txn,
            TraceEvent::Abort { victim, by, .. } => *victim == txn || *by == txn,
            TraceEvent::SchedulerPass { .. } => false,
        })
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Total aborts recorded.
    pub fn aborts(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Abort { .. }))
    }

    /// Total dispatches recorded.
    pub fn dispatches(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Dispatch { .. }))
    }

    /// Total commits recorded.
    pub fn commits(&self) -> usize {
        self.count(|e| matches!(e, TraceEvent::Commit { .. }))
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] ", format!("{}", self.at))?;
        match &self.event {
            TraceEvent::Arrival { txn, deadline } => {
                write!(f, "{txn} arrives (deadline {deadline})")
            }
            TraceEvent::Dispatch { txn, secondary } => {
                if *secondary {
                    write!(f, "{txn} dispatched via IOwait-schedule")
                } else {
                    write!(f, "{txn} dispatched as TH")
                }
            }
            TraceEvent::Preempt { txn } => write!(f, "{txn} preempted"),
            TraceEvent::Abort { victim, by, item } => {
                write!(f, "{by} aborts {victim} over {item}")
            }
            TraceEvent::LockWait { txn, item } => {
                write!(f, "{txn} waits for {item}")
            }
            TraceEvent::IoIssued { txn, queued } => {
                if *queued {
                    write!(f, "{txn} queues for the disk")
                } else {
                    write!(f, "{txn} starts a disk transfer")
                }
            }
            TraceEvent::IoDone { txn } => write!(f, "{txn} disk transfer done"),
            TraceEvent::IoFault { txn, retries } => {
                write!(f, "{txn} disk transfer FAILED (retry {})", retries + 1)
            }
            TraceEvent::IoGaveUp { txn } => {
                write!(f, "{txn} exhausted its IO retry budget; restarting")
            }
            TraceEvent::Rejected { txn, deadline } => {
                write!(f, "{txn} rejected at admission (deadline {deadline})")
            }
            TraceEvent::Commit { txn, lateness_ms } => {
                if *lateness_ms > 0.0 {
                    write!(f, "{txn} commits LATE by {lateness_ms:.1} ms")
                } else {
                    write!(f, "{txn} commits on time ({:.1} ms early)", -lateness_ms)
                }
            }
            TraceEvent::DeadlockResolved { victim } => {
                write!(f, "deadlock resolved by aborting {victim}")
            }
            TraceEvent::SchedulerPass {
                evals,
                cache_hits,
                pair_checks,
                invalidations,
            } => {
                write!(
                    f,
                    "scheduler pass: {evals} evals, {cache_hits} cache hits, \
                     {pair_checks} pair checks, {invalidations} invalidations"
                )
            }
        }
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: f64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn push_and_query() {
        let mut trace = Trace::new();
        trace.push(
            t(0.0),
            TraceEvent::Arrival {
                txn: TxnId(0),
                deadline: t(100.0),
            },
        );
        trace.push(
            t(0.0),
            TraceEvent::Dispatch {
                txn: TxnId(0),
                secondary: false,
            },
        );
        trace.push(
            t(5.0),
            TraceEvent::Abort {
                victim: TxnId(1),
                by: TxnId(0),
                item: ItemId(3),
            },
        );
        trace.push(
            t(80.0),
            TraceEvent::Commit {
                txn: TxnId(0),
                lateness_ms: -20.0,
            },
        );
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.aborts(), 1);
        assert_eq!(trace.commits(), 1);
        assert_eq!(trace.dispatches(), 1);
        assert_eq!(trace.for_txn(TxnId(0)).count(), 4, "abort names both");
        assert_eq!(trace.for_txn(TxnId(1)).count(), 1);
        assert_eq!(trace.for_txn(TxnId(9)).count(), 0);
    }

    #[test]
    fn display_renders_lines() {
        let mut trace = Trace::new();
        trace.push(
            t(1.0),
            TraceEvent::LockWait {
                txn: TxnId(2),
                item: ItemId(7),
            },
        );
        trace.push(
            t(2.0),
            TraceEvent::Commit {
                txn: TxnId(2),
                lateness_ms: 3.5,
            },
        );
        let s = format!("{trace}");
        assert!(s.contains("T2 waits for i7"), "{s}");
        assert!(s.contains("LATE by 3.5 ms"), "{s}");
    }
}
