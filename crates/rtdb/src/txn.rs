//! Run-time transaction state.
//!
//! Each transaction is an instance of a pre-analyzed type: an ordered list
//! of items to update, a per-update CPU time, a predrawn IO pattern and a
//! deadline. The engine drives it through a per-update pipeline
//! (lock → optional IO → compute) and the scheduler inspects its progress
//! to price aborting it.

use rtx_preanalysis::sets::{DataSet, ItemId};
use rtx_preanalysis::table::TypeId;
use rtx_sim::time::{SimDuration, SimTime};

use crate::locks::LockMode;

/// Identifier of a transaction instance (dense, in arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Stage of the current update's pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// About to acquire the write lock for the current item.
    Lock,
    /// Consuming CPU to roll back a victim before continuing with the
    /// current update (recovery work charged to this transaction).
    Recover,
    /// Waiting for / performing the disk access of the current update.
    Io,
    /// Consuming the current update's CPU burst.
    Compute,
}

/// Scheduling state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Runnable: waiting for the CPU (fresh, preempted, or back from IO).
    Ready,
    /// Currently on the CPU.
    Running,
    /// Waiting in the disk queue.
    IoQueued,
    /// Its disk transfer is in progress.
    IoActive,
    /// Its last disk transfer failed with an injected transient error; the
    /// transaction is off the disk, holding its locks, waiting out an
    /// exponential-backoff delay before re-queueing the transfer.
    IoBackoff,
    /// Blocked waiting for a write lock held by a *higher-priority*
    /// transaction (HP wound-wait: a requester only aborts lower-priority
    /// holders). Under CCA this state is unreachable — the paper's "no
    /// lock wait" property — but EDF-HP's unrestricted IO-wait secondaries
    /// can hit locks held by the IO-blocked `TH` and must wait.
    LockWait,
    /// Rejected on arrival by admission control; never executed. A
    /// terminal state, like [`TxnState::Committed`], but counted in the
    /// `rejected` outcome class instead of commit/miss statistics.
    Rejected,
    /// Committed; out of the system.
    Committed,
}

impl TxnState {
    /// Eligible for the CPU — what the pick loops accept. The engine's
    /// dense state-tag vector tests this on the bare tag without
    /// dereferencing the full transaction record.
    pub fn is_runnable(self) -> bool {
        matches!(self, TxnState::Ready | TxnState::Running)
    }
}

/// A decision point in an instance's execution (the §3.2.2 extension the
/// paper leaves to future work: "we didn't simulate the effects of
/// conditionally unsafe and conditionally conflict").
///
/// The instance's concrete items already reflect the branch its program
/// semantics will take, but the *analysis* cannot know that until the
/// decision point executes: `might_access` starts at the pessimistic
/// `full` set and narrows to `narrowed` once `after_update` updates have
/// completed. A restart re-widens it.
#[derive(Debug, Clone)]
pub struct DecisionSpec {
    /// Number of completed updates after which the decision executes.
    pub after_update: usize,
    /// The pessimistic pre-decision `mightaccess` (the type's data set).
    pub full: DataSet,
    /// The post-decision `mightaccess` (taken branch only).
    pub narrowed: DataSet,
}

/// One live transaction.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Instance id (arrival order).
    pub id: TxnId,
    /// The transaction type this is an instance of.
    pub ty: TypeId,
    /// Arrival (= release) time.
    pub arrival: SimTime,
    /// Absolute deadline (soft: missing it never drops the transaction).
    pub deadline: SimTime,
    /// True isolated service time (CPU + predrawn IO), used for the
    /// deadline assignment.
    pub resource_time: SimDuration,
    /// Ordered items this instance updates (the type's program order).
    pub items: Vec<ItemId>,
    /// Predrawn "does update k need a disk access" flags (empty for main
    /// memory residence).
    pub io_pattern: Vec<bool>,
    /// Access mode per update. Empty means every update writes — the
    /// paper's §3.1 model; the §6 shared-lock extension populates it.
    pub modes: Vec<LockMode>,
    /// CPU time per update for this instance's type.
    pub update_time: SimDuration,
    /// Everything this instance might access — the oracle `mightaccess`
    /// (for straight-line types: the full item set).
    pub might_access: DataSet,

    // ---- mutable execution state ----
    /// Scheduling state.
    pub state: TxnState,
    /// Updates fully completed since the last (re)start.
    pub progress: usize,
    /// Pipeline stage of the current update.
    pub stage: Stage,
    /// Remaining CPU of the current burst (recovery or compute).
    pub cpu_left: SimDuration,
    /// When the current burst started (valid while `Running`).
    pub burst_start: SimTime,
    /// Items locked (= accessed, either mode) since the last restart: the
    /// oracle `hasaccessed`.
    pub accessed: DataSet,
    /// Items exclusively locked (written) since the last restart — the
    /// subset of `accessed` whose loss forces rollbacks of readers too.
    pub written: DataSet,
    /// Useful CPU consumed since the last restart — the *effective service
    /// time* of §3.3.1 (recovery work excluded).
    pub service: SimDuration,
    /// Times this transaction has been aborted and restarted.
    pub restarts: u32,
    /// The item this transaction is lock-waiting on (`LockWait` only).
    pub waiting_for: Option<ItemId>,
    /// Optional decision point narrowing `might_access` mid-execution.
    pub decision: Option<DecisionSpec>,
    /// Criticality class (0 = normal). The §6 "multiple criticalness"
    /// extension: policies may order classes lexicographically (see
    /// `rtx-core`'s `Criticality` wrapper); the engine itself treats it
    /// as opaque but reports per-class miss rates.
    pub criticality: u8,
    /// Set when aborted during an active disk transfer: the transfer
    /// completes ("it is not deleted until it releases the disk") and only
    /// then does the transaction re-enter the ready queue from scratch.
    pub doomed: bool,
    /// When `doomed` was set: from here until the transfer releases the
    /// disk, the hold time is wasted and attributed to metrics.
    pub doomed_at: SimTime,
    /// Consecutive injected-fault retries of the *current* update's
    /// transfer or compute burst (an update retries one or the other,
    /// never both at once). Reset when the attempt succeeds and on
    /// restart.
    pub io_retries: u32,
    /// Monotonic token identifying the latest backoff (disk or CPU) this
    /// transaction armed; a retry event carrying a stale token is
    /// ignored (the transaction was aborted and restarted while the
    /// event was in flight).
    pub retry_token: u64,
    /// Commit time, once committed.
    pub finish: Option<SimTime>,
}

impl Transaction {
    /// Total number of updates this instance performs.
    pub fn total_updates(&self) -> usize {
        self.items.len()
    }

    /// True iff the transaction is still in the system (neither committed
    /// nor rejected at admission).
    pub fn is_active(&self) -> bool {
        !matches!(self.state, TxnState::Committed | TxnState::Rejected)
    }

    /// True iff the transaction can be put on the CPU right now.
    pub fn is_runnable(&self) -> bool {
        self.state.is_runnable()
    }

    /// True iff the transaction has partially executed — it holds locks
    /// whose release would destroy work (the paper's *P list* membership
    /// test).
    pub fn is_partially_executed(&self) -> bool {
        self.is_active() && !self.accessed.is_empty()
    }

    /// The item of the current update.
    ///
    /// # Panics
    /// Panics if the transaction already performed all its updates.
    pub fn current_item(&self) -> ItemId {
        self.items[self.progress]
    }

    /// Does the current update need a disk access?
    pub fn current_needs_io(&self) -> bool {
        self.io_pattern.get(self.progress).copied().unwrap_or(false)
    }

    /// Lock mode of the current update (exclusive when no modes are set —
    /// the paper's write-only model).
    pub fn current_mode(&self) -> LockMode {
        self.modes
            .get(self.progress)
            .copied()
            .unwrap_or(LockMode::Exclusive)
    }

    /// Might this transaction still *write* into any item of `set`?
    /// (Mode-aware `mightaccess` test; with no modes every access writes.)
    pub fn might_write_into(&self, set: &DataSet) -> bool {
        if self.modes.is_empty() {
            return self.might_access.intersects(set);
        }
        self.items.iter().zip(&self.modes).any(|(item, mode)| {
            *mode == LockMode::Exclusive && self.might_access.contains(*item) && set.contains(*item)
        })
    }

    /// Mode-aware conflict test between two transactions' refinement
    /// states: they conflict iff some item both might access is written by
    /// at least one of them. With write-only workloads this degenerates to
    /// the plain `mightaccess` intersection the paper uses.
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        self.might_write_into(&other.might_access) || other.might_write_into(&self.might_access)
    }

    /// Reset execution state for a restart after an abort. Keeps identity,
    /// items, IO pattern and deadline ("transactions that do not meet
    /// their deadlines are not dropped").
    pub fn reset_for_restart(&mut self) {
        self.progress = 0;
        self.stage = Stage::Lock;
        self.cpu_left = SimDuration::ZERO;
        self.accessed.clear();
        self.written.clear();
        self.service = SimDuration::ZERO;
        self.restarts += 1;
        self.waiting_for = None;
        self.io_retries = 0;
        // A restart re-executes from the root of the transaction tree, so
        // the analysis is pessimistic again.
        if let Some(d) = &self.decision {
            self.might_access = d.full.clone();
        }
    }

    /// Called by the engine when an update completes: execute the decision
    /// point, narrowing `might_access`, if this was the decision update.
    /// Returns `true` iff a narrowing happened (the caller must invalidate
    /// conflict-state caches keyed on `might_access`).
    pub fn maybe_execute_decision(&mut self) -> bool {
        if let Some(d) = &self.decision {
            if self.progress == d.after_update {
                self.might_access = d.narrowed.clone();
                return true;
            }
        }
        false
    }

    /// The *effective service time* as of `now`: CPU work that would be
    /// lost if this transaction were aborted right now. While the
    /// transaction is on the CPU in a compute burst, the in-flight part of
    /// the burst accrues continuously — otherwise a preemption would
    /// retroactively raise the preemptor's penalty of conflict and invert
    /// priorities (violating Lemma 1).
    pub fn effective_service(&self, now: SimTime) -> SimDuration {
        if self.state == TxnState::Running && self.stage == Stage::Compute {
            self.service + now.since(self.burst_start)
        } else {
            self.service
        }
    }

    /// Signed lateness (finish − deadline) in ms; `None` until committed.
    pub fn lateness_ms(&self) -> Option<f64> {
        self.finish.map(|f| f.signed_ms_since(self.deadline))
    }

    /// True iff the transaction committed after its deadline.
    pub fn missed_deadline(&self) -> Option<bool> {
        self.lateness_ms().map(|l| l > 0.0)
    }
}

/// Is `partial` unsafe (or conditionally unsafe) with respect to
/// `candidate`? Oracle evaluation over the instances' item sets (§3.3.1).
///
/// Mode-aware: `partial` must be rolled back iff it *wrote* something the
/// candidate might access, or it accessed (in any mode) something the
/// candidate might *write*. For the paper's write-only workload both
/// conditions collapse to `hasaccessed(partial) ∩ mightaccess(candidate)`.
///
/// Lives here (rather than in `rtx-core`'s penalty module, which
/// re-exports it) so the engine's conflict memoization can share the one
/// definition the cached verdicts must stay bit-identical to.
pub fn is_unsafe_with(partial: &Transaction, candidate: &Transaction) -> bool {
    partial.written.intersects(&candidate.might_access)
        || candidate.might_write_into(&partial.accessed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn() -> Transaction {
        Transaction {
            id: TxnId(1),
            ty: TypeId(3),
            arrival: SimTime::from_ms(10.0),
            deadline: SimTime::from_ms(100.0),
            resource_time: SimDuration::from_ms(40.0),
            items: vec![ItemId(1), ItemId(2)],
            io_pattern: vec![false, true],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: [1u32, 2].into_iter().collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn fresh_transaction_state() {
        let t = txn();
        assert!(t.is_active());
        assert!(t.is_runnable());
        assert!(!t.is_partially_executed(), "no locks yet");
        assert_eq!(t.total_updates(), 2);
        assert_eq!(t.current_item(), ItemId(1));
        assert!(!t.current_needs_io());
        assert_eq!(t.lateness_ms(), None);
    }

    #[test]
    fn partially_executed_requires_locks() {
        let mut t = txn();
        t.accessed.insert(ItemId(1));
        assert!(t.is_partially_executed());
        t.state = TxnState::Committed;
        assert!(!t.is_partially_executed());
    }

    #[test]
    fn io_pattern_indexed_by_progress() {
        let mut t = txn();
        assert!(!t.current_needs_io());
        t.progress = 1;
        assert!(t.current_needs_io());
        assert_eq!(t.current_item(), ItemId(2));
    }

    #[test]
    fn restart_resets_execution_but_keeps_identity() {
        let mut t = txn();
        t.progress = 1;
        t.stage = Stage::Compute;
        t.accessed.insert(ItemId(1));
        t.service = SimDuration::from_ms(12.0);
        t.io_retries = 2;
        t.reset_for_restart();
        assert_eq!(t.io_retries, 0, "retry budget is per-incarnation");
        assert_eq!(t.progress, 0);
        assert_eq!(t.stage, Stage::Lock);
        assert!(t.accessed.is_empty());
        assert_eq!(t.service, SimDuration::ZERO);
        assert_eq!(t.restarts, 1);
        assert_eq!(t.deadline, SimTime::from_ms(100.0), "deadline unchanged");
        assert_eq!(t.items.len(), 2, "items unchanged");
    }

    #[test]
    fn lateness_sign() {
        let mut t = txn();
        t.finish = Some(SimTime::from_ms(150.0));
        assert_eq!(t.lateness_ms(), Some(50.0));
        assert_eq!(t.missed_deadline(), Some(true));
        t.finish = Some(SimTime::from_ms(80.0));
        assert_eq!(t.lateness_ms(), Some(-20.0));
        assert_eq!(t.missed_deadline(), Some(false));
    }

    #[test]
    fn runnable_states() {
        let mut t = txn();
        for (state, runnable) in [
            (TxnState::Ready, true),
            (TxnState::Running, true),
            (TxnState::IoQueued, false),
            (TxnState::IoActive, false),
            (TxnState::IoBackoff, false),
            (TxnState::LockWait, false),
            (TxnState::Rejected, false),
            (TxnState::Committed, false),
        ] {
            t.state = state;
            assert_eq!(t.is_runnable(), runnable, "{state:?}");
        }
    }
}
