//! Typed errors for configuration validation and run execution.
//!
//! A malformed experiment configuration used to surface as a stringly-typed
//! `Err(String)` or a panic deep inside the workload generator; a poisoned
//! replication used to take the whole batch down with it. This module gives
//! both failure classes names: [`ConfigError`] enumerates every parameter
//! check performed by [`crate::config::SimConfig::validate`], and
//! [`RunError`] is what the hardened runner
//! ([`crate::runner::run_seeds_checked`]) records for a seed that could not
//! produce a summary — validation failure, panic, or watchdog trip — while
//! the surviving seeds merge normally.

use std::error::Error;
use std::fmt;

/// A specific reason a [`crate::config::SimConfig`] is invalid.
///
/// Mirrors, case by case, the checks in
/// [`crate::config::SimConfig::validate`]; the `Display` text matches the
/// historical string messages so existing error-message assertions keep
/// passing.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `workload.num_types` is zero.
    ZeroTypes,
    /// `workload.db_size` is zero.
    ZeroDbSize,
    /// `workload.updates_mean` is not positive.
    NonPositiveUpdatesMean,
    /// `workload.updates_std` is negative.
    NegativeUpdatesStd,
    /// Slack bounds violate `0 ≤ min ≤ max`.
    BadSlackRange {
        /// Configured lower bound.
        min: f64,
        /// Configured upper bound.
        max: f64,
    },
    /// A probability parameter is outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The out-of-range value.
        value: f64,
    },
    /// `workload.update_time_classes_ms` is empty or contains a
    /// non-positive entry.
    BadUpdateTimeClasses,
    /// `system.abort_cost_ms` is negative.
    NegativeAbortCost,
    /// `system.starvation_threshold` is zero.
    ZeroStarvationThreshold,
    /// `disk.access_time_ms` is not positive.
    NonPositiveDiskAccessTime,
    /// `run.arrival_rate_tps` is not positive.
    NonPositiveArrivalRate,
    /// `run.num_transactions` is zero.
    ZeroTransactions,
    /// A non-empty fault plan is configured but the database is
    /// main-memory resident (no disk to fault).
    FaultsWithoutDisk,
    /// The fault plan itself is malformed (reason inside).
    BadFaultPlan(String),
    /// The admission-control parameters are malformed (reason inside).
    BadAdmission(String),
    /// The watchdog limits are malformed (reason inside).
    BadWatchdog(String),
    /// `system.shards` is outside the supported `1..=8` range.
    BadShardCount {
        /// The configured shard count.
        shards: usize,
    },
    /// The serving-layer configuration is malformed (reason inside).
    /// Produced by `rtx_serve::Server::start`, not by
    /// [`crate::config::SimConfig::validate`].
    BadServe(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTypes => write!(f, "num_types must be positive"),
            ConfigError::ZeroDbSize => write!(f, "db_size must be positive"),
            ConfigError::NonPositiveUpdatesMean => write!(f, "updates_mean must be positive"),
            ConfigError::NegativeUpdatesStd => write!(f, "updates_std cannot be negative"),
            ConfigError::BadSlackRange { min, max } => write!(
                f,
                "slack range must satisfy 0 <= min <= max (got min {min}, max {max})"
            ),
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1] (got {value})")
            }
            ConfigError::BadUpdateTimeClasses => write!(f, "update time classes must be positive"),
            ConfigError::NegativeAbortCost => write!(f, "abort cost cannot be negative"),
            ConfigError::ZeroStarvationThreshold => {
                write!(f, "starvation_threshold must be positive")
            }
            ConfigError::NonPositiveDiskAccessTime => {
                write!(f, "disk access time must be positive")
            }
            ConfigError::NonPositiveArrivalRate => write!(f, "arrival rate must be positive"),
            ConfigError::ZeroTransactions => write!(f, "num_transactions must be positive"),
            ConfigError::FaultsWithoutDisk => {
                write!(f, "fault plan configured but system has no disk")
            }
            ConfigError::BadFaultPlan(why) => write!(f, "invalid fault plan: {why}"),
            ConfigError::BadAdmission(why) => write!(f, "invalid admission control: {why}"),
            ConfigError::BadWatchdog(why) => write!(f, "invalid watchdog: {why}"),
            ConfigError::BadShardCount { shards } => {
                write!(f, "shards must be in 1..=8 (got {shards})")
            }
            ConfigError::BadServe(why) => write!(f, "invalid serve config: {why}"),
        }
    }
}

impl Error for ConfigError {}

/// Why one replication failed to produce a [`crate::metrics::RunSummary`].
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed validation before the run started.
    Config(ConfigError),
    /// The run panicked; the payload message is preserved.
    Panicked {
        /// The panic payload, if it was a string; `"<non-string panic>"`
        /// otherwise.
        message: String,
    },
    /// The watchdog tripped: the event loop processed more events than
    /// `watchdog.max_events` allows.
    WatchdogEvents {
        /// The configured event limit.
        limit: u64,
    },
    /// The watchdog tripped: simulated time passed `watchdog.max_sim_ms`.
    WatchdogSimTime {
        /// The configured limit, ms.
        limit_ms: f64,
        /// Simulated time when the limit was detected, ms.
        reached_ms: f64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Panicked { message } => write!(f, "replication panicked: {message}"),
            RunError::WatchdogEvents { limit } => {
                write!(f, "watchdog: event budget of {limit} events exhausted")
            }
            RunError::WatchdogSimTime {
                limit_ms,
                reached_ms,
            } => write!(
                f,
                "watchdog: simulated time {reached_ms:.3}ms passed the {limit_ms:.3}ms limit"
            ),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_messages() {
        assert_eq!(
            ConfigError::ZeroTypes.to_string(),
            "num_types must be positive"
        );
        assert_eq!(
            ConfigError::ZeroTransactions.to_string(),
            "num_transactions must be positive"
        );
        assert_eq!(
            ConfigError::ProbabilityOutOfRange {
                field: "read_probability",
                value: 1.5
            }
            .to_string(),
            "read_probability must be in [0,1] (got 1.5)"
        );
    }

    #[test]
    fn run_error_wraps_config_error() {
        let e: RunError = ConfigError::ZeroDbSize.into();
        assert_eq!(e, RunError::Config(ConfigError::ZeroDbSize));
        assert!(e.to_string().contains("db_size"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn watchdog_errors_format() {
        let e = RunError::WatchdogEvents { limit: 10 };
        assert!(e.to_string().contains("10 events"));
        let e = RunError::WatchdogSimTime {
            limit_ms: 100.0,
            reached_ms: 150.5,
        };
        assert!(e.to_string().contains("150.500ms"));
    }
}
