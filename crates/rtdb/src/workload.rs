//! Workload generation (§4):
//!
//! * 50 transaction types; "the number of objects updated by a transaction
//!   type is chosen from a normal distribution and the actual database
//!   items are chosen uniformly from the range of database size. These
//!   items and the number are regenerated at each run";
//! * Poisson arrivals; the type of each arriving instance is uniform over
//!   the types;
//! * `Deadline = arrival + resource_time × (1 + slack%)`, slack uniform in
//!   `[min_slack, max_slack]`;
//! * disk residence predraws each update's IO need with probability 1/10,
//!   so a restarted transaction re-executes the *same* program.

use rtx_preanalysis::program::Program;
use rtx_preanalysis::sets::{DataSet, ItemId};
use rtx_preanalysis::table::TypeId;
use rtx_sim::dist::{
    bernoulli, exponential, sample_distinct, uniform_below, uniform_range, NormalSampler,
};
use rtx_sim::rng::{StreamSeeder, Xoshiro256};
use rtx_sim::time::{SimDuration, SimTime};

use crate::config::SimConfig;
use crate::locks::LockMode;
use crate::txn::{Stage, Transaction, TxnId, TxnState};

/// One generated transaction type: an ordered item list plus derived data.
#[derive(Debug, Clone)]
pub struct TxnType {
    /// Dense type id.
    pub id: TypeId,
    /// Ordered items every instance updates.
    pub items: Vec<ItemId>,
    /// The items as a set — the type's (straight-line) `mightaccess`.
    pub data_set: DataSet,
    /// Per-update access mode (empty = all writes, the paper's model).
    pub modes: Vec<LockMode>,
    /// Per-update CPU time (class-dependent in §4.2).
    pub update_time: SimDuration,
}

impl TxnType {
    /// As a straight-line [`Program`], so the full pre-analysis machinery
    /// can be applied to generated workloads too.
    pub fn to_program(&self) -> Program {
        Program::straight_line(format!("T{}", self.id.0), self.items.iter().copied())
    }
}

/// The per-run table of transaction types.
#[derive(Debug, Clone)]
pub struct TypeTable {
    types: Vec<TxnType>,
}

impl TypeTable {
    /// Generate the table for one run. Uses the seeder's `"types"` stream,
    /// so the table depends only on the run seed (it is "regenerated at
    /// each run").
    pub fn generate(cfg: &SimConfig, seeder: &StreamSeeder) -> Self {
        let mut rng = seeder.stream("types");
        let mut normal = NormalSampler::new();
        let w = &cfg.workload;
        let types = (0..w.num_types)
            .map(|k| {
                let raw = normal.sample(&mut rng, w.updates_mean, w.updates_std);
                let count = (raw.round() as i64).clamp(1, w.db_size as i64) as usize;
                let items: Vec<ItemId> = sample_distinct(&mut rng, w.db_size, count)
                    .into_iter()
                    .map(|i| ItemId(i as u32))
                    .collect();
                let data_set = items.iter().copied().collect();
                // Shared-lock extension: each update reads (rather than
                // writes) with probability `read_probability`; the mode is
                // part of the program, so it lives on the type.
                let modes: Vec<LockMode> = if w.read_probability > 0.0 {
                    items
                        .iter()
                        .map(|_| {
                            if bernoulli(&mut rng, w.read_probability) {
                                LockMode::Shared
                            } else {
                                LockMode::Exclusive
                            }
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                TxnType {
                    id: TypeId(k as u32),
                    items,
                    data_set,
                    modes,
                    update_time: w.update_time_for_type(k),
                }
            })
            .collect();
        TypeTable { types }
    }

    /// The generated types.
    pub fn types(&self) -> &[TxnType] {
        &self.types
    }

    /// One type by id.
    pub fn get(&self, id: TypeId) -> &TxnType {
        &self.types[id.0 as usize]
    }

    /// Number of types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True iff the table is empty (never for valid configs).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

/// Generates the arrival stream: types, arrival instants, slacks and IO
/// patterns for each instance, in arrival order.
pub struct ArrivalGenerator<'c> {
    cfg: &'c SimConfig,
    table: &'c TypeTable,
    arrivals_rng: Xoshiro256,
    pick_rng: Xoshiro256,
    slack_rng: Xoshiro256,
    io_rng: Xoshiro256,
    crit_rng: Xoshiro256,
    next_arrival: SimTime,
    issued: usize,
}

impl<'c> ArrivalGenerator<'c> {
    /// New generator over independent RNG streams.
    pub fn new(cfg: &'c SimConfig, table: &'c TypeTable, seeder: &StreamSeeder) -> Self {
        ArrivalGenerator {
            cfg,
            table,
            arrivals_rng: seeder.stream("arrivals"),
            pick_rng: seeder.stream("type-pick"),
            slack_rng: seeder.stream("slack"),
            io_rng: seeder.stream("io-pattern"),
            crit_rng: seeder.stream("criticality"),
            next_arrival: SimTime::ZERO,
            issued: 0,
        }
    }

    /// Number of instances issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// True iff the run's transaction budget is exhausted.
    pub fn exhausted(&self) -> bool {
        self.issued >= self.cfg.run.num_transactions
    }

    /// Generate the next transaction instance, or `None` when the budget
    /// of `num_transactions` is exhausted.
    pub fn next_transaction(&mut self) -> Option<Transaction> {
        if self.exhausted() {
            return None;
        }
        // Exponential inter-arrival (Poisson process); mean 1/λ seconds.
        let gap_s = exponential(&mut self.arrivals_rng, 1.0 / self.cfg.run.arrival_rate_tps);
        self.next_arrival += SimDuration::from_secs(gap_s);
        let arrival = self.next_arrival;

        // "the transaction type for arriving transaction is chosen
        // uniformly from the range of types"
        let ty = self.table.get(TypeId(
            uniform_below(&mut self.pick_rng, self.table.len() as u64) as u32,
        ));

        // Predraw the IO pattern so restarts replay the same program.
        let io_pattern: Vec<bool> = match &self.cfg.system.disk {
            None => Vec::new(),
            Some(d) => (0..ty.items.len())
                .map(|_| bernoulli(&mut self.io_rng, d.access_prob))
                .collect(),
        };

        // True isolated service time: CPU plus this instance's IO.
        let io_time: SimDuration = match &self.cfg.system.disk {
            None => SimDuration::ZERO,
            Some(d) => d.access_time() * io_pattern.iter().filter(|&&b| b).count() as u64,
        };
        let resource_time = ty.update_time * ty.items.len() as u64 + io_time;

        // Deadline = arrival + resource_time × (1 + slack).
        let slack = uniform_range(
            &mut self.slack_rng,
            self.cfg.workload.min_slack,
            self.cfg.workload.max_slack,
        );
        let deadline = arrival + resource_time.scale(1.0 + slack);

        // §6 extension: some instances carry higher criticality.
        let criticality = if bernoulli(
            &mut self.crit_rng,
            self.cfg.workload.high_criticality_fraction,
        ) {
            1
        } else {
            0
        };

        let id = TxnId(self.issued as u32);
        self.issued += 1;
        Some(Transaction {
            id,
            ty: ty.id,
            arrival,
            deadline,
            resource_time,
            items: ty.items.clone(),
            io_pattern,
            modes: ty.modes.clone(),
            update_time: ty.update_time,
            might_access: ty.data_set.clone(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeder(seed: u64) -> StreamSeeder {
        StreamSeeder::new(seed)
    }

    #[test]
    fn type_table_shape() {
        let cfg = SimConfig::mm_base();
        let table = TypeTable::generate(&cfg, &seeder(1));
        assert_eq!(table.len(), 50);
        for ty in table.types() {
            assert!(!ty.items.is_empty());
            assert!(ty.items.len() <= 30, "clamped to db size");
            assert_eq!(ty.data_set.len(), ty.items.len(), "items distinct");
            assert!(ty.items.iter().all(|i| i.0 < 30));
            assert_eq!(ty.update_time, SimDuration::from_ms(4.0));
        }
        // Mean update count should be near 20 (normal(20,10) clamped).
        let mean = table.types().iter().map(|t| t.items.len()).sum::<usize>() as f64 / 50.0;
        assert!((mean - 20.0).abs() < 4.0, "mean items {mean}");
    }

    #[test]
    fn type_table_regenerated_per_seed() {
        let cfg = SimConfig::mm_base();
        let t1 = TypeTable::generate(&cfg, &seeder(1));
        let t1b = TypeTable::generate(&cfg, &seeder(1));
        let t2 = TypeTable::generate(&cfg, &seeder(2));
        // Same seed → identical tables.
        for (a, b) in t1.types().iter().zip(t1b.types()) {
            assert_eq!(a.items, b.items);
        }
        // Different seeds → (almost surely) different tables.
        assert!(t1
            .types()
            .iter()
            .zip(t2.types())
            .any(|(a, b)| a.items != b.items));
    }

    #[test]
    fn high_variance_classes() {
        let cfg = SimConfig::mm_high_variance();
        let table = TypeTable::generate(&cfg, &seeder(3));
        let t0 = table.get(TypeId(0));
        let t1 = table.get(TypeId(1));
        let t2 = table.get(TypeId(2));
        assert_eq!(t0.update_time, SimDuration::from_ms(0.4));
        assert_eq!(t1.update_time, SimDuration::from_ms(4.0));
        assert_eq!(t2.update_time, SimDuration::from_ms(40.0));
    }

    #[test]
    fn arrivals_are_poisson_like() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.arrival_rate_tps = 10.0;
        cfg.run.num_transactions = 5000;
        let table = TypeTable::generate(&cfg, &seeder(4));
        let mut g = ArrivalGenerator::new(&cfg, &table, &seeder(4));
        let mut last = SimTime::ZERO;
        let mut gaps = Vec::new();
        while let Some(t) = g.next_transaction() {
            assert!(t.arrival >= last, "arrivals monotone");
            gaps.push(t.arrival.since(last).as_secs());
            last = t.arrival;
        }
        assert_eq!(gaps.len(), 5000);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean gap {mean}");
        assert!(g.exhausted());
        assert!(g.next_transaction().is_none());
    }

    #[test]
    fn deadline_formula_bounds() {
        let cfg = SimConfig::mm_base();
        let table = TypeTable::generate(&cfg, &seeder(5));
        let mut g = ArrivalGenerator::new(&cfg, &table, &seeder(5));
        for _ in 0..500 {
            let t = g.next_transaction().unwrap();
            let rt = t.resource_time;
            // resource time for MM = items × 4 ms
            assert_eq!(rt, t.update_time * t.items.len() as u64);
            let lo = t.arrival + rt.scale(1.2);
            let hi = t.arrival + rt.scale(9.0);
            assert!(
                t.deadline >= lo && t.deadline <= hi,
                "deadline {:?} outside [{:?}, {:?}]",
                t.deadline,
                lo,
                hi
            );
        }
    }

    #[test]
    fn disk_instances_have_io_patterns() {
        let cfg = SimConfig::disk_base();
        let table = TypeTable::generate(&cfg, &seeder(6));
        let mut g = ArrivalGenerator::new(&cfg, &table, &seeder(6));
        let mut io_updates = 0usize;
        let mut total_updates = 0usize;
        for _ in 0..300 {
            let t = g.next_transaction().unwrap();
            assert_eq!(t.io_pattern.len(), t.items.len());
            io_updates += t.io_pattern.iter().filter(|&&b| b).count();
            total_updates += t.items.len();
            // Resource time includes the predrawn IO.
            let io_count = t.io_pattern.iter().filter(|&&b| b).count() as u64;
            let expect =
                t.update_time * t.items.len() as u64 + SimDuration::from_ms(25.0) * io_count;
            assert_eq!(t.resource_time, expect);
        }
        let rate = io_updates as f64 / total_updates as f64;
        assert!((rate - 0.1).abs() < 0.02, "io rate {rate}");
    }

    #[test]
    fn mm_instances_have_no_io() {
        let cfg = SimConfig::mm_base();
        let table = TypeTable::generate(&cfg, &seeder(7));
        let mut g = ArrivalGenerator::new(&cfg, &table, &seeder(7));
        let t = g.next_transaction().unwrap();
        assert!(t.io_pattern.is_empty());
        assert!(!t.current_needs_io());
    }

    #[test]
    fn type_to_program_round_trip() {
        let cfg = SimConfig::mm_base();
        let table = TypeTable::generate(&cfg, &seeder(8));
        let ty = table.get(TypeId(0));
        let program = ty.to_program();
        assert!(program.is_straight_line());
        assert_eq!(program.data_set(), ty.data_set);
    }

    #[test]
    fn instance_type_distribution_uniform() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 10_000;
        let table = TypeTable::generate(&cfg, &seeder(9));
        let mut g = ArrivalGenerator::new(&cfg, &table, &seeder(9));
        let mut counts = vec![0u32; 50];
        while let Some(t) = g.next_transaction() {
            counts[t.ty.0 as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 200).abs() < 80, "type counts {counts:?}");
        }
    }
}
