//! The incremental scheduling core's acceleration state.
//!
//! The engine's hot loop — `pick_next` → `Policy::priority` →
//! `penalty_of_conflict` — used to rescan every transaction slot at every
//! scheduling point, giving O(active × P-list) set operations per event.
//! [`ConflictAccel`] makes the per-event cost proportional to *what
//! changed* instead:
//!
//! * an explicitly maintained, id-sorted **P-list** (the partially
//!   executed transactions) replaces the per-event scan of all slots;
//! * a **pairwise conflict cache** memoizes the static `conflicts_with`
//!   test and the dynamic `is_unsafe_with` test, gated by per-transaction
//!   version counters so a pair is only re-examined after one side's
//!   access sets actually changed;
//! * a global **conflict epoch** stamps every P-list membership or access
//!   set change, letting the engine's priority cache invalidate exactly
//!   the entries whose declared inputs ([`crate::policy::PriorityDeps`])
//!   moved.
//!
//! Correctness contract: every cached answer is **bit-identical** to a
//! fresh recomputation. The engine's [`CacheMode::Verify`] mode asserts
//! this at every single use, and `tests/incremental_equivalence.rs`
//! drives it over randomized workloads.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::txn::{is_unsafe_with, Transaction, TxnId};

/// How the engine evaluates priorities and conflict relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Use the maintained P-list, the pairwise conflict cache and the
    /// epoch-invalidated priority cache (the default; production path).
    #[default]
    Incremental,
    /// Recompute everything from scratch at every scheduling point — the
    /// pre-incremental reference engine. Used as the oracle in
    /// equivalence tests and as the "cold" side of benchmarks.
    AlwaysRecompute,
    /// Run incrementally but recompute fresh alongside every cache read
    /// and assert bit-identity. Slow; tests only.
    Verify,
}

/// Deterministic, allocation-free hasher for packed `u64` pair keys
/// (splitmix64 finalizer). The std `SipHash` default is safe but slow for
/// this innermost-loop map, and hash *iteration order* is never observed,
/// so a fixed-key hasher keeps runs reproducible across platforms.
#[derive(Default)]
struct PairKeyHasher(u64);

impl Hasher for PairKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; only the u64 fast path is exercised.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = self.0 ^ n;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

type PairMap = HashMap<u64, PairEntry, BuildHasherDefault<PairKeyHasher>>;

/// One memoized pair verdict, stamped with the version counters of the
/// inputs it was computed from.
#[derive(Clone, Copy)]
struct PairEntry {
    versions: (u64, u64),
    result: bool,
}

#[inline]
fn pair_key(a: TxnId, b: TxnId) -> u64 {
    (u64::from(a.0) << 32) | u64::from(b.0)
}

/// Incrementally maintained conflict state (see the module docs).
///
/// Owned by the engine; policies reach it read-only through
/// [`crate::policy::SystemView`]. All mutation goes through the engine's
/// state-transition bookkeeping, which is what makes the version/epoch
/// stamps trustworthy.
pub struct ConflictAccel {
    /// Partially executed transactions, sorted by id (ascending). Because
    /// the engine's `active` list is always in arrival = id order, this
    /// reproduces the exact iteration order of the full-scan P-list.
    plist: Vec<TxnId>,
    /// Bumped when a transaction's `might_access` is reassigned (decision
    /// narrowing, restart re-widening). Gates the static pair cache.
    might_version: Vec<u64>,
    /// Bumped when a transaction's `accessed`/`written` sets grow or are
    /// cleared. Gates the dynamic unsafe-pair cache.
    access_version: Vec<u64>,
    /// Bumped on *any* own-state change that could move this
    /// transaction's priority (progress, restarts, set changes). Part of
    /// the priority-cache key.
    own_version: Vec<u64>,
    /// Bumped on every conflict-state change anywhere in the system
    /// (P-list membership, access-set growth, `might_access`
    /// reassignment). Invalidates `PriorityDeps::ConflictState` entries.
    epoch: u64,
    static_pairs: RefCell<PairMap>,
    unsafe_pairs: RefCell<PairMap>,
    pair_checks: Cell<u64>,
    pair_cache_hits: Cell<u64>,
}

impl ConflictAccel {
    pub(crate) fn new(capacity: usize) -> Self {
        ConflictAccel {
            plist: Vec::new(),
            might_version: Vec::with_capacity(capacity),
            access_version: Vec::with_capacity(capacity),
            own_version: Vec::with_capacity(capacity),
            epoch: 0,
            static_pairs: RefCell::new(PairMap::default()),
            unsafe_pairs: RefCell::new(PairMap::default()),
            pair_checks: Cell::new(0),
            pair_cache_hits: Cell::new(0),
        }
    }

    /// Register a newly arrived transaction (ids are dense and arrive in
    /// order, so this is a push).
    pub(crate) fn register(&mut self, id: TxnId) {
        debug_assert_eq!(id.0 as usize, self.might_version.len());
        self.might_version.push(0);
        self.access_version.push(0);
        self.own_version.push(0);
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    pub(crate) fn own_version(&self, id: TxnId) -> u64 {
        self.own_version[id.0 as usize]
    }

    pub(crate) fn bump_own(&mut self, id: TxnId) {
        self.own_version[id.0 as usize] += 1;
    }

    /// A lock grant grew `id`'s `accessed`/`written` sets. Joins the
    /// P-list on the first grant since (re)start.
    pub(crate) fn note_access_growth(&mut self, id: TxnId, was_partial: bool) {
        self.access_version[id.0 as usize] += 1;
        self.own_version[id.0 as usize] += 1;
        self.epoch += 1;
        if !was_partial {
            let pos = self.plist.binary_search(&id).unwrap_err();
            self.plist.insert(pos, id);
        }
    }

    /// `id`'s access sets were cleared (abort/restart or commit) and — on
    /// restart with a decision point — `might_access` was re-widened. The
    /// transaction leaves the P-list.
    pub(crate) fn note_sets_cleared(&mut self, id: TxnId) {
        self.access_version[id.0 as usize] += 1;
        self.might_version[id.0 as usize] += 1;
        self.own_version[id.0 as usize] += 1;
        self.epoch += 1;
        let pos = self
            .plist
            .binary_search(&id)
            .expect("cleared transaction held locks, so it was on the P-list");
        self.plist.remove(pos);
    }

    /// `id` executed its decision point, narrowing `might_access`.
    pub(crate) fn note_narrowed(&mut self, id: TxnId) {
        self.might_version[id.0 as usize] += 1;
        self.epoch += 1;
    }

    /// The maintained P-list, ascending by id.
    pub(crate) fn plist(&self) -> &[TxnId] {
        &self.plist
    }

    pub(crate) fn plist_len(&self) -> usize {
        self.plist.len()
    }

    /// Memoized `is_unsafe_with(partial, candidate)` (directional), valid
    /// while `partial`'s access sets and `candidate`'s `might_access` are
    /// unchanged.
    pub(crate) fn is_unsafe(&self, partial: &Transaction, candidate: &Transaction) -> bool {
        self.pair_checks.set(self.pair_checks.get() + 1);
        let versions = (
            self.access_version[partial.id.0 as usize],
            self.might_version[candidate.id.0 as usize],
        );
        match self
            .unsafe_pairs
            .borrow_mut()
            .entry(pair_key(partial.id, candidate.id))
        {
            Entry::Occupied(mut e) => {
                if e.get().versions == versions {
                    self.pair_cache_hits.set(self.pair_cache_hits.get() + 1);
                    e.get().result
                } else {
                    let result = is_unsafe_with(partial, candidate);
                    e.insert(PairEntry { versions, result });
                    result
                }
            }
            Entry::Vacant(v) => {
                let result = is_unsafe_with(partial, candidate);
                v.insert(PairEntry { versions, result });
                result
            }
        }
    }

    /// Memoized symmetric `a.conflicts_with(b)`, valid while both sides'
    /// `might_access` sets are unchanged.
    pub(crate) fn conflicts(&self, a: &Transaction, b: &Transaction) -> bool {
        self.pair_checks.set(self.pair_checks.get() + 1);
        let (lo, hi) = if a.id <= b.id { (a, b) } else { (b, a) };
        let versions = (
            self.might_version[lo.id.0 as usize],
            self.might_version[hi.id.0 as usize],
        );
        match self.static_pairs.borrow_mut().entry(pair_key(lo.id, hi.id)) {
            Entry::Occupied(mut e) => {
                if e.get().versions == versions {
                    self.pair_cache_hits.set(self.pair_cache_hits.get() + 1);
                    e.get().result
                } else {
                    let result = lo.conflicts_with(hi);
                    e.insert(PairEntry { versions, result });
                    result
                }
            }
            Entry::Vacant(v) => {
                let result = lo.conflicts_with(hi);
                v.insert(PairEntry { versions, result });
                result
            }
        }
    }

    pub(crate) fn pair_checks(&self) -> u64 {
        self.pair_checks.get()
    }

    pub(crate) fn pair_cache_hits(&self) -> u64 {
        self.pair_cache_hits.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{Stage, TxnState};
    use rtx_preanalysis::sets::DataSet;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::ItemId;
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, might: &[u32]) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(100.0),
            resource_time: SimDuration::from_ms(80.0),
            items: might.iter().map(|&i| ItemId(i)).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: might.iter().map(|&i| ItemId(i)).collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn plist_stays_sorted() {
        let mut a = ConflictAccel::new(4);
        for i in 0..4 {
            a.register(TxnId(i));
        }
        a.note_access_growth(TxnId(2), false);
        a.note_access_growth(TxnId(0), false);
        a.note_access_growth(TxnId(3), false);
        assert_eq!(a.plist(), &[TxnId(0), TxnId(2), TxnId(3)]);
        a.note_sets_cleared(TxnId(2));
        assert_eq!(a.plist(), &[TxnId(0), TxnId(3)]);
        assert_eq!(a.plist_len(), 2);
    }

    #[test]
    fn growth_of_a_partial_does_not_duplicate() {
        let mut a = ConflictAccel::new(2);
        a.register(TxnId(0));
        a.note_access_growth(TxnId(0), false);
        a.note_access_growth(TxnId(0), true);
        assert_eq!(a.plist(), &[TxnId(0)]);
    }

    #[test]
    fn unsafe_cache_invalidates_on_version_bump() {
        let mut a = ConflictAccel::new(2);
        a.register(TxnId(0));
        a.register(TxnId(1));
        let mut partial = mk(0, &[1, 2]);
        let candidate = mk(1, &[1, 9]);
        // No overlap with accessed yet → safe; the verdict is cached.
        assert!(!a.is_unsafe(&partial, &candidate));
        assert!(!a.is_unsafe(&partial, &candidate));
        assert_eq!(a.pair_cache_hits(), 1);
        // The partial writes item 1. Without the version bump the stale
        // "safe" verdict would be returned; with it, recomputed.
        partial.accessed.insert(ItemId(1));
        partial.written.insert(ItemId(1));
        a.note_access_growth(TxnId(0), false);
        assert!(a.is_unsafe(&partial, &candidate));
        assert_eq!(a.pair_checks(), 3);
    }

    #[test]
    fn static_cache_is_symmetric_and_version_gated() {
        let mut a = ConflictAccel::new(2);
        a.register(TxnId(0));
        a.register(TxnId(1));
        let mut x = mk(0, &[1, 2]);
        let y = mk(1, &[2, 3]);
        assert!(a.conflicts(&x, &y));
        assert!(a.conflicts(&y, &x), "symmetric lookup hits the same entry");
        assert_eq!(a.pair_cache_hits(), 1);
        // Narrow x away from the overlap; the verdict flips.
        x.might_access = DataSet::from_items([ItemId(1)]);
        a.note_narrowed(TxnId(0));
        assert!(!a.conflicts(&x, &y));
    }

    #[test]
    fn epoch_advances_on_conflict_state_changes() {
        let mut a = ConflictAccel::new(1);
        a.register(TxnId(0));
        let e0 = a.epoch();
        a.note_access_growth(TxnId(0), false);
        let e1 = a.epoch();
        assert!(e1 > e0);
        a.note_narrowed(TxnId(0));
        assert!(a.epoch() > e1);
        let e2 = a.epoch();
        a.note_sets_cleared(TxnId(0));
        assert!(a.epoch() > e2);
    }
}
