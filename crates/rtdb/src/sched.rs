//! The incremental scheduling core's acceleration state.
//!
//! The engine's hot loop — `pick_next` → `Policy::priority` →
//! `penalty_of_conflict` — used to rescan every transaction slot at every
//! scheduling point, giving O(active × P-list) set operations per event.
//! [`ConflictAccel`] makes the per-event cost proportional to *what
//! changed* instead:
//!
//! * an explicitly maintained, id-sorted **P-list** (the partially
//!   executed transactions) replaces the per-event scan of all slots;
//! * a **pairwise conflict cache** (direct-mapped, lossy) memoizes the
//!   static `conflicts_with` test and the dynamic `is_unsafe_with` test,
//!   gated by per-transaction version counters so a pair is only
//!   re-examined after one side's access sets actually changed;
//! * a **per-transaction pair stamp** records, for every transaction,
//!   the last time the set of partially executed transactions unsafe with
//!   respect to *it* changed. A conflict event at transaction `C`
//!   (lock-grant growth, abort/commit set clearing, decision narrowing)
//!   bumps only the stamps of the transactions whose relation to `C`
//!   actually moved, so the engine's priority cache invalidates exactly
//!   those [`crate::policy::PriorityDeps::ConflictState`] entries instead
//!   of epoch-flushing every one of them.
//!
//! Correctness contract: every cached answer is **bit-identical** to a
//! fresh recomputation. The engine's [`CacheMode::Verify`] mode asserts
//! this at every single use, and `tests/incremental_equivalence.rs`
//! drives it over randomized workloads.

use std::cell::Cell;

use rtx_preanalysis::sets::DataSet;
use rtx_sim::time::SimTime;

use crate::arena::{SchedArena, SlotState, TxnSlot};
use crate::policy::Priority;
use crate::txn::{is_unsafe_with, Transaction, TxnId};

/// How the engine evaluates priorities and conflict relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Use the maintained P-list, the pairwise conflict cache and the
    /// epoch-invalidated priority cache (the default; production path).
    #[default]
    Incremental,
    /// Recompute everything from scratch at every scheduling point — the
    /// pre-incremental reference engine. Used as the oracle in
    /// equivalence tests and as the "cold" side of benchmarks.
    AlwaysRecompute,
    /// Run incrementally but recompute fresh alongside every cache read
    /// and assert bit-identity. Slow; tests only.
    Verify,
}

/// splitmix64 finalizer: a deterministic full-avalanche mix for packed
/// `u64` pair keys, fixed across platforms so runs stay reproducible.
#[inline]
fn mix64(n: u64) -> u64 {
    let mut z = n;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One memoized pair verdict, tagged with the pair key it belongs to and
/// the version counters of the inputs it was computed from.
#[derive(Clone, Copy)]
struct PairSlot {
    key: u64,
    versions: (u64, u64),
    result: bool,
}

impl PairSlot {
    /// No transaction ever gets id `u32::MAX` (ids are dense from 0), so
    /// this key matches no real pair.
    const EMPTY: PairSlot = PairSlot {
        key: u64::MAX,
        versions: (0, 0),
        result: false,
    };
}

/// Smallest pair-cache size: 2^13 = 8192 slots × 32 B = 256 KiB per
/// cache — the original fixed table, still right for small MPLs.
const PAIR_CACHE_MIN_BITS: u32 = 13;

/// Largest pair-cache size: 2^18 slots × 32 B = 8 MiB per cache. Beyond
/// this the table stops being cache-resident and bigger only buys
/// compulsory misses.
const PAIR_CACHE_MAX_BITS: u32 = 18;

/// Two-way (primary + victim slot), lossy pair-verdict cache, sized by
/// MPL.
///
/// Each packed pair key hashes to a primary slot `s`; its victim way is
/// the adjacent slot `s ^ 1`, so both ways share one 64-byte cache line.
/// A colliding pair displaces the primary occupant into the victim way
/// instead of dropping it, which halves thrash between two hot pairs
/// that hash together. Losing an entry only costs a recomputation —
/// verdicts are pure functions of the two transactions' sets, so a
/// lossy cache cannot change results, only hit rates. Compared to a
/// `HashMap` memo this removes probe chains, occupancy bookkeeping and
/// insertion rehashing from the innermost loop — which matters precisely
/// in high-contention bursts, where version churn drives the hit rate
/// toward zero and every check would otherwise pay full map overhead for
/// nothing. `Cell` slots keep lookups `&self` without `RefCell` traffic.
///
/// The slot count is the next power of two covering a `4 × MPL²` pair
/// budget, clamped to `[2^13, 2^18]`: the hot working set is
/// partials × candidates, which grows quadratically with MPL, and the
/// fixed 8192-slot table was the dominant eviction source at MPL 1024
/// (~2.1 M evictions per burst run).
struct PairCache {
    slots: Box<[Cell<PairSlot>]>,
    /// `64 - log2(slot count)`: `slot_of` takes the top bits of the
    /// mixed key.
    shift: u32,
    /// Times `put` dropped a live entry for a *different* pair from the
    /// cache entirely (displaced out of the victim way) — the collision/
    /// thrash signal. Refreshing a slot that already holds the same pair
    /// (version churn) is not an eviction, and neither is the
    /// primary→victim displacement itself.
    evictions: Cell<u64>,
    /// Victim-way lookups performed after a primary-slot key miss.
    probes: Cell<u64>,
}

impl PairCache {
    fn with_bits(bits: u32) -> Self {
        debug_assert!((1..=63).contains(&bits));
        PairCache {
            slots: vec![Cell::new(PairSlot::EMPTY); 1 << bits].into_boxed_slice(),
            shift: 64 - bits,
            evictions: Cell::new(0),
            probes: Cell::new(0),
        }
    }

    /// Slot-count bits for a run admitting at most `capacity` concurrent
    /// transactions: next power of two ≥ the `4 × capacity²` pair
    /// budget, clamped to `[PAIR_CACHE_MIN_BITS, PAIR_CACHE_MAX_BITS]`.
    fn bits_for_capacity(capacity: usize) -> u32 {
        let budget = capacity
            .saturating_mul(capacity)
            .saturating_mul(4)
            .max(1)
            .next_power_of_two();
        budget
            .trailing_zeros()
            .clamp(PAIR_CACHE_MIN_BITS, PAIR_CACHE_MAX_BITS)
    }

    fn sized_for(capacity: usize) -> Self {
        Self::with_bits(Self::bits_for_capacity(capacity))
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (mix64(key) >> self.shift) as usize
    }

    #[inline]
    fn get(&self, key: u64, versions: (u64, u64)) -> Option<bool> {
        let s = self.slot_of(key);
        let a = self.slots[s].get();
        if a.key == key {
            return (a.versions == versions).then_some(a.result);
        }
        // Primary way holds a different pair: probe the victim way.
        self.probes.set(self.probes.get() + 1);
        let b = self.slots[s ^ 1].get();
        (b.key == key && b.versions == versions).then_some(b.result)
    }

    #[inline]
    fn put(&self, key: u64, versions: (u64, u64), result: bool) {
        let fresh = PairSlot {
            key,
            versions,
            result,
        };
        let s = self.slot_of(key);
        let primary = &self.slots[s];
        if primary.get().key == key {
            primary.set(fresh);
            return;
        }
        let victim = &self.slots[s ^ 1];
        if victim.get().key == key {
            victim.set(fresh);
            return;
        }
        if primary.get().key == u64::MAX {
            primary.set(fresh);
            return;
        }
        // Displace the primary occupant into the victim way; whatever
        // lived there leaves the cache.
        let dropped = victim.get().key;
        victim.set(primary.get());
        primary.set(fresh);
        if dropped != u64::MAX {
            self.evictions.set(self.evictions.get() + 1);
        }
    }

    fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    fn probes(&self) -> u64 {
        self.probes.get()
    }
}

#[inline]
fn pair_key(a: TxnId, b: TxnId) -> u64 {
    (u64::from(a.0) << 32) | u64::from(b.0)
}

/// Incrementally maintained conflict state (see the module docs).
///
/// Owned by the engine; policies reach it read-only through
/// [`crate::policy::SystemView`]. All mutation goes through the engine's
/// state-transition bookkeeping, which is what makes the version/epoch
/// stamps trustworthy.
pub struct ConflictAccel {
    /// Partially executed transactions, sorted by id (ascending). Because
    /// the engine's `active` list is always in arrival = id order, this
    /// reproduces the exact iteration order of the full-scan P-list.
    plist: Vec<TxnId>,
    /// Dense per-transaction hot state: the version counters gating the
    /// pair caches (`might_version`, `access_version`, `own_version`),
    /// the per-transaction conflict stamp (`pair_stamp` — bumped by the
    /// engine's targeted walks via [`Self::bump_pair_stamp`] for exactly
    /// the transactions whose unsafe-partial set changed), and the
    /// engine's cached priority with its validity stamps — one 64-byte
    /// [`SlotState`] line per transaction instead of five scattered
    /// vectors.
    arena: SchedArena,
    /// Total pair-stamp bumps (targeted invalidations) performed.
    pair_invalidations: Cell<u64>,
    static_pairs: PairCache,
    unsafe_pairs: PairCache,
    pair_checks: Cell<u64>,
    pair_cache_hits: Cell<u64>,
    /// Item → admitted transactions whose `might_access` contains the
    /// item, each list ascending by id. Because `accessed ⊆ might_access`
    /// (decision narrowing keeps the already-taken prefix) this is a
    /// reverse index over *every* set the pair predicates read, so any
    /// pair with a true `conflicts_with`/`is_unsafe_with` verdict shares
    /// at least one list.
    item_txns: Vec<Vec<TxnId>>,
    /// Per-transaction snapshot of the footprint currently registered in
    /// `item_txns`, diffed on reindex so membership updates touch only
    /// the items that changed.
    indexed_items: Vec<DataSet>,
    /// Transaction id → arena slot. Ids are dense and never reused, so
    /// this is a push-only vector; slots of departed transactions are
    /// recycled through the arena's free list and marked
    /// [`TxnSlot::RELEASED`] here.
    slot_map: Vec<TxnSlot>,
}

impl ConflictAccel {
    pub(crate) fn new(capacity: usize, db_size: usize) -> Self {
        ConflictAccel {
            plist: Vec::new(),
            arena: SchedArena::with_capacity(capacity),
            pair_invalidations: Cell::new(0),
            static_pairs: PairCache::sized_for(capacity),
            unsafe_pairs: PairCache::sized_for(capacity),
            pair_checks: Cell::new(0),
            pair_cache_hits: Cell::new(0),
            item_txns: vec![Vec::new(); db_size],
            indexed_items: Vec::with_capacity(capacity),
            slot_map: Vec::with_capacity(capacity),
        }
    }

    /// Register a newly arrived transaction (ids are dense and arrive in
    /// order, so the slot-map entry is a push; the arena slot itself may
    /// be a recycled one).
    pub(crate) fn register(&mut self, id: TxnId) {
        debug_assert_eq!(id.0 as usize, self.slot_map.len());
        let slot = self.arena.register();
        self.slot_map.push(slot);
        self.indexed_items.push(DataSet::new());
    }

    /// `id` departed for good (commit or admission rejection): return its
    /// arena slot to the free list. The id's pair-cache entries need no
    /// sweep — ids are never reused, so those keys can never be probed
    /// again.
    pub(crate) fn release(&mut self, id: TxnId) {
        let slot = std::mem::replace(&mut self.slot_map[id.0 as usize], TxnSlot::RELEASED);
        debug_assert_ne!(slot, TxnSlot::RELEASED, "double release of {id}");
        self.arena.release(slot);
    }

    /// Arena occupancy: (live slots, high-water mark). The mark tracks
    /// the peak concurrent population, not the run's transaction count.
    #[cfg(test)]
    pub(crate) fn arena_occupancy(&self) -> (usize, usize) {
        (self.arena.live(), self.arena.len())
    }

    /// `id`'s arena slot; panics in debug builds if the slot was
    /// released (no scheduler path may touch a departed transaction).
    #[inline]
    fn slot_idx(&self, id: TxnId) -> TxnSlot {
        let slot = self.slot_map[id.0 as usize];
        debug_assert_ne!(slot, TxnSlot::RELEASED, "{id}: slot used after release");
        slot
    }

    /// (Re)register `id` in the item→transaction reverse index under
    /// `footprint` (its current `might_access`). Diffs against the
    /// previous footprint so only changed items' lists move. Only
    /// *admitted* transactions may be indexed — the engine calls this on
    /// admission, decision narrowing and restart re-widening, and
    /// [`Self::drop_index`] on departure.
    pub(crate) fn reindex(&mut self, id: TxnId, footprint: &DataSet) {
        let slot = id.0 as usize;
        let old = std::mem::take(&mut self.indexed_items[slot]);
        for item in old.iter() {
            if !footprint.contains(item) {
                let list = &mut self.item_txns[item.0 as usize];
                let pos = list
                    .binary_search(&id)
                    .expect("indexed item lists mirror the stored footprint");
                list.remove(pos);
            }
        }
        for item in footprint.iter() {
            if !old.contains(item) {
                let list = &mut self.item_txns[item.0 as usize];
                if let Err(pos) = list.binary_search(&id) {
                    list.insert(pos, id);
                }
            }
        }
        self.indexed_items[slot] = footprint.clone();
    }

    /// Remove `id` from the reverse index (commit, or any other
    /// departure from the active set).
    pub(crate) fn drop_index(&mut self, id: TxnId) {
        let slot = id.0 as usize;
        let old = std::mem::take(&mut self.indexed_items[slot]);
        for item in old.iter() {
            let list = &mut self.item_txns[item.0 as usize];
            let pos = list
                .binary_search(&id)
                .expect("indexed item lists mirror the stored footprint");
            list.remove(pos);
        }
    }

    /// Collect into `out` every indexed transaction whose registered
    /// footprint intersects `items`, ascending by id. This is a sound
    /// superset of the transactions that can hold a true
    /// `conflicts_with` or (either-direction) `is_unsafe_with` verdict
    /// against a transaction whose sets are covered by `items`: both
    /// predicates require a shared item between one side's
    /// `accessed`/`written`/`might_access` and the other's, and every
    /// such set is a subset of the registered `might_access`.
    pub(crate) fn sharers(&self, items: &DataSet, out: &mut Vec<TxnId>) {
        out.clear();
        for item in items.iter() {
            if let Some(list) = self.item_txns.get(item.0 as usize) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// One cache-line copy of `id`'s hot scheduler state (versions,
    /// conflict stamp, cached priority).
    #[inline]
    pub(crate) fn slot(&self, id: TxnId) -> SlotState {
        self.arena.get(self.slot_idx(id))
    }

    /// Cache `value` as `id`'s priority, stamped with the slot's
    /// *current* versions (callers evaluate the policy and write in the
    /// same event, with no version bump in between).
    #[inline]
    pub(crate) fn write_pri(&self, id: TxnId, value: Priority, at: SimTime) {
        self.arena.update(self.slot_idx(id), |s| {
            s.pri_value = value;
            s.pri_at = at;
            s.pri_stamp = s.pair_stamp;
            s.pri_own = s.own_version;
        });
    }

    /// The conflict stamp of `id` — the per-transaction replacement for
    /// the old global conflict epoch. Part of the priority-cache key for
    /// `ConflictState` policies.
    #[cfg(test)]
    pub(crate) fn pair_stamp(&self, id: TxnId) -> u64 {
        self.arena.get(self.slot_idx(id)).pair_stamp
    }

    /// The unsafe-partial set of `id` changed: invalidate its cached
    /// `ConflictState` priority (and only its).
    pub(crate) fn bump_pair_stamp(&mut self, id: TxnId) {
        self.arena.update(self.slot_idx(id), |s| s.pair_stamp += 1);
        self.pair_invalidations
            .set(self.pair_invalidations.get() + 1);
    }

    pub(crate) fn bump_own(&mut self, id: TxnId) {
        self.arena.update(self.slot_idx(id), |s| s.own_version += 1);
    }

    /// A lock grant grew `id`'s `accessed`/`written` sets. Joins the
    /// P-list on the first grant since (re)start.
    ///
    /// The growth may flip `is_unsafe(id, X)` for other transactions `X`,
    /// but that can only *lower* their `ConflictState` priorities (the
    /// penalty gains nonnegative terms), so no stamps are bumped for
    /// them: the engine's lazy heap tolerates stale-high cached values
    /// and revalidates on pop. Only clears — which *raise* priorities —
    /// get an eager walk (see [`Self::note_sets_cleared`]).
    pub(crate) fn note_access_growth(&mut self, id: TxnId, was_partial: bool) {
        self.arena.update(self.slot_idx(id), |s| {
            s.access_version += 1;
            s.own_version += 1;
        });
        if !was_partial {
            let pos = self.plist.binary_search(&id).unwrap_err();
            self.plist.insert(pos, id);
        }
    }

    /// `id`'s access sets were cleared (abort/restart or commit) and — on
    /// restart with a decision point — `might_access` was re-widened. The
    /// transaction leaves the P-list.
    ///
    /// The engine performs the targeted pair-stamp walk *before* this
    /// call, while `id`'s sets (and the memoized verdicts keyed on their
    /// versions) still describe the contribution being removed.
    pub(crate) fn note_sets_cleared(&mut self, id: TxnId) {
        self.arena.update(self.slot_idx(id), |s| {
            s.access_version += 1;
            s.might_version += 1;
            s.own_version += 1;
        });
        let pos = self
            .plist
            .binary_search(&id)
            .expect("cleared transaction held locks, so it was on the P-list");
        self.plist.remove(pos);
    }

    /// `id` executed its decision point, narrowing `might_access`.
    ///
    /// A narrowing changes only how *other* partials relate to `id` as a
    /// candidate (`is_unsafe` reads the partial's `accessed`/`written`
    /// against the candidate's `might_access`), so the only
    /// `ConflictState` priority it can move is `id`'s own: one stamp
    /// bump, no walk.
    pub(crate) fn note_narrowed(&mut self, id: TxnId) {
        self.arena
            .update(self.slot_idx(id), |s| s.might_version += 1);
        self.bump_pair_stamp(id);
    }

    /// The maintained P-list, ascending by id.
    pub(crate) fn plist(&self) -> &[TxnId] {
        &self.plist
    }

    pub(crate) fn plist_len(&self) -> usize {
        self.plist.len()
    }

    /// Memoized `is_unsafe_with(partial, candidate)` (directional), valid
    /// while `partial`'s access sets and `candidate`'s `might_access` are
    /// unchanged.
    pub(crate) fn is_unsafe(&self, partial: &Transaction, candidate: &Transaction) -> bool {
        self.pair_checks.set(self.pair_checks.get() + 1);
        let versions = (
            self.arena.get(self.slot_idx(partial.id)).access_version,
            self.arena.get(self.slot_idx(candidate.id)).might_version,
        );
        let key = pair_key(partial.id, candidate.id);
        if let Some(result) = self.unsafe_pairs.get(key, versions) {
            self.pair_cache_hits.set(self.pair_cache_hits.get() + 1);
            return result;
        }
        let result = is_unsafe_with(partial, candidate);
        self.unsafe_pairs.put(key, versions, result);
        result
    }

    /// Memoized symmetric `a.conflicts_with(b)`, valid while both sides'
    /// `might_access` sets are unchanged.
    pub(crate) fn conflicts(&self, a: &Transaction, b: &Transaction) -> bool {
        self.pair_checks.set(self.pair_checks.get() + 1);
        let (lo, hi) = if a.id <= b.id { (a, b) } else { (b, a) };
        let versions = (
            self.arena.get(self.slot_idx(lo.id)).might_version,
            self.arena.get(self.slot_idx(hi.id)).might_version,
        );
        let key = pair_key(lo.id, hi.id);
        if let Some(result) = self.static_pairs.get(key, versions) {
            self.pair_cache_hits.set(self.pair_cache_hits.get() + 1);
            return result;
        }
        let result = lo.conflicts_with(hi);
        self.static_pairs.put(key, versions, result);
        result
    }

    pub(crate) fn pair_checks(&self) -> u64 {
        self.pair_checks.get()
    }

    pub(crate) fn pair_cache_hits(&self) -> u64 {
        self.pair_cache_hits.get()
    }

    pub(crate) fn pair_invalidations(&self) -> u64 {
        self.pair_invalidations.get()
    }

    /// Live entries dropped from the two pair caches by colliding pairs
    /// (thrash signal; see [`PairCache`]).
    pub(crate) fn pair_cache_evictions(&self) -> u64 {
        self.static_pairs.evictions() + self.unsafe_pairs.evictions()
    }

    /// Victim-way lookups performed by the two pair caches after a
    /// primary-slot miss (see [`PairCache`]).
    pub(crate) fn pair_cache_probes(&self) -> u64 {
        self.static_pairs.probes() + self.unsafe_pairs.probes()
    }
}

/// Partition of the item space `0..db_size` into `shards` contiguous
/// ranges of near-equal width.
///
/// The map is a pure function of `(db_size, shards)` — `shard_of` is
/// `item × shards / db_size`, monotone in the item id — so every engine
/// structure that shards by item range (the lock table, the conflict
/// epoch fan-out) derives the same partition and the same
/// home-shard/cross-shard classification for any footprint, on any
/// machine. Transactions whose `might_access` sets land in disjoint
/// shards can be evaluated by different workers with no coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardMap {
    db_size: u64,
    shards: u64,
}

impl ShardMap {
    pub(crate) fn new(db_size: u64, shards: usize) -> Self {
        assert!(db_size > 0, "cannot shard an empty item space");
        assert!(shards > 0, "need at least one shard");
        ShardMap {
            db_size,
            shards: shards.min(db_size as usize) as u64,
        }
    }

    /// Number of shards (≤ db_size; a shard needs at least one item).
    pub(crate) fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `item`. Items at or past `db_size` (possible only
    /// for misconfigured footprints) clamp to the last shard.
    pub(crate) fn shard_of(&self, item: rtx_preanalysis::ItemId) -> usize {
        let i = (item.0 as u64).min(self.db_size - 1);
        (i * self.shards / self.db_size) as usize
    }

    /// The shard of a footprint's lowest item — the worker that evaluates
    /// a candidate in the parallel conflict epoch. Empty footprints are
    /// homed on shard 0.
    pub(crate) fn home_shard(&self, items: &DataSet) -> usize {
        items.iter().next().map_or(0, |i| self.shard_of(i))
    }

    /// True iff the footprint touches more than one shard. Shards are
    /// contiguous and `shard_of` monotone, so the lowest and highest set
    /// items decide.
    pub(crate) fn is_cross_shard(&self, items: &DataSet) -> bool {
        let mut iter = items.iter();
        match (iter.next(), iter.last()) {
            (Some(lo), Some(hi)) => self.shard_of(lo) != self.shard_of(hi),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{Stage, TxnState};
    use rtx_preanalysis::sets::DataSet;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::ItemId;
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, might: &[u32]) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(100.0),
            resource_time: SimDuration::from_ms(80.0),
            items: might.iter().map(|&i| ItemId(i)).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: might.iter().map(|&i| ItemId(i)).collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn plist_stays_sorted() {
        let mut a = ConflictAccel::new(4, 64);
        for i in 0..4 {
            a.register(TxnId(i));
        }
        a.note_access_growth(TxnId(2), false);
        a.note_access_growth(TxnId(0), false);
        a.note_access_growth(TxnId(3), false);
        assert_eq!(a.plist(), &[TxnId(0), TxnId(2), TxnId(3)]);
        a.note_sets_cleared(TxnId(2));
        assert_eq!(a.plist(), &[TxnId(0), TxnId(3)]);
        assert_eq!(a.plist_len(), 2);
    }

    #[test]
    fn growth_of_a_partial_does_not_duplicate() {
        let mut a = ConflictAccel::new(2, 64);
        a.register(TxnId(0));
        a.note_access_growth(TxnId(0), false);
        a.note_access_growth(TxnId(0), true);
        assert_eq!(a.plist(), &[TxnId(0)]);
    }

    #[test]
    fn unsafe_cache_invalidates_on_version_bump() {
        let mut a = ConflictAccel::new(2, 64);
        a.register(TxnId(0));
        a.register(TxnId(1));
        let mut partial = mk(0, &[1, 2]);
        let candidate = mk(1, &[1, 9]);
        // No overlap with accessed yet → safe; the verdict is cached.
        assert!(!a.is_unsafe(&partial, &candidate));
        assert!(!a.is_unsafe(&partial, &candidate));
        assert_eq!(a.pair_cache_hits(), 1);
        // The partial writes item 1. Without the version bump the stale
        // "safe" verdict would be returned; with it, recomputed.
        partial.accessed.insert(ItemId(1));
        partial.written.insert(ItemId(1));
        a.note_access_growth(TxnId(0), false);
        assert!(a.is_unsafe(&partial, &candidate));
        assert_eq!(a.pair_checks(), 3);
    }

    #[test]
    fn static_cache_is_symmetric_and_version_gated() {
        let mut a = ConflictAccel::new(2, 64);
        a.register(TxnId(0));
        a.register(TxnId(1));
        let mut x = mk(0, &[1, 2]);
        let y = mk(1, &[2, 3]);
        assert!(a.conflicts(&x, &y));
        assert!(a.conflicts(&y, &x), "symmetric lookup hits the same entry");
        assert_eq!(a.pair_cache_hits(), 1);
        // Narrow x away from the overlap; the verdict flips.
        x.might_access = DataSet::from_items([ItemId(1)]);
        a.note_narrowed(TxnId(0));
        assert!(!a.conflicts(&x, &y));
    }

    #[test]
    fn pair_stamps_are_per_transaction() {
        let mut a = ConflictAccel::new(3, 64);
        for i in 0..3 {
            a.register(TxnId(i));
        }
        let s1 = a.pair_stamp(TxnId(1));
        let s2 = a.pair_stamp(TxnId(2));
        // Narrowing invalidates only the narrowed transaction itself.
        a.note_narrowed(TxnId(1));
        assert!(a.pair_stamp(TxnId(1)) > s1);
        assert_eq!(a.pair_stamp(TxnId(2)), s2);
        // Targeted bumps touch exactly the named transaction and tally.
        let inv = a.pair_invalidations();
        a.bump_pair_stamp(TxnId(2));
        assert!(a.pair_stamp(TxnId(2)) > s2);
        assert_eq!(a.pair_stamp(TxnId(0)), 0);
        assert_eq!(a.pair_invalidations(), inv + 1);
        // Growth and clearing keep version counters moving but leave the
        // cross-transaction stamping to the engine's walk.
        a.note_access_growth(TxnId(0), false);
        a.note_sets_cleared(TxnId(0));
        assert_eq!(a.pair_stamp(TxnId(0)), 0);
    }

    #[test]
    fn released_slots_recycle_through_the_accel() {
        let mut a = ConflictAccel::new(4, 64);
        // A departing wave of transactions keeps the arena at the peak
        // *concurrent* population, not the total registered count.
        for i in 0..100u32 {
            a.register(TxnId(i));
            a.note_access_growth(TxnId(i), false);
            let (live, high) = a.arena_occupancy();
            assert_eq!(live, 2.min(i as usize + 1));
            assert!(high <= 2, "arena grew past the concurrent peak: {high}");
            if i > 0 {
                a.note_sets_cleared(TxnId(i - 1));
                a.release(TxnId(i - 1));
            }
        }
        // Recycled slots read as fresh for their new owner.
        assert_eq!(a.pair_stamp(TxnId(99)), 0);
        a.bump_pair_stamp(TxnId(99));
        assert_eq!(a.pair_stamp(TxnId(99)), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "slot used after release")]
    fn released_slot_access_is_caught_in_debug() {
        let mut a = ConflictAccel::new(2, 64);
        a.register(TxnId(0));
        a.release(TxnId(0));
        a.bump_pair_stamp(TxnId(0));
    }

    #[test]
    fn reverse_index_tracks_footprints() {
        let mut a = ConflictAccel::new(3, 64);
        for i in 0..3 {
            a.register(TxnId(i));
        }
        let mut out = Vec::new();
        a.reindex(TxnId(0), &DataSet::from_items([ItemId(1), ItemId(2)]));
        a.reindex(TxnId(1), &DataSet::from_items([ItemId(2), ItemId(3)]));
        a.reindex(TxnId(2), &DataSet::from_items([ItemId(9)]));
        a.sharers(&DataSet::from_items([ItemId(2)]), &mut out);
        assert_eq!(out, vec![TxnId(0), TxnId(1)]);
        // Narrowing away from item 2 drops that membership only.
        a.reindex(TxnId(0), &DataSet::from_items([ItemId(1)]));
        a.sharers(&DataSet::from_items([ItemId(2), ItemId(9)]), &mut out);
        assert_eq!(out, vec![TxnId(1), TxnId(2)]);
        // Departure empties all of the transaction's list memberships.
        a.drop_index(TxnId(1));
        a.sharers(
            &DataSet::from_items([ItemId(1), ItemId(2), ItemId(3)]),
            &mut out,
        );
        assert_eq!(out, vec![TxnId(0)]);
        // Multi-item queries dedup across lists and stay id-ascending.
        a.reindex(TxnId(1), &DataSet::from_items([ItemId(1), ItemId(9)]));
        a.sharers(&DataSet::from_items([ItemId(1), ItemId(9)]), &mut out);
        assert_eq!(out, vec![TxnId(0), TxnId(1), TxnId(2)]);
    }

    #[test]
    fn pair_cache_counts_evictions() {
        let c = PairCache::with_bits(PAIR_CACHE_MIN_BITS);
        let k1 = 1u64;
        let target = c.slot_of(k1);
        let mut colliding = (2u64..).filter(|&k| c.slot_of(k) == target);
        let k2 = colliding.next().expect("lossy cache has colliding keys");
        let k3 = colliding.next().expect("lossy cache has colliding keys");
        c.put(k1, (0, 0), true);
        assert_eq!(c.evictions(), 0);
        // Refreshing the same pair under new versions is not an eviction.
        c.put(k1, (1, 0), false);
        assert_eq!(c.evictions(), 0);
        // A colliding pair displaces k1 into the (empty) victim way:
        // nothing leaves the cache yet, and k1 is still readable there.
        c.put(k2, (0, 0), true);
        assert_eq!(c.evictions(), 0);
        let probes = c.probes();
        assert_eq!(c.get(k1, (1, 0)), Some(false), "victim way serves k1");
        assert!(c.probes() > probes, "victim-way lookups are counted");
        // A third colliding pair finally drops one of them.
        c.put(k3, (0, 0), true);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn pair_cache_capacity_is_mpl_derived_power_of_two() {
        // The budget is 4 × capacity², clamped to [2^13, 2^18] slots.
        for (capacity, bits) in [
            (0, 13),
            (1, 13),
            (45, 13),
            (64, 14),
            (128, 16),
            (256, 18),
            (1024, 18),
            (1_000_000, 18),
        ] {
            let got = PairCache::bits_for_capacity(capacity);
            assert_eq!(got, bits, "capacity {capacity}");
            let cache = PairCache::sized_for(capacity);
            assert!(cache.len().is_power_of_two());
            assert_eq!(cache.len(), 1 << bits);
        }
        // The accel sizes both of its caches from the admitted-transaction
        // capacity.
        let a = ConflictAccel::new(1024, 64);
        assert_eq!(a.static_pairs.len(), 1 << PAIR_CACHE_MAX_BITS);
        assert_eq!(a.unsafe_pairs.len(), 1 << PAIR_CACHE_MAX_BITS);
    }

    #[test]
    fn pair_cache_victim_way_shares_the_bucket() {
        let c = PairCache::with_bits(PAIR_CACHE_MIN_BITS);
        let k1 = 1u64;
        let target = c.slot_of(k1);
        let k2 = (2u64..)
            .find(|&k| c.slot_of(k) == target)
            .expect("lossy cache has colliding keys");
        c.put(k1, (0, 0), true);
        c.put(k2, (7, 7), false);
        // Both colliding pairs are live at once — one per way.
        assert_eq!(c.get(k1, (0, 0)), Some(true));
        assert_eq!(c.get(k2, (7, 7)), Some(false));
        // Version-stale entries still miss in either way.
        assert_eq!(c.get(k1, (0, 1)), None);
        assert_eq!(c.get(k2, (7, 8)), None);
        // Refreshing the displaced pair updates it in place (no eviction).
        c.put(k1, (0, 1), false);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(k1, (0, 1)), Some(false));
        assert_eq!(c.get(k2, (7, 7)), Some(false));
    }

    #[test]
    fn shard_map_covers_every_item_contiguously() {
        for &(db, shards) in &[(30u64, 1usize), (30, 4), (30, 8), (13, 4), (7, 8), (1, 8)] {
            let m = ShardMap::new(db, shards);
            assert!(m.shards() <= shards);
            assert!(m.shards() as u64 <= db);
            // Monotone, contiguous, onto: every shard owns a nonempty
            // range and shard ids never decrease with the item id.
            let mut prev = 0;
            let mut seen = vec![false; m.shards()];
            for i in 0..db {
                let s = m.shard_of(ItemId(i as u32));
                assert!(s >= prev && s < m.shards(), "db={db} shards={shards} i={i}");
                prev = s;
                seen[s] = true;
            }
            assert!(
                seen.iter().all(|&s| s),
                "db={db} shards={shards}: empty shard"
            );
        }
    }

    #[test]
    fn shard_map_agrees_with_lock_table_geometry() {
        // The lock table's per-shard ranges and the ShardMap must place
        // every item in the same shard — the parallel epoch relies on it.
        for &(db, shards) in &[(30u64, 4usize), (13, 4), (100, 8)] {
            let m = ShardMap::new(db, shards);
            let lt = crate::locks::LockTable::with_shards(db, shards);
            assert_eq!(m.shards(), lt.shards());
        }
    }

    #[test]
    fn shard_map_home_and_cross() {
        let m = ShardMap::new(30, 4);
        let low = DataSet::from_items([ItemId(0), ItemId(2)]);
        assert_eq!(m.home_shard(&low), 0);
        assert!(!m.is_cross_shard(&low));
        let wide = DataSet::from_items([ItemId(0), ItemId(2), ItemId(29)]);
        assert_eq!(m.home_shard(&wide), 0);
        assert!(m.is_cross_shard(&wide));
        let empty = DataSet::new();
        assert_eq!(m.home_shard(&empty), 0);
        assert!(!m.is_cross_shard(&empty));
    }
}
