//! Per-run metrics: the quantities the paper's figures plot.
//!
//! * **miss percent** — share of transactions committing after their
//!   deadline (Figures 4.a, 4.d, 4.f, 5.b, 5.e, 5.a, 5.f);
//! * **mean lateness** — we report mean tardiness over all transactions,
//!   `mean(max(0, finish − deadline))`, plus the signed mean and the mean
//!   over missed transactions for sensitivity (Figures 4.b, 4.e, 5.d);
//! * **restarts per transaction** (Figures 4.c, 5.c);
//! * auxiliary series: mean P-list length (§4.1's "1 to 2" check), CPU and
//!   disk utilization (§5's 62.5% bound).

use rtx_sim::hist::Histogram;
use rtx_sim::stats::{Accumulator, TimeWeighted};
use rtx_sim::time::{SimDuration, SimTime};

/// Scheduler-overhead counters: how much work the continuous-evaluation
/// dispatcher did, and how much of it the incremental caches absorbed.
///
/// All counters are deterministic functions of the event sequence —
/// except `sched_wall_ns`, which is only measured in profiled runs
/// (`run_simulation_profiled`) and stays 0 otherwise, so `RunSummary`
/// equality remains meaningful for determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Scheduling points: calls to the engine's `pick_next`.
    pub pick_next_calls: u64,
    /// Actual `Policy::priority` evaluations performed.
    pub priority_evals: u64,
    /// Priority evaluations answered from the stamp-gated cache,
    /// including pick-loop recomputations that confirmed the cached
    /// value bit-for-bit.
    pub priority_cache_hits: u64,
    /// Pairwise conflict tests requested (static `conflicts_with` plus
    /// dynamic `is_unsafe_with`, e.g. from `penalty_of_conflict`).
    pub pair_checks: u64,
    /// Pair tests answered from the version-gated pair cache.
    pub pair_cache_hits: u64,
    /// Priority-index key writes: inserts plus in-place repositions
    /// (clear repairs and eval-driven cache writes) while the
    /// heap-indexed pick path is active.
    pub heap_pushes: u64,
    /// Stale-high index tops demoted in place by the pick loop's
    /// validation (the cost of tolerating priority falls lazily).
    pub heap_stale_pops: u64,
    /// Picks answered by the index (top confirmed by an exact
    /// recomputation) instead of a full scan.
    pub heap_validated_picks: u64,
    /// Per-transaction conflict-stamp bumps: how many cached
    /// ConflictState priorities targeted invalidation actually flushed
    /// (the global epoch flushed *all* of them on every change).
    pub pair_invalidations: u64,
    /// Pair-cache slots overwritten by a *different* pair (direct-mapped
    /// collision evictions — a measure of cache pressure at high MPL).
    pub pair_cache_evictions: u64,
    /// Conflict-clear repair walks performed (one per clear of a
    /// partially executed transaction under targeted invalidation).
    pub clear_repair_clears: u64,
    /// Candidates visited by those walks. With the item→transaction
    /// reverse index this scales with the cleared transaction's sharer
    /// set, not with MPL.
    pub clear_repair_visits: u64,
    /// Entries moved between the split priority index's halves (runner
    /// anchor changes and cross-half cache writes).
    pub index_migrations: u64,
    /// Compute bursts whose anchor migration walks were skipped entirely
    /// because no pick happened during the burst (deferred-arming
    /// batching; 0 when `eager_migrations` forces the per-burst walks).
    pub migrations_batched: u64,
    /// Secondary-way (victim-slot) lookups performed by the two-way pair
    /// caches after a primary-slot key miss.
    pub pair_cache_probes: u64,
    /// Timed-half compactions: frozen entries drained back to the free
    /// half and the shared fall offset re-zeroed, bounding stale-offset
    /// accumulation in long mostly-idle runs.
    pub frozen_compactions: u64,
    /// Verify-mode divergence checks performed (cache-vs-fresh
    /// assertions that ran and passed; 0 outside `CacheMode::Verify`).
    pub verify_checks: u64,
    /// Conflict-epoch barriers crossed by the sharded evaluation path:
    /// one per repair epoch whose candidates were fanned out to per-shard
    /// worker threads and merged back in ascending-id order. Always 0 at
    /// `shards = 1`. Deterministic — a function of seeds and shard count,
    /// not of the host machine.
    pub shard_barriers: u64,
    /// Conflicting transactions surfaced at an epoch barrier whose
    /// access footprint spans more than one item-range shard (the
    /// coordination cost ForeSight-style partitioning cannot elide).
    /// Always 0 at `shards = 1`; deterministic for a given shard count.
    pub cross_shard_conflicts: u64,
    /// Wall-clock nanoseconds spent inside `pick_next` (profiled runs
    /// only; 0 otherwise).
    pub sched_wall_ns: u64,
}

/// Collected during one run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    committed: u64,
    missed: u64,
    lateness_signed: Accumulator,
    tardiness_all: Accumulator,
    tardiness_missed: Accumulator,
    response_time: Accumulator,
    tardiness_hist: Histogram,
    restarts_total: u64,
    aborts_of_secondary: u64,
    lock_waits: u64,
    deadlock_resolutions: u64,
    starvation_shields: u64,
    /// Per-criticality-class (committed, missed) counts.
    class_counts: Vec<(u64, u64)>,
    plist_len: TimeWeighted,
    ready_len: TimeWeighted,
    cpu_busy: SimDuration,
    rejected: u64,
    injected_io_faults: u64,
    io_latency_spikes: u64,
    io_retries: u64,
    io_exhausted_aborts: u64,
    total_backoff: SimDuration,
    wasted_disk_hold: SimDuration,
    injected_cpu_stalls: u64,
    cpu_slowdowns: u64,
    cpu_retries: u64,
    cpu_exhausted_aborts: u64,
    cpu_backoff: SimDuration,
    wasted_cpu: SimDuration,
    sched: SchedStats,
}

impl MetricsCollector {
    /// Fresh collector.
    pub fn new() -> Self {
        MetricsCollector {
            committed: 0,
            missed: 0,
            lateness_signed: Accumulator::new(),
            tardiness_all: Accumulator::new(),
            tardiness_missed: Accumulator::new(),
            response_time: Accumulator::new(),
            tardiness_hist: Histogram::for_latency_ms(),
            restarts_total: 0,
            aborts_of_secondary: 0,
            lock_waits: 0,
            deadlock_resolutions: 0,
            starvation_shields: 0,
            class_counts: Vec::new(),
            plist_len: TimeWeighted::new(0.0, 0.0),
            ready_len: TimeWeighted::new(0.0, 0.0),
            cpu_busy: SimDuration::ZERO,
            rejected: 0,
            injected_io_faults: 0,
            io_latency_spikes: 0,
            io_retries: 0,
            io_exhausted_aborts: 0,
            total_backoff: SimDuration::ZERO,
            wasted_disk_hold: SimDuration::ZERO,
            injected_cpu_stalls: 0,
            cpu_slowdowns: 0,
            cpu_retries: 0,
            cpu_exhausted_aborts: 0,
            cpu_backoff: SimDuration::ZERO,
            wasted_cpu: SimDuration::ZERO,
            sched: SchedStats::default(),
        }
    }

    /// Record a commit of a transaction in criticality class `class`.
    pub fn record_commit_in_class(
        &mut self,
        class: u8,
        arrival: SimTime,
        deadline: SimTime,
        finish: SimTime,
    ) {
        let idx = class as usize;
        if idx >= self.class_counts.len() {
            self.class_counts.resize(idx + 1, (0, 0));
        }
        self.class_counts[idx].0 += 1;
        if finish.signed_ms_since(deadline) > 0.0 {
            self.class_counts[idx].1 += 1;
        }
        self.record_commit(arrival, deadline, finish);
    }

    /// Record a commit.
    pub fn record_commit(&mut self, arrival: SimTime, deadline: SimTime, finish: SimTime) {
        self.committed += 1;
        let lateness = finish.signed_ms_since(deadline);
        self.lateness_signed.record(lateness);
        let tardiness = lateness.max(0.0);
        self.tardiness_all.record(tardiness);
        if lateness > 0.0 {
            self.missed += 1;
            self.tardiness_missed.record(tardiness);
        }
        self.response_time.record(finish.signed_ms_since(arrival));
        self.tardiness_hist.record(tardiness);
    }

    /// Record an abort/restart. `of_secondary` flags a noncontributing
    /// execution: the victim had been scheduled during an IO wait.
    pub fn record_restart(&mut self, of_secondary: bool) {
        self.restarts_total += 1;
        if of_secondary {
            self.aborts_of_secondary += 1;
        }
    }

    /// Record that a transaction had to block waiting for a lock
    /// (wound-wait's wait side; never happens under CCA — Theorem 1).
    pub fn record_lock_wait(&mut self) {
        self.lock_waits += 1;
    }

    /// Record that a wedged lock-wait cycle had to be broken by aborting
    /// a cycle member (never happens under CCA or static-priority HP).
    pub fn record_deadlock_resolution(&mut self) {
        self.deadlock_resolutions += 1;
    }

    /// Record that a lock request deferred to a starvation-shielded
    /// holder instead of aborting it (livelock escalation; 0 under the
    /// paper's policies).
    pub fn record_starvation_shield(&mut self) {
        self.starvation_shields += 1;
    }

    /// Record a change of the P-list length (time-weighted).
    pub fn set_plist_len(&mut self, now: SimTime, len: usize) {
        self.plist_len.set(now.as_ms(), len as f64);
    }

    /// Record a change of the ready-queue length (time-weighted).
    pub fn set_ready_len(&mut self, now: SimTime, len: usize) {
        self.ready_len.set(now.as_ms(), len as f64);
    }

    /// Add CPU busy time (bursts, including recovery work).
    pub fn add_cpu_busy(&mut self, d: SimDuration) {
        self.cpu_busy += d;
    }

    /// Record a transaction rejected on arrival by admission control.
    pub fn record_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Record an injected transient IO error (the attempt occupied the
    /// disk and then failed).
    pub fn record_injected_fault(&mut self) {
        self.injected_io_faults += 1;
    }

    /// Record an injected latency spike on a disk transfer.
    pub fn record_latency_spike(&mut self) {
        self.io_latency_spikes += 1;
    }

    /// Record a retry of a failed transfer and the backoff delay spent
    /// before it.
    pub fn record_io_retry(&mut self, backoff: SimDuration) {
        self.io_retries += 1;
        self.total_backoff += backoff;
    }

    /// Record an abort-and-restart forced by an exhausted IO retry budget.
    pub fn record_io_exhausted_abort(&mut self) {
        self.io_exhausted_aborts += 1;
    }

    /// Record disk-hold time wasted by a doomed transaction (aborted
    /// mid-transfer; the transfer ran to completion anyway).
    pub fn add_wasted_disk_hold(&mut self, d: SimDuration) {
        self.wasted_disk_hold += d;
    }

    /// Record an injected CPU stall (the burst occupied the CPU and then
    /// failed to make progress).
    pub fn record_cpu_stall(&mut self) {
        self.injected_cpu_stalls += 1;
    }

    /// Record an injected CPU slowdown on a compute burst.
    pub fn record_cpu_slowdown(&mut self) {
        self.cpu_slowdowns += 1;
    }

    /// Record a retry of a stalled compute burst and the backoff delay
    /// spent before it.
    pub fn record_cpu_retry(&mut self, backoff: SimDuration) {
        self.cpu_retries += 1;
        self.cpu_backoff += backoff;
    }

    /// Record an abort-and-restart forced by an exhausted CPU retry
    /// budget.
    pub fn record_cpu_exhausted_abort(&mut self) {
        self.cpu_exhausted_aborts += 1;
    }

    /// Record CPU time wasted by a stalled burst (it ran to completion
    /// but produced no progress).
    pub fn add_wasted_cpu(&mut self, d: SimDuration) {
        self.wasted_cpu += d;
    }

    /// Install the scheduler-overhead counters (the engine sets these once
    /// at the end of the run, from its internal tallies).
    pub fn set_sched_stats(&mut self, sched: SchedStats) {
        self.sched = sched;
    }

    /// Transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transactions rejected at admission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Finalize at simulation end time `end` with the disk's busy total.
    pub fn finish(&self, end: SimTime, disk_busy: SimDuration) -> RunSummary {
        let n = self.committed.max(1) as f64;
        RunSummary {
            committed: self.committed,
            miss_percent: 100.0 * self.missed as f64 / n,
            mean_lateness_ms: self.tardiness_all.mean(),
            mean_signed_lateness_ms: self.lateness_signed.mean(),
            mean_tardiness_missed_ms: self.tardiness_missed.mean(),
            mean_response_ms: self.response_time.mean(),
            max_lateness_ms: self.tardiness_all.max().unwrap_or(0.0),
            p95_lateness_ms: self.tardiness_hist.quantile(0.95),
            p99_lateness_ms: self.tardiness_hist.quantile(0.99),
            restarts_per_txn: self.restarts_total as f64 / n,
            restarts_total: self.restarts_total,
            noncontributing_aborts: self.aborts_of_secondary,
            lock_waits: self.lock_waits,
            deadlock_resolutions: self.deadlock_resolutions,
            starvation_shields: self.starvation_shields,
            miss_percent_by_class: self
                .class_counts
                .iter()
                .map(|&(c, m)| {
                    if c == 0 {
                        0.0
                    } else {
                        100.0 * m as f64 / c as f64
                    }
                })
                .collect(),
            mean_plist_len: self.plist_len.mean_until(end.as_ms()),
            max_plist_len: self.plist_len.max(),
            mean_ready_len: self.ready_len.mean_until(end.as_ms()),
            cpu_utilization: if end == SimTime::ZERO {
                0.0
            } else {
                self.cpu_busy.as_secs() / end.as_secs()
            },
            disk_utilization: if end == SimTime::ZERO {
                0.0
            } else {
                disk_busy.as_secs() / end.as_secs()
            },
            makespan_ms: end.as_ms(),
            rejected: self.rejected,
            rejected_percent: {
                let total = self.committed + self.rejected;
                if total == 0 {
                    0.0
                } else {
                    100.0 * self.rejected as f64 / total as f64
                }
            },
            injected_io_faults: self.injected_io_faults,
            io_latency_spikes: self.io_latency_spikes,
            io_retries: self.io_retries,
            io_exhausted_aborts: self.io_exhausted_aborts,
            total_backoff_ms: self.total_backoff.as_ms(),
            wasted_disk_hold_ms: self.wasted_disk_hold.as_ms(),
            injected_cpu_stalls: self.injected_cpu_stalls,
            cpu_slowdowns: self.cpu_slowdowns,
            cpu_retries: self.cpu_retries,
            cpu_exhausted_aborts: self.cpu_exhausted_aborts,
            cpu_backoff_ms: self.cpu_backoff.as_ms(),
            wasted_cpu_ms: self.wasted_cpu.as_ms(),
            sched: self.sched,
        }
    }
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

/// Final per-run outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Transactions committed (always equals the run's budget).
    pub committed: u64,
    /// Percentage of transactions that missed their deadline.
    pub miss_percent: f64,
    /// Mean tardiness over all transactions, ms — the headline "mean
    /// lateness".
    pub mean_lateness_ms: f64,
    /// Mean signed lateness over all transactions, ms (negative = early).
    pub mean_signed_lateness_ms: f64,
    /// Mean tardiness over missed transactions only, ms.
    pub mean_tardiness_missed_ms: f64,
    /// Mean response time (finish − arrival), ms.
    pub mean_response_ms: f64,
    /// Worst tardiness, ms.
    pub max_lateness_ms: f64,
    /// 95th-percentile tardiness, ms (bucketed to 1% relative error).
    pub p95_lateness_ms: f64,
    /// 99th-percentile tardiness, ms.
    pub p99_lateness_ms: f64,
    /// Restarts per transaction (Figures 4.c, 5.c).
    pub restarts_per_txn: f64,
    /// Total restarts.
    pub restarts_total: u64,
    /// Restarts whose victim had been scheduled during an IO wait
    /// (noncontributing executions, §3.3.2).
    pub noncontributing_aborts: u64,
    /// Times a transaction blocked waiting for a lock (0 under CCA).
    pub lock_waits: u64,
    /// Lock-wait cycles broken by the deadlock resolver (0 under CCA and
    /// under any static-priority policy; LSF can deadlock — §2).
    pub deadlock_resolutions: u64,
    /// Lock requests deferred to starvation-shielded holders (livelock
    /// escalation; 0 under the paper's policies).
    pub starvation_shields: u64,
    /// Miss percentage per criticality class (index = class). Length 1
    /// for the paper's single-class workloads.
    pub miss_percent_by_class: Vec<f64>,
    /// Time-averaged number of partially executed transactions.
    pub mean_plist_len: f64,
    /// Peak P-list length.
    pub max_plist_len: f64,
    /// Time-averaged ready-queue length.
    pub mean_ready_len: f64,
    /// CPU busy fraction.
    pub cpu_utilization: f64,
    /// Disk busy fraction (0 for main memory).
    pub disk_utilization: f64,
    /// Total simulated time, ms.
    pub makespan_ms: f64,
    /// Transactions rejected on arrival by admission control (0 when
    /// admission is disabled).
    pub rejected: u64,
    /// Rejections as a percentage of all terminated transactions
    /// (committed + rejected) — the third leg of the outcome
    /// decomposition alongside `miss_percent`.
    pub rejected_percent: f64,
    /// Injected transient IO errors (0 under `FaultPlan::none()`).
    pub injected_io_faults: u64,
    /// Injected latency spikes on disk transfers.
    pub io_latency_spikes: u64,
    /// Disk-transfer retries after injected faults.
    pub io_retries: u64,
    /// Aborts forced by an exhausted IO retry budget.
    pub io_exhausted_aborts: u64,
    /// Total exponential-backoff delay spent before retries, ms.
    pub total_backoff_ms: f64,
    /// Disk-hold time wasted by doomed transactions (aborted mid-transfer
    /// while the transfer ran on), ms.
    pub wasted_disk_hold_ms: f64,
    /// Injected CPU stalls (0 without a CPU fault plan).
    pub injected_cpu_stalls: u64,
    /// Injected CPU slowdowns on compute bursts.
    pub cpu_slowdowns: u64,
    /// Compute-burst retries after injected stalls.
    pub cpu_retries: u64,
    /// Aborts forced by an exhausted CPU retry budget.
    pub cpu_exhausted_aborts: u64,
    /// Total exponential-backoff delay spent before CPU retries, ms.
    pub cpu_backoff_ms: f64,
    /// CPU time wasted by stalled bursts (ran fully, no progress), ms.
    pub wasted_cpu_ms: f64,
    /// Scheduler-overhead counters (priority evaluations, cache hits,
    /// pair checks, profiled `pick_next` wall time).
    pub sched: SchedStats,
}

impl RunSummary {
    /// This summary with the scheduler-overhead counters zeroed.
    ///
    /// The *simulated* outcome of a run is independent of how the engine
    /// evaluated priorities — cached or from scratch — but the overhead
    /// counters of course differ across cache modes and across policies.
    /// Equality tests that compare outcomes across such axes (e.g. "CCA
    /// with weight 0 behaves exactly like EDF-HP", or "the incremental
    /// engine matches the always-recompute oracle") compare
    /// `a.sans_sched_stats() == b.sans_sched_stats()`.
    pub fn sans_sched_stats(&self) -> RunSummary {
        RunSummary {
            sched: SchedStats::default(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_ms(x)
    }

    #[test]
    fn commit_accounting() {
        let mut m = MetricsCollector::new();
        // on time: finish 80, deadline 100
        m.record_commit(ms(0.0), ms(100.0), ms(80.0));
        // late by 50
        m.record_commit(ms(0.0), ms(100.0), ms(150.0));
        let s = m.finish(ms(200.0), SimDuration::ZERO);
        assert_eq!(s.committed, 2);
        assert!((s.miss_percent - 50.0).abs() < 1e-9);
        assert!((s.mean_lateness_ms - 25.0).abs() < 1e-9, "(0 + 50)/2");
        assert!(
            (s.mean_signed_lateness_ms - 15.0).abs() < 1e-9,
            "(-20 + 50)/2"
        );
        assert!((s.mean_tardiness_missed_ms - 50.0).abs() < 1e-9);
        assert!((s.mean_response_ms - 115.0).abs() < 1e-9);
        assert_eq!(s.max_lateness_ms, 50.0);
    }

    #[test]
    fn exactly_on_deadline_is_not_missed() {
        let mut m = MetricsCollector::new();
        m.record_commit(ms(0.0), ms(100.0), ms(100.0));
        let s = m.finish(ms(100.0), SimDuration::ZERO);
        assert_eq!(s.miss_percent, 0.0);
    }

    #[test]
    fn restart_accounting() {
        let mut m = MetricsCollector::new();
        m.record_restart(false);
        m.record_restart(true);
        m.record_restart(false);
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        let s = m.finish(ms(10.0), SimDuration::ZERO);
        assert_eq!(s.restarts_total, 3);
        assert!((s.restarts_per_txn - 1.5).abs() < 1e-9);
        assert_eq!(s.noncontributing_aborts, 1);
    }

    #[test]
    fn utilizations() {
        let mut m = MetricsCollector::new();
        m.add_cpu_busy(SimDuration::from_ms(50.0));
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        let s = m.finish(ms(100.0), SimDuration::from_ms(25.0));
        assert!((s.cpu_utilization - 0.5).abs() < 1e-9);
        assert!((s.disk_utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn plist_time_weighting() {
        let mut m = MetricsCollector::new();
        m.set_plist_len(ms(0.0), 0);
        m.set_plist_len(ms(10.0), 2);
        m.set_plist_len(ms(30.0), 1);
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        let s = m.finish(ms(40.0), SimDuration::ZERO);
        // 0×10 + 2×20 + 1×10 = 50 over 40 ms.
        assert!((s.mean_plist_len - 1.25).abs() < 1e-9);
        assert_eq!(s.max_plist_len, 2.0);
    }

    #[test]
    fn fault_and_rejection_accounting() {
        let mut m = MetricsCollector::new();
        m.record_injected_fault();
        m.record_injected_fault();
        m.record_latency_spike();
        m.record_io_retry(SimDuration::from_ms(2.0));
        m.record_io_retry(SimDuration::from_ms(4.0));
        m.record_io_exhausted_abort();
        m.add_wasted_disk_hold(SimDuration::from_ms(12.5));
        m.record_rejection();
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        assert_eq!(m.rejected(), 1);
        let s = m.finish(ms(100.0), SimDuration::ZERO);
        assert_eq!(s.injected_io_faults, 2);
        assert_eq!(s.io_latency_spikes, 1);
        assert_eq!(s.io_retries, 2);
        assert_eq!(s.io_exhausted_aborts, 1);
        assert!((s.total_backoff_ms - 6.0).abs() < 1e-9);
        assert!((s.wasted_disk_hold_ms - 12.5).abs() < 1e-9);
        assert_eq!(s.rejected, 1);
        assert!((s.rejected_percent - 25.0).abs() < 1e-9, "1 of 4 outcomes");
    }

    #[test]
    fn cpu_fault_accounting() {
        let mut m = MetricsCollector::new();
        m.record_cpu_stall();
        m.record_cpu_stall();
        m.record_cpu_slowdown();
        m.record_cpu_retry(SimDuration::from_ms(1.0));
        m.record_cpu_retry(SimDuration::from_ms(2.0));
        m.record_cpu_exhausted_abort();
        m.add_wasted_cpu(SimDuration::from_ms(8.0));
        m.record_commit(ms(0.0), ms(10.0), ms(5.0));
        let s = m.finish(ms(100.0), SimDuration::ZERO);
        assert_eq!(s.injected_cpu_stalls, 2);
        assert_eq!(s.cpu_slowdowns, 1);
        assert_eq!(s.cpu_retries, 2);
        assert_eq!(s.cpu_exhausted_aborts, 1);
        assert!((s.cpu_backoff_ms - 3.0).abs() < 1e-9);
        assert!((s.wasted_cpu_ms - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_safe() {
        let m = MetricsCollector::new();
        let s = m.finish(SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(s.committed, 0);
        assert_eq!(s.miss_percent, 0.0);
        assert_eq!(s.cpu_utilization, 0.0);
    }
}
