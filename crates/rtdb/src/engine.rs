//! The single-CPU real-time database engine (§3.3, §4, §5).
//!
//! Execution model, following the paper's procedures exactly:
//!
//! * the scheduler is invoked on **arrival**, **transaction finish**,
//!   **IO block** and **IO completion** ("whenever a new transaction
//!   arrives, a running transaction finishes, IO wait occurs the scheduler
//!   is invoked immediately");
//! * the CPU always runs the highest-priority transaction `TH` when it is
//!   runnable (`tr-arrival-schedule` / `tr-finish-schedule`); when `TH` is
//!   blocked on IO, `IOwait-schedule` picks the best ready transaction —
//!   restricted to ones that neither conflict nor conditionally conflict
//!   with any partially executed transaction if the policy requests it;
//! * **HP conflict resolution with no lock wait**: when the running
//!   transaction's lock request hits a holder, the holder is aborted
//!   (releases its locks, resets, restarts from scratch) and the CPU is
//!   busy for the abort cost before the runner proceeds. Because the
//!   runner is the highest-priority transaction, this never inverts
//!   priorities (Lemma 1), and because nothing ever waits for a lock the
//!   schedule is deadlock-free (Theorem 1);
//! * a transaction aborted while queued for the disk leaves the queue
//!   immediately; one aborted mid-transfer holds the disk until the
//!   transfer completes (§5).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};

use rtx_sim::calendar::EventHandle;
use rtx_sim::fault::{CpuFaultInjector, FaultInjector};
use rtx_sim::rng::StreamSeeder;
use rtx_sim::time::{SimDuration, SimTime};

use crate::components::{ComponentCalendar, Lane, LaneRouted};
use crate::config::{AdmissionConfig, SimConfig};
use crate::disk::Disk;
use crate::error::RunError;
use crate::locks::{LockMode, LockOutcome, LockTable};

/// Minimum candidate-set size before a conflict epoch fans out to
/// per-shard worker threads; below this the thread-spawn overhead
/// dwarfs the pair tests. Applies only when `system.shards > 1`.
const PARALLEL_MIN_CANDIDATES: usize = 64;
use crate::metrics::{MetricsCollector, RunSummary, SchedStats};
use crate::policy::{Policy, Priority, PriorityDeps, SystemView};
use crate::sched::{CacheMode, ConflictAccel, ShardMap};
use crate::source::TxnSource;
use crate::trace::{Trace, TraceEvent};
use crate::txn::{Stage, Transaction, TxnId, TxnState};
use crate::workload::{ArrivalGenerator, TypeTable};

/// Calendar payloads.
enum Event {
    /// A new transaction enters the system.
    Arrival(Box<Transaction>),
    /// The running transaction's current CPU burst completes.
    CpuDone(TxnId),
    /// The disk's active transfer completes.
    IoDone(TxnId),
    /// A transaction's IO backoff expired: retry the failed transfer. The
    /// token guards against the transaction having been aborted and
    /// restarted while this event was in flight.
    IoRetry(TxnId, u64),
    /// A transaction's CPU-stall backoff expired: re-queue the stalled
    /// compute burst. Token-guarded like [`Event::IoRetry`].
    CpuRetry(TxnId, u64),
}

// Route each event to its component lane: arrivals belong to the
// scheduler, burst completions and stall retries to the CPU, transfer
// completions and IO retries to the disk.
impl LaneRouted for Event {
    fn lane(&self) -> Lane {
        match self {
            Event::Arrival(_) => Lane::Sched,
            Event::CpuDone(_) | Event::CpuRetry(_, _) => Lane::Cpu,
            Event::IoDone(_) | Event::IoRetry(_, _) => Lane::Disk,
        }
    }
}

enum Started {
    /// A CPU burst was scheduled; the CPU is occupied.
    Scheduled,
    /// The transaction immediately blocked on IO; pick someone else.
    WentToIo,
    /// The transaction hit a lock held by a higher-priority transaction
    /// and must wait (HP wound-wait); pick someone else.
    Blocked,
}

/// One lazy priority-index entry. Ordered exactly like the scan's
/// tie-break — `(Priority, Reverse(arrival), Reverse(id))` — so the index
/// maximum is the scan winner bit-for-bit. The key (`pri`) is an **upper
/// bound** on the transaction's exact priority; the pick path revalidates
/// the top against an exact recomputation before dispatching.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    pri: Priority,
    arrival: SimTime,
    id: TxnId,
}

impl HeapEntry {
    fn key(
        &self,
    ) -> (
        Priority,
        std::cmp::Reverse<SimTime>,
        std::cmp::Reverse<TxnId>,
    ) {
        (
            self.pri,
            std::cmp::Reverse(self.arrival),
            std::cmp::Reverse(self.id),
        )
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The lazy max-heap priority index: a position-tracked binary heap with
/// exactly one entry per indexed transaction.
///
/// Position tracking (`pos`) is what makes conflict-epoch invalidation
/// O(log n) *in place*: a clear repairs each affected transaction's key
/// with [`PriorityIndex::set_key`] (a sift, no duplicate entry, no
/// rebuild), and a lazy-fall demotion during pick validation is the same
/// operation downwards. The old duplicate-entry design paid an eval +
/// push + eventual stale pop per repaired transaction; this pays a few
/// swaps.
#[derive(Default)]
struct PriorityIndex {
    /// The heap slots (max-heap by [`HeapEntry::cmp`]).
    slots: Vec<HeapEntry>,
    /// Transaction id → slot position + 1; 0 = not in the index. Grown
    /// on demand at insert (bands only ever see a subset of ids).
    pos: Vec<u32>,
}

impl PriorityIndex {
    fn contains(&self, id: TxnId) -> bool {
        self.pos.get(id.0 as usize).is_some_and(|&p| p != 0)
    }

    /// The maximum entry, if any. O(1).
    fn peek(&self) -> Option<HeapEntry> {
        self.slots.first().copied()
    }

    /// `id`'s current key, if indexed. O(1); used by consistency checks.
    fn key_of(&self, id: TxnId) -> Option<Priority> {
        match self.pos.get(id.0 as usize).copied().unwrap_or(0) {
            0 => None,
            p => Some(self.slots[(p - 1) as usize].pri),
        }
    }

    /// Insert an entry for a transaction not currently indexed. Grows
    /// the position vector on demand — indexes created after ids were
    /// issued (the lazily-materialized slack bands) never saw a
    /// [`PriorityIndex::register`] for them.
    fn insert(&mut self, e: HeapEntry) {
        debug_assert!(!self.contains(e.id), "{} already indexed", e.id);
        let slot = e.id.0 as usize;
        if self.pos.len() <= slot {
            self.pos.resize(slot + 1, 0);
        }
        let i = self.slots.len();
        self.slots.push(e);
        self.pos[slot] = i as u32 + 1;
        self.sift_up(i);
    }

    /// Remove `id`'s entry (a departed transaction). Returns whether it
    /// was present.
    fn remove(&mut self, id: TxnId) -> bool {
        let p = self.pos.get(id.0 as usize).copied().unwrap_or(0);
        if p == 0 {
            return false;
        }
        let i = (p - 1) as usize;
        self.pos[id.0 as usize] = 0;
        let last = self.slots.len() - 1;
        if i != last {
            self.slots.swap(i, last);
            self.pos[self.slots[i].id.0 as usize] = i as u32 + 1;
        }
        self.slots.pop();
        if i < self.slots.len() {
            // The displaced entry can need to move either way.
            self.sift_up(i);
            self.sift_down(i);
        }
        true
    }

    /// Reposition `id` under a new key (raise or lower). Returns whether
    /// it was present.
    fn set_key(&mut self, id: TxnId, pri: Priority) -> bool {
        let p = self.pos.get(id.0 as usize).copied().unwrap_or(0);
        if p == 0 {
            return false;
        }
        let i = (p - 1) as usize;
        self.slots[i].pri = pri;
        self.sift_up(i);
        self.sift_down(i);
        true
    }

    // The sifts move the displaced entry as a "hole": parents/children
    // shift into place one write each, and the entry lands once at the
    // end — half the slot and `pos` writes of swap-based sifting.

    fn sift_up(&mut self, mut i: usize) {
        let e = self.slots[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if e <= self.slots[parent] {
                break;
            }
            self.slots[i] = self.slots[parent];
            self.pos[self.slots[i].id.0 as usize] = i as u32 + 1;
            i = parent;
        }
        self.slots[i] = e;
        self.pos[e.id.0 as usize] = i as u32 + 1;
    }

    fn sift_down(&mut self, mut i: usize) {
        let e = self.slots[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.slots.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.slots.len() && self.slots[r] > self.slots[l] {
                r
            } else {
                l
            };
            if self.slots[child] <= e {
                break;
            }
            self.slots[i] = self.slots[child];
            self.pos[self.slots[i].id.0 as usize] = i as u32 + 1;
            i = child;
        }
        self.slots[i] = e;
        self.pos[e.id.0 as usize] = i as u32 + 1;
    }

    /// All current entries, heap order (used to enumerate a half during
    /// anchor migration; order does not matter to callers).
    fn entries(&self) -> &[HeapEntry] {
        &self.slots
    }
}

/// One deadline band of the slack index (see [`SlackBands`]).
#[derive(Default)]
struct SlackBand {
    index: PriorityIndex,
    /// Largest |K| ever stored in this band and largest member deadline
    /// (ms): together with the clock, every magnitude its members'
    /// priority-rounding chains touch. Never shrinks — the scale backs
    /// soundness, not tightness.
    key_scale: Cell<f64>,
}

impl SlackBand {
    /// The nudge scale for this band's effective bounds at clock
    /// `now_ms`: 32 ulp of it dominates the few-ulp difference between
    /// `now_ms + K` and the policy's actually-rounded priority for any
    /// member — all of a member's own magnitudes (its deadline, its key,
    /// the clock) are covered.
    fn eff_scale(&self, now_ms: f64) -> f64 {
        self.key_scale.get().max(now_ms).max(1.0)
    }
}

/// The slack index, partitioned by deadline band: each band is a heap
/// over time-invariant keys `K` with its *own* magnitude scale for the
/// validation nudge, so one far-future deadline (a huge `|K|`) no longer
/// loosens the effective bound of every entry in the run — only of its
/// own band. Entries never migrate: a transaction's band is a pure
/// function of its (immutable) deadline.
#[derive(Default)]
struct SlackBands {
    /// Lazily materialized; a band is created the first time an entry
    /// lands in it.
    bands: Vec<SlackBand>,
    /// Total entries across bands (O(1) coverage check for
    /// `slack_in_use`).
    len: usize,
}

impl SlackBands {
    /// The band for a transaction: the log2 bucket of its absolute
    /// deadline in ms. Integer bit-ops only — no libm calls — so band
    /// assignment is bit-deterministic across platforms. (Banding never
    /// affects *results* either way — picks validate exact priorities —
    /// only which band's scale a bound is nudged by.)
    fn band_of(deadline: SimTime) -> usize {
        let ms = (deadline.as_ms() as u64).max(1);
        (63 - ms.leading_zeros()) as usize
    }

    fn len(&self) -> usize {
        self.len
    }

    /// The band, materializing it (and any gap below) on first use.
    fn band_mut(&mut self, b: usize) -> &mut SlackBand {
        if self.bands.len() <= b {
            self.bands.resize_with(b + 1, SlackBand::default);
        }
        &mut self.bands[b]
    }

    /// (Re)key `e.id` in band `b`; inserts if absent.
    fn upsert(&mut self, b: usize, e: HeapEntry) {
        let band = self.band_mut(b);
        if !band.index.set_key(e.id, e.pri) {
            band.index.insert(e);
            self.len += 1;
        }
    }

    /// Remove `id` from band `b` (a departed transaction). Returns
    /// whether it was present.
    fn remove(&mut self, b: usize, id: TxnId) -> bool {
        let Some(band) = self.bands.get_mut(b) else {
            return false;
        };
        let removed = band.index.remove(id);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// `id`'s current key in band `b`, if indexed.
    fn key_of(&self, b: usize, id: TxnId) -> Option<Priority> {
        self.bands.get(b)?.index.key_of(id)
    }
}

/// Which half of the [`SplitIndex`] an entry lives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Half {
    /// Keys are bit-identical to the cached value (or a repaired bound)
    /// and hold still between structural events.
    Free,
    /// Keys store `bound + A(t_write)` where `A` is the engine's global
    /// fall accumulator, so the *effective* bound `key − A(now)` falls
    /// with the anchored runner's accruing service while the stored key
    /// never moves. Holds exactly the entries whose true priority is
    /// falling: those unsafe w.r.t. the anchored runner (plus entries
    /// frozen in place after the anchor ended, whose folded bounds are
    /// then simply constant and still sound).
    Timed,
}

/// The split lazy priority index.
///
/// PR 4's single index demoted every runner-conflicting key at every
/// pick while the runner's service accrued — O(conflicting) evals per
/// scheduling point at high MPL. Splitting the index by *how* a key
/// decays turns that into O(1): runner-free keys don't move at all, and
/// runner-conflicting keys all fall at the same policy-declared rate
/// ([`crate::policy::PriorityDeps::ConflictState::runner_fall_rate`]),
/// so one shared offset `A(now)` stands in for all of their falls. Keys
/// migrate between halves only at structural events (anchor changes,
/// cache writes), each migration O(log n) and counted.
/// Tag bit marking a timed-half position in [`SplitIndex::pos`].
const TIMED_TAG: u32 = 1 << 31;

#[derive(Default)]
struct SplitIndex {
    /// Free-half heap slots (max-heap by [`HeapEntry::cmp`]).
    free: Vec<HeapEntry>,
    /// Timed-half heap slots.
    timed: Vec<HeapEntry>,
    /// id → tagged slot position: 0 = absent, else `pos + 1` with
    /// [`TIMED_TAG`] set for the timed half. One dense lane answers
    /// presence, half, and position in a single lookup — the old
    /// two-`PriorityIndex` layout paid a miss in one `pos` vector
    /// before hitting the other on every cross-half question.
    pos: Vec<u32>,
}

// Hole-based heap sifts over one half's slots and the shared tagged
// position lane: parents/children shift into place one write each, and
// the displaced entry lands once at the end.

fn split_sift_up(slots: &mut [HeapEntry], pos: &mut [u32], tag: u32, mut i: usize) {
    let e = slots[i];
    while i > 0 {
        let parent = (i - 1) / 2;
        if e <= slots[parent] {
            break;
        }
        slots[i] = slots[parent];
        pos[slots[i].id.0 as usize] = (i as u32 + 1) | tag;
        i = parent;
    }
    slots[i] = e;
    pos[e.id.0 as usize] = (i as u32 + 1) | tag;
}

fn split_sift_down(slots: &mut [HeapEntry], pos: &mut [u32], tag: u32, mut i: usize) {
    let e = slots[i];
    loop {
        let l = 2 * i + 1;
        if l >= slots.len() {
            break;
        }
        let r = l + 1;
        let child = if r < slots.len() && slots[r] > slots[l] {
            r
        } else {
            l
        };
        if slots[child] <= e {
            break;
        }
        slots[i] = slots[child];
        pos[slots[i].id.0 as usize] = (i as u32 + 1) | tag;
        i = child;
    }
    slots[i] = e;
    pos[e.id.0 as usize] = (i as u32 + 1) | tag;
}

impl SplitIndex {
    fn register(&mut self) {
        self.pos.push(0);
    }

    fn len(&self) -> usize {
        self.free.len() + self.timed.len()
    }

    fn half_len(&self, h: Half) -> usize {
        self.slots(h).len()
    }

    fn slots(&self, h: Half) -> &[HeapEntry] {
        match h {
            Half::Free => &self.free,
            Half::Timed => &self.timed,
        }
    }

    /// One half's slots, the shared position lane, and the half's
    /// position tag — the disjoint borrows every mutation needs.
    fn parts(&mut self, h: Half) -> (&mut Vec<HeapEntry>, &mut Vec<u32>, u32) {
        match h {
            Half::Free => (&mut self.free, &mut self.pos, 0),
            Half::Timed => (&mut self.timed, &mut self.pos, TIMED_TAG),
        }
    }

    fn half_of(&self, id: TxnId) -> Option<Half> {
        match self.pos[id.0 as usize] {
            0 => None,
            p if p & TIMED_TAG != 0 => Some(Half::Timed),
            _ => Some(Half::Free),
        }
    }

    /// The maximum entry of one half, if any. O(1).
    fn peek(&self, h: Half) -> Option<HeapEntry> {
        self.slots(h).first().copied()
    }

    /// All current entries of one half, heap order (used to enumerate a
    /// half during anchor migration; order does not matter to callers).
    fn entries(&self, h: Half) -> &[HeapEntry] {
        self.slots(h)
    }

    /// `id`'s stored key and half, if indexed. One lookup.
    fn key_of(&self, id: TxnId) -> Option<(Priority, Half)> {
        let p = self.pos[id.0 as usize];
        if p == 0 {
            return None;
        }
        let h = if p & TIMED_TAG != 0 {
            Half::Timed
        } else {
            Half::Free
        };
        let i = ((p & !TIMED_TAG) - 1) as usize;
        Some((self.slots(h)[i].pri, h))
    }

    /// `id`'s key if it lives in half `h` (migration walks enumerate a
    /// half and then operate on its members).
    fn key_in(&self, h: Half, id: TxnId) -> Option<Priority> {
        match self.key_of(id) {
            Some((k, half)) if half == h => Some(k),
            _ => None,
        }
    }

    /// Insert an entry for a transaction not currently indexed.
    fn insert(&mut self, h: Half, e: HeapEntry) {
        debug_assert!(self.half_of(e.id).is_none(), "{} already indexed", e.id);
        let (slots, pos, tag) = self.parts(h);
        let i = slots.len();
        slots.push(e);
        pos[e.id.0 as usize] = (i as u32 + 1) | tag;
        split_sift_up(slots, pos, tag, i);
    }

    /// Remove `id`'s entry from whichever half holds it. Returns whether
    /// it was present.
    fn remove(&mut self, id: TxnId) -> bool {
        let p = self.pos[id.0 as usize];
        if p == 0 {
            return false;
        }
        let h = if p & TIMED_TAG != 0 {
            Half::Timed
        } else {
            Half::Free
        };
        let i = ((p & !TIMED_TAG) - 1) as usize;
        self.pos[id.0 as usize] = 0;
        let (slots, pos, tag) = self.parts(h);
        let last = slots.len() - 1;
        if i != last {
            slots.swap(i, last);
            pos[slots[i].id.0 as usize] = (i as u32 + 1) | tag;
        }
        slots.pop();
        if i < slots.len() {
            // The displaced entry can need to move either way.
            split_sift_up(slots, pos, tag, i);
            split_sift_down(slots, pos, tag, i);
        }
        true
    }

    /// Reposition `id` under a new key within its current half (raise or
    /// lower). Returns whether it was present.
    fn set_key(&mut self, id: TxnId, pri: Priority) -> bool {
        let p = self.pos[id.0 as usize];
        if p == 0 {
            return false;
        }
        let h = if p & TIMED_TAG != 0 {
            Half::Timed
        } else {
            Half::Free
        };
        let i = ((p & !TIMED_TAG) - 1) as usize;
        let (slots, pos, tag) = self.parts(h);
        slots[i].pri = pri;
        split_sift_up(slots, pos, tag, i);
        split_sift_down(slots, pos, tag, i);
        true
    }
}

struct EngineState<'p> {
    cfg: &'p SimConfig,
    policy: &'p dyn Policy,
    calendar: ComponentCalendar<Event>,
    txns: Vec<Transaction>,
    /// Ids of transactions still in the system, in arrival order.
    active: Vec<TxnId>,
    locks: LockTable,
    disk: Option<Disk>,
    running: Option<TxnId>,
    cpu_event: EventHandle,
    metrics: MetricsCollector,
    /// Per-transaction "was last dispatched via IOwait-schedule" flags,
    /// used to classify noncontributing executions.
    secondary: Vec<bool>,
    /// Optional decision log (None in normal runs — zero overhead beyond
    /// the branch).
    trace: Option<Trace>,
    /// Optional terminal-outcome sink (None in batch runs — the serving
    /// front-end enables it to observe per-transaction completions
    /// without touching the metrics pipeline). Purely observational: it
    /// never influences scheduling, RNG draws or metrics.
    completions: Option<Vec<Completion>>,
    /// Disk fault injector, present iff the config's
    /// [`rtx_sim::fault::FaultPlan`] disk section can inject anything.
    /// `None` takes the exact pre-fault code path and consumes no
    /// randomness.
    faults: Option<FaultInjector>,
    /// Whether the disk's *active* transfer was drawn to fail. Taken (and
    /// reset) when the transfer completes.
    active_io_failed: bool,
    /// CPU fault injector, present iff the plan's CPU section can inject
    /// anything. Draws from its own `"cpu-faults"` stream, so disk and
    /// CPU injection never perturb each other.
    cpu_faults: Option<CpuFaultInjector>,
    /// Whether the *current* compute burst was drawn to stall. Taken
    /// when the burst completes; voided by preemption (the verdict
    /// belonged to the full burst, and the resumed burst draws afresh).
    active_cpu_failed: bool,
    /// The admission safety factor currently in force. Pinned for
    /// [`AdmissionConfig::Static`]; moved by the windowed miss-ratio
    /// feedback controller for [`AdmissionConfig::Adaptive`].
    admission_factor: f64,
    /// Start of the adaptive controller's current tally window.
    adm_window_started: SimTime,
    /// Commits tallied in the current controller window.
    adm_win_committed: u64,
    /// Deadline misses tallied in the current controller window.
    adm_win_missed: u64,
    /// How priorities and conflict relations are evaluated (incremental
    /// caches, always-recompute oracle, or verify-both).
    mode: CacheMode,
    /// Measure wall time in `pick_next`? Off in normal runs so summaries
    /// stay comparable across machines.
    profile: bool,
    /// Incrementally maintained conflict state: the P-list, per-txn
    /// version counters, the pairwise conflict memo and the epoch. Kept
    /// up to date in every mode (it is the ground truth `Verify` checks
    /// the scans against); only *consulted* outside `AlwaysRecompute`.
    accel: ConflictAccel,
    /// Number of active transactions in `TxnState::Ready`, maintained by
    /// [`Self::set_state`] — replaces the per-event ready-queue scan.
    ready_count: usize,
    /// Dense copy of every transaction's scheduling state (indexed by
    /// id), written wherever the authoritative `Transaction::state`
    /// changes. The pick loops' runnability filters read this 1-byte
    /// tag instead of dereferencing the full `Transaction` record —
    /// at MPL ≥ 1024 the tag vector stays resident in a few cache lines
    /// while the transaction structs span megabytes.
    state_tags: Vec<TxnState>,
    /// The split lazy priority index over active transactions (used for
    /// `Static` and `ConflictState` policies outside `AlwaysRecompute`).
    /// Exactly one entry per active transaction across the two halves —
    /// seeded at arrival, repositioned in place whenever the cache is
    /// written, and removed at commit. Invariant: an active
    /// transaction's *free*-half key is bit-identical to its cached
    /// priority in the accelerator's slot arena; a *timed*-half key
    /// folded back by the fall accumulator (`key − A(now)`, with float
    /// slack) is an upper bound on it.
    index: RefCell<SplitIndex>,
    /// Slack-ordered pick index for `TimeAndSelf` policies exposing a
    /// time-invariant key (`Policy::time_invariant_key`; LSF): keys hold
    /// `K` with `priority ≈ now + K`, so the order is the priority order
    /// at every instant and picks validate the top instead of rescanning
    /// the active set. Partitioned into per-deadline bands, each with
    /// its own validation-nudge scale ([`SlackBands`]).
    slack: RefCell<SlackBands>,
    /// The policy's declared runner fall rate (`ConflictState` policies;
    /// 0 elsewhere): priority units per ms of runner compute time.
    fall_rate: f64,
    /// Fall accumulated over *completed* anchored compute spans, in
    /// priority units. `A(now) = offset_base + fall_rate · (now − t0)`
    /// while anchored at `t0`, else `offset_base`.
    offset_base: Cell<f64>,
    /// `Some((runner, t0))` while the runner's compute burst accrues
    /// service: the timed half's effective bounds fall at `fall_rate`
    /// from `t0` until the anchor is released.
    anchor: Cell<Option<(TxnId, SimTime)>>,
    /// The runner whose unsafe set the timed half currently mirrors
    /// (set by the migration walks at [`Self::anchor_timed`]). When the
    /// next anchored runner is the same transaction and no conflict
    /// clear or decision narrowing intervened, the walks are skipped
    /// wholesale — the timed membership is still a subset of the
    /// runner's unsafe set, which is all soundness needs (the counter
    /// `migrations_batched` tallies these reuses). Any event that can
    /// *remove* an unsafe pair (a clear's repair walk, a narrowing)
    /// resets this to `None`, forcing a fresh walk at the next anchor.
    walked: Cell<Option<TxnId>>,
    /// Consecutive anchor releases that left frozen entries lingering in
    /// the timed half; at [`FROZEN_COMPACT_SPANS`] the half is scanned
    /// and non-members folded out ([`Self::maybe_compact_frozen`]).
    frozen_spans: Cell<u32>,
    /// Scratch buffer for filtered picks (IOwait-schedule): entries of
    /// unacceptable transactions are lifted out while scanning and
    /// re-inserted afterwards; reused to avoid per-pick allocation.
    scratch: RefCell<Vec<(HeapEntry, Half)>>,
    /// Scratch for slack-band picks: popped entries tagged with their
    /// band, re-inserted after the argmax settles.
    slack_scratch: RefCell<Vec<(HeapEntry, usize)>>,
    /// Scratch buffer for the targeted pair-stamp walks.
    walk_buf: Vec<TxnId>,
    /// Scratch buffer for the anchor-arming and compaction walks, which
    /// run from `&self` pick paths and so cannot take `walk_buf`.
    arm_buf: RefCell<Vec<TxnId>>,
    /// Scratch buffer for reverse-index sharer enumeration.
    sharer_buf: RefCell<Vec<TxnId>>,
    // Scheduler-overhead tallies (Cells: bumped from &self paths).
    pick_next_calls: Cell<u64>,
    priority_evals: Cell<u64>,
    priority_cache_hits: Cell<u64>,
    sched_wall_ns: Cell<u64>,
    heap_pushes: Cell<u64>,
    heap_stale_pops: Cell<u64>,
    heap_validated_picks: Cell<u64>,
    verify_checks: Cell<u64>,
    /// Clear-repair walks performed and candidates visited by them: the
    /// visit count scales with the cleared transaction's sharer set, not
    /// with MPL, which is the reverse index's point.
    clear_repair_clears: Cell<u64>,
    clear_repair_visits: Cell<u64>,
    /// Entries moved between split-index halves (anchor changes and
    /// cross-half cache writes).
    index_migrations: Cell<u64>,
    /// Compute bursts that reused the previous walk's timed-half
    /// membership — their migration walks were skipped entirely.
    migrations_batched: Cell<u64>,
    /// Timed-half drains performed by [`Self::maybe_compact_frozen`].
    frozen_compactions: Cell<u64>,
    /// Contiguous item-range shard geometry shared by the lock table and
    /// the parallel conflict-epoch path (identity map at `shards = 1`).
    shard_map: ShardMap,
    /// Conflict epochs whose candidate sets were evaluated by per-shard
    /// worker threads and merged at the barrier (0 at `shards = 1`).
    shard_barriers: Cell<u64>,
    /// Barrier-surfaced conflicters whose footprint spans >1 shard.
    cross_shard_conflicts: Cell<u64>,
}

/// How many consecutive anchor releases may pass before
/// [`EngineState::maybe_compact_frozen`] scans the frozen timed half and
/// folds out entries that are no longer members of the mirrored unsafe
/// set. Bounds how long a leftover can linger (and with it the offset's
/// monotone growth) in long mostly-idle runs where a handful of frozen
/// entries would otherwise sit across thousands of spans.
const FROZEN_COMPACT_SPANS: u32 = 256;

/// `v` plus a floating-point safety margin: used when repairing a cached
/// upper bound by an exact real-arithmetic delta, so the repaired key
/// stays an upper bound even after the roundings the fresh evaluation and
/// the repair perform differently.
///
/// The margin scales with `scale` — the largest magnitude appearing in
/// *either* computation — not with `v` itself: a repair can cancel (an
/// EDF-Wait entry at `-(d + 10¹²)` raised by `10¹²` lands near `-d`),
/// and the bits of `d` lost to rounding at magnitude `10¹²` are an
/// *absolute* error of order `ulp(10¹²)`, invisible at the result's own
/// magnitude. Looseness is harmless — the pick path revalidates the top
/// bit-exactly before dispatching — only a key *below* the true priority
/// would be unsound.
pub fn nudge_up(v: f64, scale: f64) -> f64 {
    if v.is_infinite() {
        return v;
    }
    v + (scale * (32.0 * f64::EPSILON)).max(f64::MIN_POSITIVE)
}

impl<'p> EngineState<'p> {
    fn new(cfg: &'p SimConfig, policy: &'p dyn Policy) -> Self {
        // The injectors' streams derive from the same master seed as the
        // workload streams but are labelled independently, so enabling
        // faults never perturbs the workload draws (and disk and CPU
        // injection never perturb each other).
        let seeder = StreamSeeder::new(cfg.run.seed);
        let faults = if cfg.system.faults.disk_is_none() {
            None
        } else {
            Some(FaultInjector::new(cfg.system.faults.clone(), &seeder))
        };
        let cpu_faults = if cfg.system.faults.cpu_is_none() {
            None
        } else {
            let plan = cfg.system.faults.cpu.clone().expect("cpu_is_none checked");
            Some(CpuFaultInjector::new(plan, &seeder))
        };
        EngineState {
            cfg,
            policy,
            calendar: ComponentCalendar::new(),
            txns: Vec::with_capacity(cfg.run.num_transactions),
            active: Vec::new(),
            locks: LockTable::with_shards(cfg.workload.db_size, cfg.system.shards),
            shard_map: ShardMap::new(cfg.workload.db_size, cfg.system.shards),
            disk: cfg
                .system
                .disk
                .as_ref()
                .map(|d| Disk::with_discipline(d.access_time(), d.discipline)),
            running: None,
            cpu_event: EventHandle::NULL,
            metrics: MetricsCollector::new(),
            secondary: Vec::with_capacity(cfg.run.num_transactions),
            trace: None,
            completions: None,
            faults,
            active_io_failed: false,
            cpu_faults,
            active_cpu_failed: false,
            admission_factor: cfg
                .system
                .admission
                .map(|a| a.initial_factor())
                .unwrap_or(1.0),
            adm_window_started: SimTime::ZERO,
            adm_win_committed: 0,
            adm_win_missed: 0,
            mode: CacheMode::Incremental,
            profile: false,
            accel: ConflictAccel::new(cfg.run.num_transactions, cfg.workload.db_size as usize),
            ready_count: 0,
            state_tags: Vec::with_capacity(cfg.run.num_transactions),
            index: RefCell::new(SplitIndex::default()),
            slack: RefCell::new(SlackBands::default()),
            fall_rate: match policy.depends_on() {
                PriorityDeps::ConflictState { runner_fall_rate } => {
                    assert!(
                        runner_fall_rate.is_finite() && runner_fall_rate >= 0.0,
                        "runner fall rate must be finite and non-negative"
                    );
                    runner_fall_rate
                }
                _ => 0.0,
            },
            offset_base: Cell::new(0.0),
            anchor: Cell::new(None),
            walked: Cell::new(None),
            frozen_spans: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
            slack_scratch: RefCell::new(Vec::new()),
            walk_buf: Vec::new(),
            arm_buf: RefCell::new(Vec::new()),
            sharer_buf: RefCell::new(Vec::new()),
            pick_next_calls: Cell::new(0),
            priority_evals: Cell::new(0),
            priority_cache_hits: Cell::new(0),
            sched_wall_ns: Cell::new(0),
            heap_pushes: Cell::new(0),
            heap_stale_pops: Cell::new(0),
            heap_validated_picks: Cell::new(0),
            verify_checks: Cell::new(0),
            clear_repair_clears: Cell::new(0),
            clear_repair_visits: Cell::new(0),
            index_migrations: Cell::new(0),
            migrations_batched: Cell::new(0),
            frozen_compactions: Cell::new(0),
            shard_barriers: Cell::new(0),
            cross_shard_conflicts: Cell::new(0),
        }
    }

    /// Is the lazy priority heap the pick path for this run? True for
    /// policies whose cached priorities survive across scheduling points
    /// (`Static`, and `ConflictState` under per-pair stamps).
    /// `TimeAndSelf` and `Volatile` priorities move with every clock
    /// advance, so a heap over them would be rebuilt per pick — the scan
    /// is strictly cheaper. `AlwaysRecompute` keeps the verbatim pre-heap
    /// scan as the oracle.
    fn heap_in_use(&self) -> bool {
        self.mode != CacheMode::AlwaysRecompute
            && matches!(
                self.policy.depends_on(),
                PriorityDeps::Static | PriorityDeps::ConflictState { .. }
            )
    }

    /// Is the slack-ordered index the pick path for this run? True for
    /// `TimeAndSelf` policies that expose a time-invariant key
    /// ([`Policy::time_invariant_key`]): their priorities all advance
    /// with the clock at the same unit rate, so the *order* of cached
    /// keys survives clock advances even though the values don't. The
    /// index is maintained per transaction (a policy returning `None`
    /// simply never populates it), so requiring full coverage of the
    /// active set makes the gate safe for any policy; the
    /// `AlwaysRecompute` oracle keeps the verbatim scan.
    fn slack_in_use(&self) -> bool {
        self.mode != CacheMode::AlwaysRecompute
            && self.policy.depends_on() == PriorityDeps::TimeAndSelf
            && self.slack.borrow().len() == self.active.len()
    }

    /// (Re)key `id` in the slack index after an own-state change
    /// (admission, progress, restart). No-op unless a `TimeAndSelf`
    /// policy exposes a time-invariant key for it.
    fn slack_upsert(&self, id: TxnId) {
        if self.mode == CacheMode::AlwaysRecompute
            || self.policy.depends_on() != PriorityDeps::TimeAndSelf
        {
            return;
        }
        let t = self.txn(id);
        let Some(k) = self.policy.time_invariant_key(t) else {
            return;
        };
        let b = SlackBands::band_of(t.deadline);
        let mut slack = self.slack.borrow_mut();
        let band = slack.band_mut(b);
        band.key_scale
            .set(band.key_scale.get().max(k.abs()).max(t.deadline.as_ms()));
        slack.upsert(
            b,
            HeapEntry {
                pri: Priority(k),
                arrival: t.arrival,
                id,
            },
        );
        self.heap_pushes.set(self.heap_pushes.get() + 1);
    }

    /// The fall accumulator `A(now)`: total priority fall every
    /// runner-unsafe key has accrued since the run started. Monotone
    /// nondecreasing; grows only while a compute burst is anchored.
    fn fall_offset_now(&self) -> f64 {
        let base = self.offset_base.get();
        match self.anchor.get() {
            Some((_, t0)) => base + self.fall_rate * self.now().since(t0).as_ms(),
            None => base,
        }
    }

    /// The runner whose unsafe set the timed half currently tracks: the
    /// anchored runner while a burst is on the CPU, else the last-walked
    /// runner whose membership the half still mirrors (the half stays
    /// frozen — but valid — between the bursts of a runner's streak).
    /// `None` disables timed enrollment.
    #[inline]
    fn timed_target(&self) -> Option<TxnId> {
        self.anchor
            .get()
            .map(|(r, _)| r)
            .or_else(|| self.walked.get())
    }

    /// The key and half for `id`'s index entry given its cached bound
    /// `value`: timed iff `id` is unsafe w.r.t. the timed half's target
    /// runner (exactly the keys that fall at `fall_rate` while that
    /// runner computes), with the fall offset folded in so the stored
    /// key holds still while the effective bound falls. Enrolling while
    /// the half is frozen (between a streak's bursts) is sound — the
    /// effective bound equals `value` until the next anchor resumes the
    /// fall — and is what lets boundary-pick re-parks rejoin the falling
    /// band instead of going stale in the free half.
    fn entry_key_for(&self, id: TxnId, value: Priority) -> (Priority, Half) {
        if self.fall_rate > 0.0 {
            if let Some(r) = self.timed_target() {
                if r != id && self.accel.is_unsafe(self.txn(r), self.txn(id)) {
                    let a = self.fall_offset_now();
                    let key = Priority(nudge_up(value.0 + a, value.0.abs().max(a)));
                    return (key, Half::Timed);
                }
            }
        }
        (value, Half::Free)
    }

    /// The effective upper bound a timed-half key stands for right now.
    fn timed_effective(&self, key: Priority, a: f64) -> Priority {
        Priority(nudge_up(key.0 - a, key.0.abs().max(a)))
    }

    /// [`Self::entry_key_for`] for *cache-write* upserts: an entry not
    /// already in the timed half enrolls only if the falling band can
    /// still reach its bound — the band's top effective bound falls at
    /// most `fall_rate ×` the target's remaining compute before the
    /// streak ends and the next walk re-decides membership, so a write
    /// that lands deeper than that would migrate an entry no pick can
    /// observe in the band. Leaving it in the free half is sound (its
    /// exact key holds still while the member priorities fall — stale
    /// *high*), and cheap: most such writes are conflict-raise repairs of
    /// far-from-the-top blocked transactions that get re-keyed again long
    /// before they matter. Entries already enrolled keep their
    /// membership, so the walks' mirror stays complete. The depth test is
    /// a performance heuristic only — either outcome keeps every key an
    /// upper bound.
    fn entry_key_for_write(&self, id: TxnId, value: Priority) -> (Priority, Half) {
        if self.fall_rate > 0.0 {
            if let Some(r) = self.timed_target() {
                if r != id && self.accel.is_unsafe(self.txn(r), self.txn(id)) {
                    let enroll = {
                        let index = self.index.borrow();
                        match index.half_of(id) {
                            Some(Half::Timed) => true,
                            _ => match index.peek(Half::Timed) {
                                None => true,
                                Some(top) => {
                                    let t = self.txn(r);
                                    let rem = self.fall_rate
                                        * (t.resource_time.as_ms() - t.service.as_ms()).max(0.0);
                                    let band =
                                        self.timed_effective(top.pri, self.fall_offset_now());
                                    value.0 >= band.0 - rem
                                }
                            },
                        }
                    };
                    if enroll {
                        let a = self.fall_offset_now();
                        let key = Priority(nudge_up(value.0 + a, value.0.abs().max(a)));
                        return (key, Half::Timed);
                    }
                }
            }
        }
        (value, Half::Free)
    }

    /// Anchor runner `r`'s starting compute burst: from now until the
    /// burst ends, the fall accumulator accrues and exactly the
    /// priorities unsafe w.r.t. `r` fall at `fall_rate`. The migration
    /// walks that (re)populate the timed half run only when the half does
    /// not already mirror `r`'s unsafe set — same runner as the last
    /// walk, and no conflict-set clear or narrowing since (tracked by
    /// `walked`). A runner committing or being preempted and re-granted
    /// repeatedly — the high-MPL steady state — pays the walks once per
    /// streak, not once per burst (`migrations_batched` counts the
    /// skips). Reuse is sound: between walks `r`'s sets only grow
    /// (missing pairs leave keys stale-*high*, which the validated pick
    /// tolerates) and members only stop being unsafe on clears or
    /// narrowings, which invalidate `walked`.
    ///
    /// `cfg.system.eager_migrations` disables reuse — every burst walks,
    /// for the batched-vs-eager equivalence ablation.
    fn anchor_timed(&mut self, r: TxnId) {
        if self.fall_rate == 0.0 || !self.heap_in_use() {
            return;
        }
        debug_assert!(self.anchor.get().is_none(), "anchoring while anchored");
        debug_assert!(
            self.txn(r).is_partially_executed(),
            "compute bursts only run after a lock grant"
        );
        self.anchor.set(Some((r, self.now())));
        if !self.cfg.system.eager_migrations && self.walked.get() == Some(r) {
            self.migrations_batched
                .set(self.migrations_batched.get() + 1);
            return;
        }
        self.run_migration_walks(r);
        self.walked.set(Some(r));
    }

    /// The anchor's migration walks. O(affected), not O(active): timed
    /// entries that are not unsafe w.r.t. `r` fold back to the free half
    /// (their effective bound is constant again), and the free entries to
    /// pull in are enumerated through the item→transaction reverse index
    /// — any transaction unsafe w.r.t. `r` shares an item with
    /// `r.accessed`.
    fn run_migration_walks(&self, r: TxnId) {
        let a = self.offset_base.get();
        let mut movers = self.arm_buf.borrow_mut();
        movers.clear();
        {
            let index = self.index.borrow();
            let rt = self.txn(r);
            for e in index.entries(Half::Timed) {
                if e.id == r || !self.accel.is_unsafe(rt, self.txn(e.id)) {
                    movers.push(e.id);
                }
            }
        }
        self.fold_out_timed(&movers, a);
        movers.clear();
        {
            let mut sharers = self.sharer_buf.borrow_mut();
            self.accel.sharers(&self.txn(r).accessed, &mut sharers);
            let index = self.index.borrow();
            let rt = self.txn(r);
            for &x in sharers.iter() {
                if x != r
                    && index.half_of(x) == Some(Half::Free)
                    && self.accel.is_unsafe(rt, self.txn(x))
                {
                    movers.push(x);
                }
            }
        }
        for &x in movers.iter() {
            let mut index = self.index.borrow_mut();
            let bound = index
                .key_in(Half::Free, x)
                .expect("enumerated from free half");
            index.remove(x);
            let key = Priority(nudge_up(bound.0 + a, bound.0.abs().max(a)));
            index.insert(
                Half::Timed,
                HeapEntry {
                    pri: key,
                    arrival: self.txn(x).arrival,
                    id: x,
                },
            );
            self.index_migrations.set(self.index_migrations.get() + 1);
        }
        movers.clear();
    }

    /// Fold the listed timed-half entries back to the free half at fall
    /// offset `a`, rewriting each cache entry to the folded bound so the
    /// cache stays bit-identical to the free-half key (both stay upper
    /// bounds — the write only loosens by the fold's ULP slack).
    fn fold_out_timed(&self, ids: &[TxnId], a: f64) {
        for &x in ids {
            let mut index = self.index.borrow_mut();
            let key = index
                .key_in(Half::Timed, x)
                .expect("enumerated from timed half");
            index.remove(x);
            let bound = self.timed_effective(key, a);
            debug_assert!(
                self.accel.slot(x).pri_valid(),
                "{x}: indexed transaction without cache entry"
            );
            self.accel.write_pri(x, bound, self.now());
            index.insert(
                Half::Free,
                HeapEntry {
                    pri: bound,
                    arrival: self.txn(x).arrival,
                    id: x,
                },
            );
            self.index_migrations.set(self.index_migrations.get() + 1);
        }
    }

    /// End the anchored compute span (burst completion or preemption):
    /// fold the span's fall into `offset_base`. Timed entries stay where
    /// they are — their effective bounds simply stop falling, which keeps
    /// them sound and lets the next burst by the same runner reuse them —
    /// and drain back to the free half lazily at the next walk or cache
    /// write, with [`Self::maybe_compact_frozen`] as the backstop against
    /// unbounded lingering.
    fn freeze_timed(&self) {
        if let Some((_, t0)) = self.anchor.take() {
            self.offset_base
                .set(self.offset_base.get() + self.fall_rate * self.now().since(t0).as_ms());
            self.maybe_compact_frozen();
        }
    }

    /// Bound stale-offset accumulation from lazily-drained frozen
    /// entries. Called at each anchor release: with the timed half empty
    /// no key encodes the accumulated offset, so it re-zeroes for free;
    /// otherwise every [`FROZEN_COMPACT_SPANS`] releases the half is
    /// scanned and entries that are no longer members of the mirrored
    /// unsafe set — all of them, when no target is mirrored — fold back
    /// to the free half. The walks keep the live mirror exact, so the
    /// scan normally moves nothing; it is the backstop against lingering
    /// should an enrollment path ever outpace the walks. Membership and
    /// the offset survive a scan that leaves entries behind, so a
    /// runner's batching streak is not interrupted; the offset re-zeroes
    /// only when the half drains empty. All of this is invisible to
    /// results — folds and effective-bound reads always pair a key with
    /// the offset it was written under.
    fn maybe_compact_frozen(&self) {
        if self.index.borrow().half_len(Half::Timed) == 0 {
            self.offset_base.set(0.0);
            self.frozen_spans.set(0);
            self.walked.set(None);
            return;
        }
        let spans = self.frozen_spans.get() + 1;
        if spans < FROZEN_COMPACT_SPANS {
            self.frozen_spans.set(spans);
            return;
        }
        self.frozen_spans.set(0);
        let a = self.offset_base.get();
        let mut movers = self.arm_buf.borrow_mut();
        movers.clear();
        match self.timed_target() {
            // No target: the half mirrors nobody, so every frozen entry
            // is a leftover.
            None => {
                movers.extend(
                    self.index
                        .borrow()
                        .entries(Half::Timed)
                        .iter()
                        .map(|e| e.id),
                );
            }
            // Live mirror: fold out only entries that stopped being
            // members (the walks keep this set empty in the common case,
            // so the scan is a cheap amortized verification).
            Some(r) => {
                let index = self.index.borrow();
                let rt = self.txn(r);
                for e in index.entries(Half::Timed) {
                    if e.id == r || !self.accel.is_unsafe(rt, self.txn(e.id)) {
                        movers.push(e.id);
                    }
                }
            }
        }
        self.fold_out_timed(&movers, a);
        movers.clear();
        drop(movers);
        if self.index.borrow().half_len(Half::Timed) == 0 {
            self.offset_base.set(0.0);
            self.walked.set(None);
        }
        self.frozen_compactions
            .set(self.frozen_compactions.get() + 1);
    }

    /// Record a trace event if tracing is enabled.
    fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(trace) = &mut self.trace {
            let at = self.calendar.now();
            trace.push(at, event());
        }
    }

    fn now(&self) -> SimTime {
        self.calendar.now()
    }

    fn txn(&self, id: TxnId) -> &Transaction {
        &self.txns[id.0 as usize]
    }

    fn txn_mut(&mut self, id: TxnId) -> &mut Transaction {
        &mut self.txns[id.0 as usize]
    }

    /// The one place an *active* transaction's scheduling state changes:
    /// maintains the ready counter that replaces the per-event ready-queue
    /// scan. (Terminal states set on not-yet-pushed slots — admission
    /// rejection — bypass this; they are never Ready-counted.)
    fn set_state(&mut self, id: TxnId, new: TxnState) {
        let old = self.txn(id).state;
        if old == new {
            return;
        }
        if old == TxnState::Ready {
            self.ready_count -= 1;
        }
        if new == TxnState::Ready {
            self.ready_count += 1;
        }
        self.txn_mut(id).state = new;
        self.state_tags[id.0 as usize] = new;
    }

    /// Runnability from the dense tag vector — one byte instead of a
    /// `Transaction` dereference in the pick loops' accept closures.
    #[inline]
    fn runnable_tag(&self, id: TxnId) -> bool {
        let r = self.state_tags[id.0 as usize].is_runnable();
        debug_assert_eq!(
            r,
            self.txn(id).is_runnable(),
            "{id}: state tag diverged from the transaction record"
        );
        r
    }

    /// Do conflict events perform targeted per-pair invalidation? Only
    /// worth the walk when a `ConflictState` policy actually reads the
    /// stamps; the `AlwaysRecompute` oracle never consults any cache.
    fn targeted_invalidation_active(&self) -> bool {
        self.mode != CacheMode::AlwaysRecompute
            && matches!(self.policy.depends_on(), PriorityDeps::ConflictState { .. })
    }

    /// A lock grant grew `id`'s access sets: record it with the
    /// accelerator; nothing else.
    ///
    /// Deliberately **no** walk over the other transactions and no index
    /// maintenance: growth can only *add* nonnegative penalty terms, i.e.
    /// only *lower* other `ConflictState` priorities (see
    /// `PriorityDeps::ConflictState`'s fall-monotonicity clause), and
    /// `id`'s own priority never reads its own access sets. Cached values
    /// and index keys become stale-high upper bounds, which the
    /// peek-and-revalidate pick tolerates — the O(active) per-grant walk
    /// is traded for an occasional demotion at the next pick.
    fn conflict_grew(&mut self, id: TxnId, was_partial: bool) {
        self.accel.note_access_growth(id, was_partial);
    }

    /// `id`'s access sets are about to be cleared (abort/restart or
    /// commit): repair the cached priorities of the transactions whose
    /// penalty currently includes `id` — the walk runs *before* the
    /// clearing so the still-valid memo describes the contribution being
    /// removed — then record the clearing.
    ///
    /// This is the **one** conflict event that keeps an eager walk: a
    /// clear removes penalty terms, i.e. *raises* the affected
    /// `ConflictState` priorities, and a risen priority hiding under a
    /// low index key would make a peek-ordered pick unsound. Falls
    /// (growth, clock advance) need no walk — see [`Self::conflict_grew`].
    fn conflict_cleared(&mut self, id: TxnId) {
        if self.targeted_invalidation_active() {
            self.repair_unsafe_against(id);
        }
        self.accel.note_sets_cleared(id);
        // A clear shrinks only the unsafe pairs in which the cleared
        // transaction is the *partial* — `is_unsafe(r, x)` reads `r`'s
        // accessed/written sets but only `x`'s `might_access`, which a
        // clear leaves alone. So the walked timed-half membership (pairs
        // with the last-walked runner as partial) stays valid unless the
        // cleared transaction *is* that runner.
        if self.walked.get() == Some(id) {
            self.walked.set(None);
        }
    }

    /// The targeted per-pair walk on a clear: for every active
    /// transaction `X` with `is_unsafe(c, X)` — exactly those whose
    /// penalty is about to lose `c`'s term — bump `X`'s pair stamp (its
    /// conflict epoch moved) and *repair* its cached priority and index
    /// key in place, in O(1) per victim, with no exact recomputation:
    ///
    /// Removing `c`'s term raises a victim's priority by at most the
    /// policy-supplied [`Policy::conflict_clear_raise`] bound (for CCA,
    /// `w · (effective_service(c) + abort_cost)` — the exact term every
    /// victim loses). Adding that bound (plus a few ULPs of rounding
    /// slack) to the victim's cached value, itself an upper bound,
    /// yields a new upper bound on the post-clear priority; the pick
    /// path's revalidation tightens it exactly when (and only when) the
    /// victim surfaces at the top. The old design recomputed and
    /// re-pushed every victim here — O(victims) full evaluations per
    /// clear, which dominated high-contention runs.
    ///
    /// O(sharers) memoized pair tests, paid only on clears (the rare,
    /// priority-raising event): instead of probing every active
    /// transaction, the walk enumerates through the item→transaction
    /// reverse index only the transactions whose `might_access` shares
    /// an item with `c.accessed` — a sound superset of the unsafe set,
    /// since either direction of `is_unsafe_with(c, x)` requires such a
    /// shared item (`written ⊆ accessed ⊆ might_access`). The other
    /// active transactions keep their cached priorities untouched, and
    /// the walk's cost scales with `c`'s conflicting set, not with MPL
    /// (`clear_repair_visits` evidences this).
    fn repair_unsafe_against(&mut self, c: TxnId) {
        let raise = self.policy.conflict_clear_raise(self.txn(c), &self.view());
        let mut affected = std::mem::take(&mut self.walk_buf);
        affected.clear();
        {
            let ct = self.txn(c);
            let mut sharers = self.sharer_buf.borrow_mut();
            self.accel.sharers(&ct.accessed, &mut sharers);
            self.clear_repair_clears
                .set(self.clear_repair_clears.get() + 1);
            self.clear_repair_visits
                .set(self.clear_repair_visits.get() + sharers.len() as u64);
            if self.shard_map.shards() > 1 && sharers.len() >= PARALLEL_MIN_CANDIDATES {
                self.parallel_epoch(c, ct, &sharers, &mut affected);
            } else {
                for &x in sharers.iter() {
                    if x != c && self.accel.is_unsafe(ct, self.txn(x)) {
                        affected.push(x);
                    }
                }
            }
            if self.mode == CacheMode::Verify {
                // Oracle: the pre-reverse-index full active walk. Both
                // enumerate ascending by id (= arrival order), so the
                // affected lists must match exactly, order included.
                let full: Vec<TxnId> = self
                    .active
                    .iter()
                    .copied()
                    .filter(|&x| x != c && crate::txn::is_unsafe_with(ct, self.txn(x)))
                    .collect();
                assert_eq!(
                    affected, full,
                    "reverse-index repair walk diverged from the active-scan oracle"
                );
                self.verify_checks.set(self.verify_checks.get() + 1);
            }
        }
        let a = self.fall_offset_now();
        for &x in &affected {
            self.accel.bump_pair_stamp(x);
            // Raise from the *tightest* bound available: a timed-half
            // entry's effective key has been falling with the runner's
            // service while the cached value stood still, so repairing
            // from the cache would silently discard every fall the timed
            // half tracked (and hand the pick loop the stale-high key
            // back). Both are upper bounds; take the smaller.
            let folded = match self.index.borrow().key_of(x) {
                Some((key, Half::Timed)) => Some(self.timed_effective(key, a)),
                _ => None,
            };
            let bound = {
                let s = self.accel.slot(x);
                debug_assert!(
                    s.pri_valid() && s.pri_value.0.is_finite(),
                    "{x}: active ConflictState transaction without a seeded cache entry"
                );
                debug_assert!(raise >= 0.0, "clear-raise bound must be nonnegative");
                let mut value = s.pri_value;
                if let Some(f) = folded {
                    if f < value {
                        value = f;
                    }
                }
                Priority(nudge_up(value.0 + raise, value.0.abs().max(raise)))
            };
            self.accel.write_pri(x, bound, self.now());
            self.index_upsert(x, bound);
        }
        affected.clear();
        self.walk_buf = affected;
    }

    /// One parallel conflict epoch: partition the candidate sharers by
    /// the home shard of their footprint, evaluate the raw pair predicate
    /// in per-shard worker threads against the immutable transaction
    /// arena, and merge verdicts back in ascending candidate order — the
    /// exact order the sequential walk produces, so `affected` is
    /// bit-identical to the sequential path's
    /// ([`ConflictAccel::is_unsafe`] memoizes exactly
    /// [`crate::txn::is_unsafe_with`]).
    ///
    /// Workers capture only `&[Transaction]` and `&[TxnId]` (both
    /// `Sync`); the accelerator's `Cell`-laden memo state is untouched,
    /// which the compiler enforces (`ConflictAccel` is `!Sync`), so the
    /// pair-cache counters do not advance during a parallel epoch.
    fn parallel_epoch(
        &self,
        c: TxnId,
        ct: &Transaction,
        sharers: &[TxnId],
        affected: &mut Vec<TxnId>,
    ) {
        let txns: &[Transaction] = &self.txns;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shard_map.shards()];
        for (pos, &x) in sharers.iter().enumerate() {
            if x != c {
                let home = self.shard_map.home_shard(&txns[x.0 as usize].might_access);
                buckets[home].push(pos);
            }
        }
        // Verdict slots indexed by candidate position: each worker owns a
        // disjoint set of positions, and the merge below reads them in
        // the original ascending order regardless of worker finish order.
        let mut verdicts = vec![false; sharers.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .filter(|b| !b.is_empty())
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|pos| {
                                let x = &txns[sharers[pos].0 as usize];
                                (pos, crate::txn::is_unsafe_with(ct, x))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (pos, v) in h.join().expect("conflict epoch worker panicked") {
                    verdicts[pos] = v;
                }
            }
        });
        self.shard_barriers.set(self.shard_barriers.get() + 1);
        let mut cross = 0;
        for (pos, &x) in sharers.iter().enumerate() {
            if verdicts[pos] {
                affected.push(x);
                if self
                    .shard_map
                    .is_cross_shard(&txns[x.0 as usize].might_access)
                {
                    cross += 1;
                }
            }
        }
        self.cross_shard_conflicts
            .set(self.cross_shard_conflicts.get() + cross);
    }

    /// The view handed to policies: accel-backed unless the engine is the
    /// always-recompute oracle.
    fn view(&self) -> SystemView<'_> {
        let abort_cost = self.cfg.system.abort_cost();
        match self.mode {
            CacheMode::AlwaysRecompute => SystemView::new(self.now(), &self.txns, abort_cost),
            _ => SystemView::with_accel(self.now(), &self.txns, abort_cost, &self.accel),
        }
    }

    /// A scan-based, memo-free view — what `Verify` recomputes against.
    fn fresh_view(&self) -> SystemView<'_> {
        SystemView::new(self.now(), &self.txns, self.cfg.system.abort_cost())
    }

    /// The cached priority of `id` under the active cache mode.
    ///
    /// Cache validity is what the policy's [`PriorityDeps`] declares:
    /// `Static` entries never expire, `TimeAndSelf` entries expire when
    /// time advances or the transaction's own state changes,
    /// `ConflictState` entries expire when the transaction's own state or
    /// its per-pair conflict stamp moves. `Volatile` (and the
    /// `AlwaysRecompute` oracle) bypass the cache entirely.
    ///
    /// **Exactness.** For every dependency class but `ConflictState` a
    /// hit is bit-exact. A surviving `ConflictState` entry is only an
    /// **upper bound** on the fresh value: the engine deliberately does
    /// not bump stamps on priority *falls* (another transaction's access
    /// growth, effective service accruing with the clock) — only on
    /// *raises* (clears; see [`Self::conflict_cleared`]). Decision points
    /// that need the exact value go through [`Self::priority_exact`];
    /// this path feeds the heap keys and the non-`ConflictState` scans.
    /// In `Verify` mode the returned value is asserted against a fresh
    /// scan-based recomputation — bit-identical where the path claims
    /// exactness, `>=` where it claims an upper bound.
    ///
    /// When the priority index is in use, every cache *write* also moves
    /// the transaction's index key to the new value in place — the
    /// paired-writes invariant (an active transaction's index key is
    /// bit-identical to its cached value at all times).
    fn priority_of(&self, id: TxnId) -> Priority {
        let mut upper_bound_hit = false;
        let result = if self.mode == CacheMode::AlwaysRecompute {
            self.priority_evals.set(self.priority_evals.get() + 1);
            self.policy.priority(self.txn(id), &self.view())
        } else {
            let deps = self.policy.depends_on();
            if deps == PriorityDeps::Volatile {
                self.priority_evals.set(self.priority_evals.get() + 1);
                self.policy.priority(self.txn(id), &self.view())
            } else {
                let now = self.now();
                // One cache-line read covers both the cached priority
                // and the live versions it is keyed against.
                let s = self.accel.slot(id);
                let hit = s.pri_valid()
                    && match deps {
                        PriorityDeps::Static => true,
                        PriorityDeps::TimeAndSelf => s.pri_at == now && s.pri_own == s.own_version,
                        PriorityDeps::ConflictState { .. } => {
                            s.pri_stamp == s.pair_stamp && s.pri_own == s.own_version
                        }
                        PriorityDeps::Volatile => unreachable!("handled above"),
                    };
                if hit {
                    upper_bound_hit = matches!(deps, PriorityDeps::ConflictState { .. });
                    self.priority_cache_hits
                        .set(self.priority_cache_hits.get() + 1);
                    s.pri_value
                } else {
                    self.priority_evals.set(self.priority_evals.get() + 1);
                    let value = self.policy.priority(self.txn(id), &self.view());
                    self.accel.write_pri(id, value, now);
                    if self.heap_in_use() {
                        self.index_upsert(id, value);
                    }
                    value
                }
            }
        };
        if self.mode == CacheMode::Verify {
            let fresh = self.policy.priority(self.txn(id), &self.fresh_view());
            self.verify_checks.set(self.verify_checks.get() + 1);
            if upper_bound_hit {
                assert!(
                    result >= fresh,
                    "{id}: surviving ConflictState entry {} < fresh {} \
                     (a priority rise escaped the clear walk)",
                    result.0,
                    fresh.0
                );
            } else {
                assert_eq!(
                    result.0.to_bits(),
                    fresh.0.to_bits(),
                    "{id}: cached priority {} != fresh {} (stale invalidation?)",
                    result.0,
                    fresh.0
                );
            }
        }
        result
    }

    /// The **exact** priority of `id` — what scheduling decisions (heap
    /// pick validation, wound/HP lock-conflict comparisons) consume.
    ///
    /// For every dependency class but `ConflictState` the cached path is
    /// already exact and this delegates to [`Self::priority_of`]. For
    /// `ConflictState` under lazy falls a surviving entry may be
    /// stale-high, so the value is recomputed against the accel-backed
    /// view (memoized pair verdicts keep this O(P-list), and the P-list
    /// stays near-empty in exactly the high-contention regimes that made
    /// the old per-event walks explode). A recompute that *confirms* the
    /// surviving entry counts as a cache hit and leaves cache and index
    /// untouched; a fall rewrites the entry and demotes the index key in
    /// place — which is exactly how the pick loop retires a stale top.
    fn priority_exact(&self, id: TxnId) -> Priority {
        self.priority_exact_impl(id, true)
    }

    /// [`Self::priority_exact`] minus the index write: for pick loops
    /// that have lifted `id`'s entry out of the index and will reinsert
    /// it themselves (an upsert here would create a duplicate). Cache
    /// write, counters and `Verify` assertions are identical.
    fn priority_exact_detached(&self, id: TxnId) -> Priority {
        self.priority_exact_impl(id, false)
    }

    fn priority_exact_impl(&self, id: TxnId, write_index: bool) -> Priority {
        if self.mode == CacheMode::AlwaysRecompute
            || !matches!(self.policy.depends_on(), PriorityDeps::ConflictState { .. })
        {
            // The delegate is exact for these classes. It only touches
            // the index on a `ConflictState` miss, so a detached caller
            // (`Static`: hits after the arrival seed; `TimeAndSelf`/
            // `Volatile`: no index at all) is never double-inserted.
            return self.priority_of(id);
        }
        let value = self.policy.priority(self.txn(id), &self.view());
        let now = self.now();
        let s = self.accel.slot(id);
        let confirmed = s.pri_valid()
            && s.pri_stamp == s.pair_stamp
            && s.pri_own == s.own_version
            && s.pri_value.0.to_bits() == value.0.to_bits();
        if confirmed {
            self.priority_cache_hits
                .set(self.priority_cache_hits.get() + 1);
        } else {
            self.priority_evals.set(self.priority_evals.get() + 1);
            self.accel.write_pri(id, value, now);
            if write_index && self.heap_in_use() {
                self.index_upsert(id, value);
            }
        }
        if self.mode == CacheMode::Verify {
            let fresh = self.policy.priority(self.txn(id), &self.fresh_view());
            self.verify_checks.set(self.verify_checks.get() + 1);
            assert_eq!(
                value.0.to_bits(),
                fresh.0.to_bits(),
                "{id}: exact priority {} != fresh {} (accel view diverged)",
                value.0,
                fresh.0
            );
        }
        value
    }

    /// Move `id`'s index key to `value` in place (or insert it if `id`
    /// has no entry yet) — the index half of every priority-cache write.
    /// Recomputes which half the entry belongs in (the write may race a
    /// runner anchor that flipped its membership) and migrates if
    /// needed. O(log n) sift; never creates a duplicate entry.
    fn index_upsert(&self, id: TxnId, value: Priority) {
        let (key, half) = self.entry_key_for_write(id, value);
        let mut index = self.index.borrow_mut();
        match index.half_of(id) {
            Some(h) if h == half => {
                index.set_key(id, key);
            }
            Some(_) => {
                index.remove(id);
                index.insert(
                    half,
                    HeapEntry {
                        pri: key,
                        arrival: self.txn(id).arrival,
                        id,
                    },
                );
                self.index_migrations.set(self.index_migrations.get() + 1);
            }
            None => {
                index.insert(
                    half,
                    HeapEntry {
                        pri: key,
                        arrival: self.txn(id).arrival,
                        id,
                    },
                );
            }
        }
        self.heap_pushes.set(self.heap_pushes.get() + 1);
    }

    // ---- event handlers -------------------------------------------------

    fn on_arrival(&mut self, mut txn: Transaction) {
        debug_assert_eq!(txn.id.0 as usize, self.txns.len());
        let id = txn.id;
        let deadline = txn.deadline;
        // Register with the acceleration layer before anything can look at
        // the new id — rejected transactions too, so the id-indexed
        // version/cache vectors stay dense. Arrival changes no conflict
        // state (a fresh transaction holds nothing), so no epoch bump.
        self.accel.register(id);
        self.index.borrow_mut().register();
        if self.cfg.system.admission.is_some() {
            self.adm_maybe_roll();
            if !self.feasible(&txn) {
                // Reject at the door: the transaction never enters the
                // active set, acquires no locks and consumes no resources.
                txn.state = TxnState::Rejected;
                let (arrival, restarts) = (txn.arrival, txn.restarts);
                self.txns.push(txn);
                self.secondary.push(false);
                self.state_tags.push(TxnState::Rejected);
                // A rejected transaction never becomes active, so its
                // arena slot goes straight back to the free list.
                self.accel.release(id);
                self.metrics.record_rejection();
                self.emit(|| TraceEvent::Rejected { txn: id, deadline });
                if let Some(sink) = &mut self.completions {
                    sink.push(Completion {
                        id,
                        arrival,
                        deadline,
                        finish: arrival,
                        restarts,
                        kind: CompletionKind::Rejected,
                    });
                }
                return;
            }
        }
        debug_assert_eq!(txn.state, TxnState::Ready);
        self.txns.push(txn);
        self.secondary.push(false);
        self.state_tags.push(TxnState::Ready);
        self.active.push(id);
        self.ready_count += 1;
        // Enter the reverse index under the admitted footprint (only
        // admitted transactions are ever indexed — repairs must not
        // touch rejected slots' unseeded caches).
        self.accel
            .reindex(id, &self.txns[id.0 as usize].might_access);
        // Seed the newcomer's cache entry and index key eagerly: the
        // index must hold exactly one entry per active transaction before
        // the next pick can trust its peek.
        if self.heap_in_use() {
            self.priority_exact(id);
        }
        self.slack_upsert(id);
        self.emit(|| TraceEvent::Arrival { txn: id, deadline });
        self.update_queue_metrics();
        self.reschedule(); // tr-arrival-schedule
    }

    /// Advance the adaptive admission controller to the current
    /// simulation time: close every elapsed tally window, adjusting the
    /// safety factor per window verdict. A no-op under static admission.
    ///
    /// Hooked at deterministic event points only (arrival and commit),
    /// so the factor trajectory is a pure function of the event sequence
    /// — virtual-clock serving replays it bit-identically.
    fn adm_maybe_roll(&mut self) {
        let Some(AdmissionConfig::Adaptive(a)) = self.cfg.system.admission else {
            return;
        };
        let window = SimDuration::from_ms(a.window_ms);
        let now = self.now();
        while now.since(self.adm_window_started) >= window {
            let miss_percent = if self.adm_win_committed == 0 {
                0.0
            } else {
                100.0 * self.adm_win_missed as f64 / self.adm_win_committed as f64
            };
            if miss_percent > a.target_miss_percent {
                self.admission_factor = (self.admission_factor * a.tighten).min(a.max_factor);
            } else if miss_percent < a.hysteresis * a.target_miss_percent {
                self.admission_factor = (self.admission_factor * a.relax).max(a.base_factor);
            }
            self.adm_win_committed = 0;
            self.adm_win_missed = 0;
            self.adm_window_started += window;
            if self.admission_factor == a.base_factor {
                // Every remaining catch-up window is empty (its tallies
                // were just consumed), and an empty window at the base
                // factor is a fixed point: fast-forward over the idle gap
                // instead of looping one window at a time.
                while now.since(self.adm_window_started) >= window {
                    self.adm_window_started += window;
                }
            }
        }
    }

    /// The admission feasibility test: can `txn` possibly finish by its
    /// deadline? The estimate charges its isolated resource time plus one
    /// abort cost per partially-executed transaction it conflicts with —
    /// the penalty of conflict it would have to pay (or inflict) to run —
    /// inflated by the safety factor currently in force
    /// (`admission_factor`: the configured static factor, or wherever the
    /// adaptive controller has steered it).
    fn feasible(&self, txn: &Transaction) -> bool {
        let conflicts = match self.mode {
            CacheMode::AlwaysRecompute => self
                .active
                .iter()
                .map(|&p| self.txn(p))
                .filter(|p| p.is_partially_executed() && txn.conflicts_with(p))
                .count(),
            _ => {
                // The maintained P-list *is* the set the scan above
                // filters `active` down to, and the pair memo returns the
                // same verdicts as `conflicts_with`. Only sharers of the
                // newcomer's footprint can conflict at all, so the probe
                // set is their intersection with the P-list — same
                // count, O(sharers ∩ P) instead of O(P) pair tests.
                let mut sharers = self.sharer_buf.borrow_mut();
                self.accel.sharers(&txn.might_access, &mut sharers);
                let n = sharers
                    .iter()
                    .filter(|&&p| {
                        self.accel.plist().binary_search(&p).is_ok()
                            && self.accel.conflicts(txn, self.txn(p))
                    })
                    .count();
                if self.mode == CacheMode::Verify {
                    let scanned = self
                        .active
                        .iter()
                        .map(|&p| self.txn(p))
                        .filter(|p| p.is_partially_executed() && txn.conflicts_with(p))
                        .count();
                    self.verify_checks.set(self.verify_checks.get() + 1);
                    assert_eq!(n, scanned, "admission conflict count diverged");
                }
                n
            }
        } as u64;
        let penalty = self.cfg.system.abort_cost() * conflicts;
        let demand = (txn.resource_time + penalty).scale(self.admission_factor);
        self.now() + demand <= txn.deadline
    }

    fn on_cpu_done(&mut self, id: TxnId) {
        assert_eq!(
            self.running,
            Some(id),
            "CpuDone for a transaction that is not running"
        );
        let stage = self.txn(id).stage;
        let burst = self.txn(id).cpu_left;
        self.metrics.add_cpu_busy(burst);
        match stage {
            Stage::Recover => {
                // Recovery work done; the lock was already transferred.
                let t = self.txn_mut(id);
                t.cpu_left = SimDuration::ZERO;
                self.after_lock(id);
                match self.proceed(id) {
                    Started::Scheduled => {}
                    Started::WentToIo | Started::Blocked => self.reschedule(),
                }
            }
            Stage::Compute => {
                // The anchored span ends exactly where the service it
                // mirrors stops accruing.
                self.freeze_timed();
                if std::mem::take(&mut self.active_cpu_failed) {
                    // Injected transient CPU stall: the burst ran its full
                    // (possibly inflated) length and its result is
                    // discarded. The effective service still banks — the
                    // timed index accrued it continuously while the burst
                    // ran, and cached priority keys must stay upper
                    // bounds — but no progress is made; the work is
                    // counted wasted instead, and the update's burst will
                    // be re-run from scratch (or the transaction
                    // restarted) by the stall handler.
                    {
                        let t = self.txn_mut(id);
                        t.service += burst;
                        t.cpu_left = SimDuration::ZERO;
                    }
                    self.metrics.add_wasted_cpu(burst);
                    self.accel.bump_own(id);
                    self.slack_upsert(id);
                    self.running = None;
                    self.handle_cpu_stall(id);
                    self.update_queue_metrics();
                    self.reschedule();
                    return;
                }
                let narrowed = {
                    let t = self.txn_mut(id);
                    t.service += burst;
                    t.cpu_left = SimDuration::ZERO;
                    t.io_retries = 0;
                    t.progress += 1;
                    // Branching workloads: the decision point executes with
                    // its update, narrowing the analytic mightaccess.
                    t.maybe_execute_decision()
                };
                // Progress/service moved: own-state-dependent priorities
                // (LSF) must recompute — lazily; under `ConflictState`
                // deps own service never raises the owner's priority, so
                // the stale index key stays an upper bound. A narrowing
                // additionally changes how the partials relate to *this*
                // transaction — and only this one (`is_unsafe` never
                // reads a partial's `might_access`) — and can *raise* its
                // priority, so refresh its key eagerly and exactly.
                self.accel.bump_own(id);
                if narrowed {
                    self.accel.note_narrowed(id);
                    self.accel
                        .reindex(id, &self.txns[id.0 as usize].might_access);
                    if self.heap_in_use() {
                        self.priority_exact(id);
                    }
                    // The narrowed might-access set can drop this
                    // transaction out of a runner's unsafe set — timed
                    // membership may no longer be reusable.
                    self.walked.set(None);
                }
                self.slack_upsert(id);
                if self.txn(id).progress == self.txn(id).total_updates() {
                    self.commit(id);
                } else {
                    self.txn_mut(id).stage = Stage::Lock;
                    match self.proceed(id) {
                        Started::Scheduled => {}
                        Started::WentToIo | Started::Blocked => self.reschedule(),
                    }
                }
            }
            Stage::Lock | Stage::Io => {
                unreachable!("CPU burst completed in non-CPU stage {stage:?}")
            }
        }
    }

    fn on_io_done(&mut self, id: TxnId) {
        let now = self.now();
        let disk = self.disk.as_mut().expect("IoDone without a disk");
        let done = disk.complete(now);
        assert_eq!(done, id, "disk completion out of order");
        // The failure flag belongs to the transfer that just completed;
        // take it before starting the next transfer, which re-arms it.
        let failed = std::mem::take(&mut self.active_io_failed);
        if let Some(next_id) = self.disk.as_mut().expect("disk above").pop_next() {
            self.start_transfer(next_id);
        }
        debug_assert_eq!(self.txn(id).state, TxnState::IoActive);
        if self.txn(id).doomed {
            // Aborted during the transfer: it now releases the disk and
            // re-enters the ready queue from scratch. Everything the
            // transfer did since the abort was wasted disk time.
            self.txn_mut(id).doomed = false;
            self.set_state(id, TxnState::Ready);
            let wasted = now.since(self.txn(id).doomed_at);
            self.metrics.add_wasted_disk_hold(wasted);
            self.emit(|| TraceEvent::IoDone { txn: id });
        } else if failed {
            // The transfer occupied the disk and then failed with an
            // injected transient error: back off and retry, or give up.
            self.handle_io_failure(id);
        } else {
            // The IO of the current update finished; the CPU burst remains.
            self.set_state(id, TxnState::Ready);
            let t = self.txn_mut(id);
            t.stage = Stage::Compute;
            t.cpu_left = t.update_time;
            t.io_retries = 0;
            self.emit(|| TraceEvent::IoDone { txn: id });
        }
        self.update_queue_metrics();
        self.reschedule(); // IO completion is a scheduling point
    }

    /// Begin a transfer on the (idle) disk for `id`, drawing the attempt's
    /// fate from the fault injector when one is configured.
    fn start_transfer(&mut self, id: TxnId) {
        let now = self.now();
        let nominal = self
            .disk
            .as_ref()
            .expect("transfer without a disk")
            .access_time();
        let (service, failed) = match &mut self.faults {
            Some(inj) => {
                let a = inj.attempt(now, nominal);
                if a.failed {
                    self.metrics.record_injected_fault();
                }
                if a.spiked {
                    self.metrics.record_latency_spike();
                }
                (a.service, a.failed)
            }
            None => (nominal, false),
        };
        self.active_io_failed = failed;
        let at = self
            .disk
            .as_mut()
            .expect("transfer without a disk")
            .start(id, now, service);
        self.set_state(id, TxnState::IoActive);
        self.calendar.schedule(at, Event::IoDone(id));
    }

    /// The active transfer of `id` failed with an injected error. Within
    /// the retry budget: arm an exponential backoff and re-queue when it
    /// expires. Budget exhausted: abort-and-restart like an HP victim
    /// (locks released, waiters woken, restart counted).
    fn handle_io_failure(&mut self, id: TxnId) {
        let plan = self
            .faults
            .as_ref()
            .expect("injected failure without an injector")
            .plan()
            .clone();
        let retries = self.txn(id).io_retries;
        if retries >= plan.retry_budget {
            self.emit(|| TraceEvent::IoGaveUp { txn: id });
            self.metrics.record_io_exhausted_abort();
            let held = self.locks.held_by(id);
            let released = self.locks.release_all(id);
            debug_assert!(released > 0, "an IO-stage transaction holds its lock");
            self.wake_waiters(&held);
            let was_secondary = self.secondary[id.0 as usize];
            self.metrics.record_restart(was_secondary);
            self.secondary[id.0 as usize] = false;
            // The restart clears the access sets (and re-widens a
            // narrowed mightaccess): leave the P-list, invalidate pairs.
            self.conflict_cleared(id);
            self.txn_mut(id).reset_for_restart();
            self.accel
                .reindex(id, &self.txns[id.0 as usize].might_access);
            self.slack_upsert(id);
            self.set_state(id, TxnState::Ready);
        } else {
            self.emit(|| TraceEvent::IoFault { txn: id, retries });
            let backoff = plan.backoff_after(retries);
            self.metrics.record_io_retry(backoff);
            let at = self.now() + backoff;
            self.set_state(id, TxnState::IoBackoff);
            let t = self.txn_mut(id);
            t.io_retries += 1;
            t.retry_token += 1;
            let token = t.retry_token;
            self.calendar.schedule(at, Event::IoRetry(id, token));
        }
    }

    /// The just-finished Compute burst of `id` carried an injected CPU
    /// stall verdict: its work was discarded. Within the retry budget:
    /// arm an exponential backoff and re-run the full burst when it
    /// expires. Budget exhausted: abort-and-restart like an HP victim
    /// (locks released, waiters woken, restart counted).
    ///
    /// Mirrors [`Self::handle_io_failure`]. The retry counter and
    /// staleness token (`io_retries` / `retry_token`) and the backoff
    /// state ([`TxnState::IoBackoff`]) are shared with the disk path —
    /// an update retries either its transfer or its burst, never both at
    /// once, and `abort`'s backoff arm covers both identically.
    fn handle_cpu_stall(&mut self, id: TxnId) {
        let plan = self
            .cpu_faults
            .as_ref()
            .expect("injected stall without an injector")
            .plan()
            .clone();
        let retries = self.txn(id).io_retries;
        if retries >= plan.retry_budget {
            self.metrics.record_cpu_exhausted_abort();
            let held = self.locks.held_by(id);
            let released = self.locks.release_all(id);
            debug_assert!(released > 0, "a Compute-stage transaction holds its lock");
            self.wake_waiters(&held);
            let was_secondary = self.secondary[id.0 as usize];
            self.metrics.record_restart(was_secondary);
            self.secondary[id.0 as usize] = false;
            // The restart clears the access sets (and re-widens a
            // narrowed mightaccess): leave the P-list, invalidate pairs.
            self.conflict_cleared(id);
            self.txn_mut(id).reset_for_restart();
            self.accel
                .reindex(id, &self.txns[id.0 as usize].might_access);
            self.slack_upsert(id);
            self.set_state(id, TxnState::Ready);
        } else {
            let backoff = plan.backoff_after(retries);
            self.metrics.record_cpu_retry(backoff);
            let at = self.now() + backoff;
            self.set_state(id, TxnState::IoBackoff);
            let t = self.txn_mut(id);
            t.io_retries += 1;
            t.retry_token += 1;
            // Re-arm the nominal burst; the retry draws a fresh attempt
            // (and a fresh inflation) when it is next placed on the CPU.
            t.cpu_left = t.update_time;
            let token = t.retry_token;
            self.calendar.schedule(at, Event::CpuRetry(id, token));
        }
    }

    /// A CPU-stall backoff expired: make the transaction ready so the
    /// scheduler can re-place its burst, unless the event is stale (the
    /// transaction was aborted while the retry was in flight — the
    /// abort's backoff arm already reset it and bumped the token).
    fn on_cpu_retry(&mut self, id: TxnId, token: u64) {
        {
            let t = self.txn(id);
            if t.state != TxnState::IoBackoff || t.retry_token != token {
                return;
            }
        }
        self.set_state(id, TxnState::Ready);
        self.update_queue_metrics();
        self.reschedule();
    }

    /// A backoff expired: re-queue the failed transfer, unless the event
    /// is stale (the transaction was aborted — and possibly already
    /// progressed elsewhere — while the retry was in flight).
    fn on_io_retry(&mut self, id: TxnId, token: u64) {
        {
            let t = self.txn(id);
            if t.state != TxnState::IoBackoff || t.retry_token != token {
                return;
            }
        }
        let deadline_key = self.txn(id).deadline.as_micros();
        self.set_state(id, TxnState::IoQueued);
        let disk = self.disk.as_mut().expect("IoRetry without a disk");
        if disk.enqueue(id, deadline_key) {
            self.start_transfer(id);
            self.emit(|| TraceEvent::IoIssued {
                txn: id,
                queued: false,
            });
        } else {
            self.emit(|| TraceEvent::IoIssued {
                txn: id,
                queued: true,
            });
        }
        self.update_queue_metrics();
        self.reschedule();
    }

    // ---- transaction driving --------------------------------------------

    /// After the current update's lock is held: move to IO or compute.
    fn after_lock(&mut self, id: TxnId) {
        let t = self.txn_mut(id);
        if t.current_needs_io() {
            t.stage = Stage::Io;
        } else {
            t.stage = Stage::Compute;
            t.cpu_left = t.update_time;
        }
    }

    /// Drive the running transaction until it schedules a CPU burst or
    /// blocks on IO. Lock acquisition is instantaneous; a conflicting
    /// holder is aborted and charged as a recovery burst.
    fn proceed(&mut self, id: TxnId) -> Started {
        debug_assert_eq!(self.running, Some(id));
        loop {
            match self.txn(id).stage {
                Stage::Lock => {
                    let item = self.txn(id).current_item();
                    let mode = self.txn(id).current_mode();
                    match self.locks.request(id, item, mode) {
                        LockOutcome::Granted => {
                            let was_partial = self.txn(id).is_partially_executed();
                            let t = self.txn_mut(id);
                            // Non-short-circuiting |= — the written insert
                            // must execute even when accessed already held
                            // the item (shared→exclusive re-lock).
                            let mut grew = t.accessed.insert(item);
                            if mode == LockMode::Exclusive {
                                grew |= t.written.insert(item);
                            }
                            if grew {
                                self.conflict_grew(id, was_partial);
                            }
                            self.after_lock(id);
                        }
                        LockOutcome::HeldBy(holders) => {
                            debug_assert!(!holders.contains(&id));
                            let all_beaten = holders.iter().all(|&h| self.beats(id, h));
                            if all_beaten {
                                // HP: "whenever a data conflict occurs, the
                                // running transaction aborts the conflicting
                                // transactions." The runner outranks every
                                // holder whenever it was dispatched as TH
                                // (Lemma 1), and always under CCA. With
                                // shared locks a write request may have to
                                // abort several readers at once.
                                let mut recovery = rtx_sim::time::SimDuration::ZERO;
                                for &h in &holders {
                                    recovery += self.recovery_cost(h);
                                    self.emit(|| TraceEvent::Abort {
                                        victim: h,
                                        by: id,
                                        item,
                                    });
                                    self.abort(h);
                                }
                                self.locks.grant_after_abort(id, item, mode);
                                let was_partial = self.txn(id).is_partially_executed();
                                let t = self.txn_mut(id);
                                let mut grew = t.accessed.insert(item);
                                if mode == LockMode::Exclusive {
                                    grew |= t.written.insert(item);
                                }
                                if grew {
                                    self.conflict_grew(id, was_partial);
                                }
                                let t = self.txn_mut(id);
                                t.stage = Stage::Recover;
                                t.cpu_left = recovery;
                                self.update_queue_metrics();
                                return self.schedule_burst(id);
                            } else {
                                // Wound-wait: a lower-priority requester (an
                                // IO-wait secondary under EDF-HP) blocks
                                // until the holder releases the lock. Wait
                                // edges always point to higher priorities,
                                // so no cycle — and under CCA this branch is
                                // unreachable (Theorem 1's "no lock wait").
                                self.metrics.record_lock_wait();
                                self.emit(|| TraceEvent::LockWait { txn: id, item });
                                self.set_state(id, TxnState::LockWait);
                                self.txn_mut(id).waiting_for = Some(item);
                                self.running = None;
                                self.update_queue_metrics();
                                return Started::Blocked;
                            }
                        }
                    }
                }
                Stage::Io => {
                    self.set_state(id, TxnState::IoQueued);
                    self.running = None;
                    let deadline_key = self.txn(id).deadline.as_micros();
                    let disk = self.disk.as_mut().expect("Io stage without a disk");
                    if disk.enqueue(id, deadline_key) {
                        self.start_transfer(id);
                        self.emit(|| TraceEvent::IoIssued {
                            txn: id,
                            queued: false,
                        });
                    } else {
                        self.emit(|| TraceEvent::IoIssued {
                            txn: id,
                            queued: true,
                        });
                    }
                    self.update_queue_metrics();
                    return Started::WentToIo;
                }
                Stage::Compute | Stage::Recover => {
                    return self.schedule_burst(id);
                }
            }
        }
    }

    fn schedule_burst(&mut self, id: TxnId) -> Started {
        let now = self.now();
        let stage = self.txn(id).stage;
        // Every placement of a Compute burst on the CPU is one attempt
        // against the CPU fault plan: a slowdown inflates the burst
        // in-place (so service accounting, busy time and preemption math
        // all see the inflated figure), a stall marks the burst doomed —
        // it runs to its end and is then discovered wasted in
        // `on_cpu_done`, mirroring how a failed transfer occupies the
        // disk. A burst resumed after preemption draws a fresh attempt;
        // slowdowns can compound across resumptions.
        if stage == Stage::Compute {
            if let Some(inj) = &mut self.cpu_faults {
                let nominal = self.txns[id.0 as usize].cpu_left;
                let a = inj.attempt(now, nominal);
                if a.failed {
                    self.metrics.record_cpu_stall();
                }
                if a.spiked {
                    self.metrics.record_cpu_slowdown();
                }
                self.txns[id.0 as usize].cpu_left = a.service;
                self.active_cpu_failed = a.failed;
            }
        }
        let t = self.txn_mut(id);
        t.burst_start = now;
        let at = now + t.cpu_left;
        self.cpu_event = self.calendar.schedule(at, Event::CpuDone(id));
        if stage == Stage::Compute {
            // Only a Compute burst accrues effective service (the quantity
            // whose growth makes runner-unsafe priorities fall); Recover
            // bursts leave every cached priority still.
            self.anchor_timed(id);
        }
        Started::Scheduled
    }

    /// Wound-wait decision for one (requester, holder) pair: `true` means
    /// abort the holder, `false` means the requester waits.
    ///
    /// Normally this is the policy's priority order ([`Self::outranks`]).
    /// Livelock escalation overrides it: once either side has been aborted
    /// `starvation_threshold` times, the comparison switches to pure
    /// **age** (arrival time, then id — classic timestamp wound-wait).
    /// Age is abort-invariant, so the order is stable: the oldest
    /// escalated transaction can never lose again and runs to commit,
    /// then the next, and so on. Continuous-evaluation policies like LSF
    /// need this: a freshly restarted transaction always has the least
    /// slack, so without escalation two victims abort each other forever
    /// (any restart-count-based order re-livelocks, because the counts
    /// change as a result of the comparison). The paper's policies never
    /// reach the threshold (asserted in tests).
    fn beats(&mut self, requester: TxnId, holder: TxnId) -> bool {
        let threshold = self.cfg.system.starvation_threshold;
        let (r_restarts, r_age) = {
            let r = self.txn(requester);
            (r.restarts, (r.arrival, r.id))
        };
        let (h_restarts, h_age) = {
            let h = self.txn(holder);
            (h.restarts, (h.arrival, h.id))
        };
        if r_restarts >= threshold || h_restarts >= threshold {
            self.metrics.record_starvation_shield();
            return r_age < h_age; // older wins
        }
        self.outranks(requester, holder)
    }

    /// Does `requester` strictly outrank `holder` in the current priority
    /// order (priority, then earlier arrival, then smaller id)?
    ///
    /// A wound/wait decision is a scheduling decision: it must see
    /// **exact** priorities, not the stale-high upper bounds a surviving
    /// `ConflictState` cache entry may hold under lazy falls.
    fn outranks(&self, requester: TxnId, holder: TxnId) -> bool {
        let pr = self.priority_exact(requester);
        let ph = self.priority_exact(holder);
        let (r, h) = (self.txn(requester), self.txn(holder));
        (pr, std::cmp::Reverse(r.arrival), std::cmp::Reverse(r.id))
            > (ph, std::cmp::Reverse(h.arrival), std::cmp::Reverse(h.id))
    }

    /// Wake every transaction lock-waiting on one of `items` (released by a
    /// commit or an abort): "all transactions blocked by the resources that
    /// currently running transaction hold wake up and move to ready queue."
    fn wake_waiters(&mut self, items: &[rtx_preanalysis::sets::ItemId]) {
        if items.is_empty() {
            return;
        }
        for idx in 0..self.active.len() {
            let id = self.active[idx];
            let t = self.txn(id);
            if t.state == TxnState::LockWait && t.waiting_for.is_some_and(|w| items.contains(&w)) {
                self.set_state(id, TxnState::Ready);
                self.txn_mut(id).waiting_for = None;
            }
        }
    }

    /// CPU time the runner spends rolling back `victim`.
    fn recovery_cost(&self, victim: TxnId) -> SimDuration {
        let base = self.cfg.system.abort_cost();
        if self.cfg.system.proportional_recovery {
            // §6 ablation: cost grows with the victim's performed work —
            // one abort-cost unit per completed update, plus one for the
            // in-progress update.
            base * (self.txn(victim).progress as u64 + 1)
        } else {
            base
        }
    }

    /// Abort `victim`: release locks, reset execution, restart from
    /// scratch. The victim keeps its deadline (soft real time).
    fn abort(&mut self, victim: TxnId) {
        assert_ne!(self.running, Some(victim), "the runner cannot be aborted");
        let held = self.locks.held_by(victim);
        let released = self.locks.release_all(victim);
        debug_assert!(released > 0, "victims always hold at least one lock");
        self.wake_waiters(&held);
        let was_secondary = self.secondary[victim.0 as usize];
        self.metrics.record_restart(was_secondary);
        self.secondary[victim.0 as usize] = false;
        // Victims always hold locks (asserted above), so the victim is on
        // the P-list and leaves it now; its access sets clear and a
        // narrowed mightaccess re-widens.
        self.conflict_cleared(victim);
        let state = self.txn(victim).state;
        match state {
            TxnState::Ready => {
                self.txn_mut(victim).reset_for_restart();
            }
            TxnState::LockWait => {
                // The victim was itself waiting for a lock; it restarts
                // from scratch and re-enters the ready queue.
                self.txn_mut(victim).reset_for_restart();
                self.set_state(victim, TxnState::Ready);
            }
            TxnState::IoQueued => {
                // "deleted from the disk queue immediately"
                let removed = self
                    .disk
                    .as_mut()
                    .expect("IoQueued without a disk")
                    .remove_queued(victim);
                debug_assert!(removed);
                self.txn_mut(victim).reset_for_restart();
                self.set_state(victim, TxnState::Ready);
            }
            TxnState::IoActive => {
                // "not deleted until it releases the disk" — hold time
                // from here on is wasted and attributed when it releases.
                let now = self.now();
                let t = self.txn_mut(victim);
                t.reset_for_restart();
                t.doomed = true;
                t.doomed_at = now;
            }
            TxnState::IoBackoff => {
                // Waiting out a retry backoff: off the disk, so it can
                // restart immediately. Bumping the token invalidates the
                // pending IoRetry event.
                let t = self.txn_mut(victim);
                t.reset_for_restart();
                t.retry_token += 1;
                self.set_state(victim, TxnState::Ready);
            }
            TxnState::Running | TxnState::Committed | TxnState::Rejected => {
                unreachable!("abort of a {state:?} transaction")
            }
        }
        // `reset_for_restart` (every arm above) re-widens `might_access`
        // and zeroes progress: refresh the reverse index and the slack key.
        self.accel
            .reindex(victim, &self.txns[victim.0 as usize].might_access);
        self.slack_upsert(victim);
    }

    fn commit(&mut self, id: TxnId) {
        debug_assert_eq!(self.running, Some(id));
        let now = self.now();
        // The final burst is already banked in `service` (`on_cpu_done`
        // ran first), but `burst_start` still points at the burst's
        // start, so `effective_service` would double-charge it. Nothing
        // observes the committer's effective service between here and
        // the `Committed` state — except the clear-repair bound below,
        // which the correction keeps tight.
        self.txn_mut(id).burst_start = now;
        let held = self.locks.held_by(id);
        self.locks.release_all(id);
        self.wake_waiters(&held);
        // The committer leaves the P-list (a zero-update transaction was
        // never on it) and stops being anyone's rollback victim.
        if self.txn(id).is_partially_executed() {
            self.conflict_cleared(id);
        }
        self.set_state(id, TxnState::Committed);
        let t = self.txn_mut(id);
        t.finish = Some(now);
        t.accessed.clear();
        let (arrival, deadline, class) = (t.arrival, t.deadline, t.criticality);
        self.emit(|| TraceEvent::Commit {
            txn: id,
            lateness_ms: now.signed_ms_since(deadline),
        });
        self.metrics
            .record_commit_in_class(class, arrival, deadline, now);
        if self.cfg.system.admission.is_some() {
            self.adm_win_committed += 1;
            if now.signed_ms_since(deadline) > 0.0 {
                self.adm_win_missed += 1;
            }
            self.adm_maybe_roll();
        }
        let restarts = self.txn(id).restarts;
        if let Some(sink) = &mut self.completions {
            sink.push(Completion {
                id,
                arrival,
                deadline,
                finish: now,
                restarts,
                kind: CompletionKind::Committed {
                    missed: now.signed_ms_since(deadline) > 0.0,
                },
            });
        }
        self.running = None;
        self.active.retain(|&a| a != id);
        self.accel.drop_index(id);
        if self.heap_in_use() {
            self.index.borrow_mut().remove(id);
        }
        let band = SlackBands::band_of(self.txn(id).deadline);
        self.slack.borrow_mut().remove(band, id);
        // Departed for good: recycle the committed transaction's arena
        // slot (its id-keyed cache entries die of unreachability).
        self.accel.release(id);
        self.update_queue_metrics();
        self.reschedule(); // tr-finish-schedule
    }

    // ---- the scheduler ---------------------------------------------------

    /// The continuous-evaluation dispatcher. Assigns new priorities to
    /// every active transaction and puts the right one on the CPU. When
    /// tracing, also logs this pass's scheduler-overhead deltas.
    fn reschedule(&mut self) {
        if self.trace.is_none() {
            return self.reschedule_inner();
        }
        let evals0 = self.priority_evals.get();
        let hits0 = self.priority_cache_hits.get();
        let pairs0 = self.accel.pair_checks();
        let invalidations0 = self.accel.pair_invalidations();
        self.reschedule_inner();
        let evals = self.priority_evals.get() - evals0;
        let cache_hits = self.priority_cache_hits.get() - hits0;
        let pair_checks = self.accel.pair_checks() - pairs0;
        let invalidations = self.accel.pair_invalidations() - invalidations0;
        self.emit(|| TraceEvent::SchedulerPass {
            evals,
            cache_hits,
            pair_checks,
            invalidations,
        });
    }

    fn reschedule_inner(&mut self) {
        loop {
            match self.pick_next() {
                None => {
                    debug_assert!(
                        self.running.is_none(),
                        "pick_next must select the running transaction if any"
                    );
                    return; // CPU idles
                }
                Some((id, _)) if self.running == Some(id) => return,
                Some((id, secondary)) => {
                    self.preempt_running();
                    self.secondary[id.0 as usize] = secondary;
                    self.set_state(id, TxnState::Running);
                    self.running = Some(id);
                    self.emit(|| TraceEvent::Dispatch { txn: id, secondary });
                    match self.proceed(id) {
                        Started::Scheduled => {
                            self.update_queue_metrics();
                            return;
                        }
                        Started::WentToIo | Started::Blocked => continue,
                    }
                }
            }
        }
    }

    /// Select the transaction to run: `TH` if runnable, else the
    /// IOwait-schedule choice. Returns `(id, chosen_via_iowait)`.
    /// Wall-clock-timed in profiled runs.
    fn pick_next(&self) -> Option<(TxnId, bool)> {
        self.pick_next_calls.set(self.pick_next_calls.get() + 1);
        if self.profile {
            let t0 = std::time::Instant::now();
            let r = self.pick_next_inner();
            self.sched_wall_ns
                .set(self.sched_wall_ns.get() + t0.elapsed().as_nanos() as u64);
            r
        } else {
            self.pick_next_inner()
        }
    }

    fn pick_next_inner(&self) -> Option<(TxnId, bool)> {
        if self.mode == CacheMode::Verify {
            self.verify_surviving_entries();
        }
        if self.heap_in_use() {
            return self.pick_next_heap();
        }
        if self.slack_in_use() {
            return self.pick_next_slack();
        }
        let th = self.best_by_priority(self.active.iter().copied())?;
        if self.txn(th).is_runnable() {
            return Some((th, false));
        }
        // TH is blocked on IO: IOwait-schedule. With nothing Ready and
        // nothing Running there is no candidate — skip the filtered scan
        // (pure short-circuit; the scan below would also find nobody).
        if self.mode != CacheMode::AlwaysRecompute
            && self.ready_count == 0
            && self.running.is_none()
        {
            return None;
        }
        let candidates = self
            .active
            .iter()
            .copied()
            .filter(|&id| self.txn(id).is_runnable())
            .filter(|&id| !self.policy.iowait_restrict() || self.compatible_with_plist(id));
        self.best_by_priority(candidates).map(|id| (id, true))
    }

    /// The split-index pick: TH from the validated argmax over both
    /// halves, then the IOwait-schedule fallback through the same argmax
    /// restricted to runnable (and, when the policy asks, P-list-
    /// compatible) transactions.
    fn pick_next_heap(&self) -> Option<(TxnId, bool)> {
        let th = self.split_best(|_| true);
        if self.mode == CacheMode::Verify {
            self.verify_checks.set(self.verify_checks.get() + 1);
            let oracle = self.fresh_best(|_| true);
            assert_eq!(
                th, oracle,
                "split-index TH pick diverged from the fresh scan"
            );
        }
        let Some(th) = th else {
            debug_assert!(self.active.is_empty(), "index lost an active entry");
            return None;
        };
        if self.runnable_tag(th) {
            return Some((th, false));
        }
        // TH blocked on IO: IOwait-schedule (same short-circuit as the
        // scan path — with nothing Ready and nothing Running the filtered
        // argmax would also find nobody).
        if self.ready_count == 0 && self.running.is_none() {
            return None;
        }
        let restrict = self.policy.iowait_restrict();
        let pick = self.split_best(|id| {
            self.runnable_tag(id) && (!restrict || self.compatible_with_plist(id))
        });
        if self.mode == CacheMode::Verify {
            self.verify_checks.set(self.verify_checks.get() + 1);
            let oracle = self.fresh_best(|id| {
                self.txn(id).is_runnable() && (!restrict || self.fresh_compatible(id))
            });
            assert_eq!(
                pick, oracle,
                "split-index IOwait pick diverged from the fresh scan"
            );
        }
        pick.map(|id| (id, true))
    }

    /// The validated argmax over both index halves.
    ///
    /// Every stored key is an **upper bound** on its transaction's exact
    /// priority — a free key directly (it is bit-identical to the cached
    /// value), a timed key through the falling effective bound
    /// [`Self::timed_effective`]. Each round peeks the two half-maxima,
    /// takes the larger *effective* tuple, pops it, and validates it by
    /// exact recomputation ([`Self::priority_exact_detached`] — the entry
    /// is out of the index, so the loop re-parks it itself under its
    /// refreshed key and half). The moment the best validated exact tuple
    /// beats the top effective tuple, no un-popped entry can win (its
    /// exact sits at or below its own effective bound, which sits at or
    /// below the top's), and the argmax is settled; the composite
    /// `(Priority, Reverse(arrival), Reverse(id))` tuple ends in the id,
    /// so cross-transaction ties cannot occur. Entries `accept` rejects
    /// are parked unchanged — acceptability does not read priorities.
    ///
    /// Each entry pops at most once per pick, so a pick costs
    /// O(validations · log n); `heap_stale_pops` counts the validations
    /// that did *not* settle the pick (validations − 1).
    fn split_best(&self, accept: impl Fn(TxnId) -> bool) -> Option<TxnId> {
        use std::cmp::Reverse;
        let a = self.fall_offset_now();
        // Fast path: a free-half combined top that validates bit-exactly
        // settles the argmax with zero heap mutation — every other
        // entry's effective bound sits at or below the top's, and the
        // composite tuple already broke ties. This is the steady-state
        // common case (fresh keys, one peek + one validation per pick);
        // a timed top never bit-confirms (its bound carries a nudge), so
        // it takes the general loop below.
        {
            let top = {
                let index = self.index.borrow();
                let free = index.peek(Half::Free).map(|e| (e.pri, e.arrival, e.id));
                let timed = index
                    .peek(Half::Timed)
                    .map(|e| (self.timed_effective(e.pri, a), e.arrival, e.id));
                match (free, timed) {
                    (Some(f), None) => Some(f),
                    (Some(f), Some(t)) => {
                        if (f.0, Reverse(f.1), Reverse(f.2)) > (t.0, Reverse(t.1), Reverse(t.2)) {
                            Some(f)
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            };
            if let Some((eff, _, id)) = top {
                if accept(id) {
                    let exact = self.priority_exact_detached(id);
                    if exact.0.to_bits() == eff.0.to_bits() {
                        self.heap_validated_picks
                            .set(self.heap_validated_picks.get() + 1);
                        return Some(id);
                    }
                    // Stale: the cache now holds the exact value while
                    // the key still holds the old bound — the loop below
                    // re-pops this same top (a cache-confirmed
                    // revalidation) and re-parks it under its exact key,
                    // restoring the paired-writes invariant before the
                    // pick returns.
                }
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        debug_assert!(scratch.is_empty());
        let mut best: Option<(Priority, SimTime, TxnId)> = None;
        let mut validations: u64 = 0;
        loop {
            let top = {
                let index = self.index.borrow();
                let free = index.peek(Half::Free).map(|e| (e.pri, e, Half::Free));
                let timed = index
                    .peek(Half::Timed)
                    .map(|e| (self.timed_effective(e.pri, a), e, Half::Timed));
                match (free, timed) {
                    (None, None) => None,
                    (Some(x), None) | (None, Some(x)) => Some(x),
                    (Some(f), Some(t)) => {
                        let ft = (f.0, Reverse(f.1.arrival), Reverse(f.1.id));
                        let tt = (t.0, Reverse(t.1.arrival), Reverse(t.1.id));
                        Some(if ft > tt { f } else { t })
                    }
                }
            };
            let Some((eff, entry, half)) = top else {
                break;
            };
            if let Some((bp, ba, bi)) = best {
                if (bp, Reverse(ba), Reverse(bi)) > (eff, Reverse(entry.arrival), Reverse(entry.id))
                {
                    break;
                }
            }
            let id = entry.id;
            self.index.borrow_mut().remove(id);
            if !accept(id) {
                // A lifted free-half conflicter re-parks into the timed
                // half (bound carried over, now falling): frozen at its
                // stale key it would stick above the falling band and be
                // lifted again at every subsequent pick.
                let parked = if half == Half::Free && self.fall_rate > 0.0 {
                    match self.timed_target() {
                        Some(r) if r != id && self.accel.is_unsafe(self.txn(r), self.txn(id)) => {
                            let key = Priority(nudge_up(entry.pri.0 + a, entry.pri.0.abs().max(a)));
                            (HeapEntry { pri: key, ..entry }, Half::Timed)
                        }
                        _ => (entry, half),
                    }
                } else {
                    (entry, half)
                };
                scratch.push(parked);
                continue;
            }
            let exact = self.priority_exact_detached(id);
            validations += 1;
            debug_assert!(
                exact <= eff,
                "{id}: index key was not an upper bound ({} half, eff {} < exact {})",
                if half == Half::Timed { "timed" } else { "free" },
                eff.0,
                exact.0
            );
            let (key, new_half) = self.entry_key_for(id, exact);
            scratch.push((
                HeapEntry {
                    pri: key,
                    arrival: entry.arrival,
                    id,
                },
                new_half,
            ));
            self.heap_pushes.set(self.heap_pushes.get() + 1);
            let better = match best {
                None => true,
                Some((bp, ba, bi)) => {
                    (exact, Reverse(entry.arrival), Reverse(id)) > (bp, Reverse(ba), Reverse(bi))
                }
            };
            if better {
                best = Some((exact, entry.arrival, id));
            }
        }
        {
            let mut index = self.index.borrow_mut();
            for (e, h) in scratch.drain(..) {
                index.insert(h, e);
            }
        }
        if best.is_some() {
            self.heap_validated_picks
                .set(self.heap_validated_picks.get() + 1);
            self.heap_stale_pops
                .set(self.heap_stale_pops.get() + validations.saturating_sub(1));
        }
        best.map(|(_, _, id)| id)
    }

    /// The slack-index pick for `TimeAndSelf` policies: every priority
    /// advances with the clock at the same unit rate (`priority ≈
    /// now_ms + K`, with `K` the policy's time-invariant key), so ordering the
    /// stored keys orders the priorities at any instant. The validated-
    /// argmax protocol of [`Self::split_best`] applies with the effective
    /// bound `nudge_up(now_ms + K, S_b)` — each deadline band's scale
    /// `S_b` is shared by all its entries, keeping the bounds monotone
    /// in `K` *within* the band, and the pick takes the max effective
    /// tuple across band tops, so the break condition stays sound.
    fn pick_next_slack(&self) -> Option<(TxnId, bool)> {
        let th = self.slack_best(|_| true);
        if self.mode == CacheMode::Verify {
            self.verify_checks.set(self.verify_checks.get() + 1);
            let oracle = self.fresh_best(|_| true);
            assert_eq!(
                th, oracle,
                "slack-index TH pick diverged from the fresh scan"
            );
        }
        let Some(th) = th else {
            debug_assert!(self.active.is_empty(), "slack index lost an active entry");
            return None;
        };
        if self.runnable_tag(th) {
            return Some((th, false));
        }
        if self.ready_count == 0 && self.running.is_none() {
            return None;
        }
        let restrict = self.policy.iowait_restrict();
        let pick = self.slack_best(|id| {
            self.runnable_tag(id) && (!restrict || self.compatible_with_plist(id))
        });
        if self.mode == CacheMode::Verify {
            self.verify_checks.set(self.verify_checks.get() + 1);
            let oracle = self.fresh_best(|id| {
                self.txn(id).is_runnable() && (!restrict || self.fresh_compatible(id))
            });
            assert_eq!(
                pick, oracle,
                "slack-index IOwait pick diverged from the fresh scan"
            );
        }
        pick.map(|id| (id, true))
    }

    /// [`Self::split_best`]'s protocol over the banded slack index.
    /// Each round takes the max *effective* tuple over the band tops —
    /// every unpopped entry is dominated by its own band's top under
    /// that band's scale — pops it, and validates it by exact
    /// recomputation. Validated entries re-park under their *unchanged*
    /// key — `K` moves only on own-state events, never inside a pick —
    /// and validation itself is a [`Self::priority_of`] call, which is
    /// exact (and cached at this instant) for `TimeAndSelf` policies.
    fn slack_best(&self, accept: impl Fn(TxnId) -> bool) -> Option<TxnId> {
        use std::cmp::Reverse;
        let now_ms = self.now().as_ms();
        let mut scratch = self.slack_scratch.borrow_mut();
        debug_assert!(scratch.is_empty());
        let mut best: Option<(Priority, SimTime, TxnId)> = None;
        let mut validations: u64 = 0;
        loop {
            let top = {
                let slack = self.slack.borrow();
                let mut top: Option<(Priority, HeapEntry, usize)> = None;
                for (b, band) in slack.bands.iter().enumerate() {
                    let Some(e) = band.index.peek() else {
                        continue;
                    };
                    let eff = Priority(nudge_up(now_ms + e.pri.0, band.eff_scale(now_ms)));
                    let better = match &top {
                        None => true,
                        Some((teff, te, _)) => {
                            (eff, Reverse(e.arrival), Reverse(e.id))
                                > (*teff, Reverse(te.arrival), Reverse(te.id))
                        }
                    };
                    if better {
                        top = Some((eff, e, b));
                    }
                }
                top
            };
            let Some((eff, entry, band)) = top else {
                break;
            };
            if let Some((bp, ba, bi)) = best {
                if (bp, Reverse(ba), Reverse(bi)) > (eff, Reverse(entry.arrival), Reverse(entry.id))
                {
                    break;
                }
            }
            let id = entry.id;
            self.slack.borrow_mut().remove(band, id);
            scratch.push((entry, band));
            if !accept(id) {
                continue;
            }
            let exact = self.priority_of(id);
            validations += 1;
            debug_assert!(
                exact <= eff,
                "{id}: slack key was not an upper bound (eff {} < exact {})",
                eff.0,
                exact.0
            );
            let better = match best {
                None => true,
                Some((bp, ba, bi)) => {
                    (exact, Reverse(entry.arrival), Reverse(id)) > (bp, Reverse(ba), Reverse(bi))
                }
            };
            if better {
                best = Some((exact, entry.arrival, id));
            }
        }
        {
            let mut slack = self.slack.borrow_mut();
            for (e, b) in scratch.drain(..) {
                slack.upsert(b, e);
            }
        }
        if best.is_some() {
            self.heap_validated_picks
                .set(self.heap_validated_picks.get() + 1);
            self.heap_stale_pops
                .set(self.heap_stale_pops.get() + validations.saturating_sub(1));
        }
        best.map(|(_, _, id)| id)
    }

    /// The scan the `Verify` heap asserts against: fresh (memo-free)
    /// priorities over `active` with the scan tie-break, restricted by
    /// `filter`.
    fn fresh_best(&self, filter: impl Fn(TxnId) -> bool) -> Option<TxnId> {
        let view = self.fresh_view();
        let mut best: Option<(Priority, SimTime, TxnId)> = None;
        for &id in &self.active {
            if !filter(id) {
                continue;
            }
            let t = self.txn(id);
            let pri = self.policy.priority(t, &view);
            let better = match &best {
                None => true,
                Some((bp, ba, bi)) => {
                    (pri, std::cmp::Reverse(t.arrival), std::cmp::Reverse(t.id))
                        > (*bp, std::cmp::Reverse(*ba), std::cmp::Reverse(*bi))
                }
            };
            if better {
                best = Some((pri, t.arrival, id));
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Memo-free IOwait compatibility (the `Verify` oracle's filter).
    fn fresh_compatible(&self, id: TxnId) -> bool {
        let candidate = self.txn(id);
        self.active
            .iter()
            .filter(|&&p| p != id)
            .map(|&p| self.txn(p))
            .filter(|p| p.is_partially_executed())
            .all(|p| !candidate.conflicts_with(p))
    }

    /// `Verify`: every cache entry that *survived* invalidation (would be
    /// a hit under the policy's declared deps) must still satisfy what the
    /// cache claims for it — bit-identity for `Static`/`TimeAndSelf`, the
    /// upper-bound invariant for `ConflictState` (lazy falls leave
    /// stale-high survivors by design; a survivor *below* the fresh value
    /// means a priority rise escaped the clear walk, which would make the
    /// heap's pop order unsound). Checked at every pick rather than at
    /// the entry's next (possibly much later) use.
    fn verify_surviving_entries(&self) {
        let deps = self.policy.depends_on();
        if deps == PriorityDeps::Volatile {
            return;
        }
        let view = self.fresh_view();
        let now = self.now();
        for &id in &self.active {
            let s = self.accel.slot(id);
            let hit = s.pri_valid()
                && match deps {
                    PriorityDeps::Static => true,
                    PriorityDeps::TimeAndSelf => s.pri_at == now && s.pri_own == s.own_version,
                    PriorityDeps::ConflictState { .. } => {
                        s.pri_stamp == s.pair_stamp && s.pri_own == s.own_version
                    }
                    PriorityDeps::Volatile => unreachable!("handled above"),
                };
            if hit {
                let fresh = self.policy.priority(self.txn(id), &view);
                self.verify_checks.set(self.verify_checks.get() + 1);
                if matches!(deps, PriorityDeps::ConflictState { .. }) {
                    assert!(
                        s.pri_value >= fresh,
                        "{id}: surviving cache entry {} < fresh {} \
                         (a priority rise escaped the clear walk)",
                        s.pri_value.0,
                        fresh.0
                    );
                } else {
                    assert_eq!(
                        s.pri_value.0.to_bits(),
                        fresh.0.to_bits(),
                        "{id}: surviving cache entry {} != fresh {} (invalidation too narrow)",
                        s.pri_value.0,
                        fresh.0
                    );
                }
            }
        }
        // Index-soundness oracles. Free-half keys must be bit-identical
        // to their cache entries; every timed-half *effective* bound and
        // every slack-index effective bound must dominate the fresh
        // priority — exactly what the validated-argmax picks rely on.
        if self.heap_in_use() {
            let a = self.fall_offset_now();
            let index = self.index.borrow();
            for e in index.entries(Half::Free) {
                self.verify_checks.set(self.verify_checks.get() + 1);
                assert_eq!(
                    e.pri.0.to_bits(),
                    self.accel.slot(e.id).pri_value.0.to_bits(),
                    "{}: free-half key and cached priority disagree",
                    e.id
                );
            }
            for e in index.entries(Half::Timed) {
                let fresh = self.policy.priority(self.txn(e.id), &view);
                self.verify_checks.set(self.verify_checks.get() + 1);
                assert!(
                    self.timed_effective(e.pri, a) >= fresh,
                    "{}: timed-half effective bound {} < fresh {}",
                    e.id,
                    self.timed_effective(e.pri, a).0,
                    fresh.0
                );
            }
        }
        if self.slack_in_use() {
            let now_ms = now.as_ms();
            let slack = self.slack.borrow();
            for (b, band) in slack.bands.iter().enumerate() {
                let scale = band.eff_scale(now_ms);
                for e in band.index.entries() {
                    let t = self.txn(e.id);
                    debug_assert_eq!(
                        b,
                        SlackBands::band_of(t.deadline),
                        "{}: slack entry in the wrong deadline band",
                        e.id
                    );
                    let k = self
                        .policy
                        .time_invariant_key(t)
                        .expect("slack-indexed policy stopped exposing keys");
                    let fresh = self.policy.priority(t, &view);
                    self.verify_checks.set(self.verify_checks.get() + 2);
                    assert_eq!(
                        e.pri.0.to_bits(),
                        k.to_bits(),
                        "{}: slack key diverged from the policy's current key",
                        e.id
                    );
                    assert!(
                        Priority(nudge_up(now_ms + e.pri.0, scale)) >= fresh,
                        "{}: slack effective bound {} < fresh {}",
                        e.id,
                        nudge_up(now_ms + e.pri.0, scale),
                        fresh.0
                    );
                }
            }
        }
    }

    /// Highest-priority transaction among `ids` (priorities via the
    /// cache-mode-aware [`Self::priority_of`]); ties broken by earlier
    /// arrival, then smaller id (deterministic).
    fn best_by_priority(&self, ids: impl Iterator<Item = TxnId>) -> Option<TxnId> {
        let mut best: Option<(Priority, SimTime, TxnId)> = None;
        for id in ids {
            let t = self.txn(id);
            debug_assert!(t.is_active());
            let pri = self.priority_of(id);
            let better = match &best {
                None => true,
                Some((bp, ba, bi)) => {
                    (pri, std::cmp::Reverse(t.arrival), std::cmp::Reverse(t.id))
                        > (*bp, std::cmp::Reverse(*ba), std::cmp::Reverse(*bi))
                }
            };
            if better {
                best = Some((pri, t.arrival, id));
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// §3.3.3 `IOwait-schedule` filter: true iff `id` neither conflicts nor
    /// conditionally conflicts with **any** partially executed transaction.
    /// For the paper's straight-line write-only workload this is the
    /// oracle test `mightaccess(candidate) ∩ mightaccess(partial) = ∅`;
    /// with shared locks only write-involved overlaps count.
    ///
    /// Incrementally: iterate the maintained P-list (same transactions,
    /// same ascending-id order as the `active` scan) with memoized pair
    /// verdicts.
    fn compatible_with_plist(&self, id: TxnId) -> bool {
        let candidate = self.txn(id);
        match self.mode {
            CacheMode::AlwaysRecompute => self
                .active
                .iter()
                .filter(|&&p| p != id)
                .map(|&p| self.txn(p))
                .filter(|p| p.is_partially_executed())
                .all(|p| !candidate.conflicts_with(p)),
            CacheMode::Verify => {
                // One pass over `active` yields both answers: filtering it
                // by `is_partially_executed` visits exactly the maintained
                // P-list in the same ascending-id order (that identity is
                // itself asserted in `update_queue_metrics` and
                // `validate_state`), so each pair can be checked memoized
                // vs fresh as it streams by instead of scanning twice.
                let mut compatible = true;
                for &p in &self.active {
                    if p == id {
                        continue;
                    }
                    let partial = self.txn(p);
                    if !partial.is_partially_executed() {
                        continue;
                    }
                    let memoized = self.accel.conflicts(candidate, partial);
                    let fresh = candidate.conflicts_with(partial);
                    self.verify_checks.set(self.verify_checks.get() + 1);
                    assert_eq!(
                        memoized, fresh,
                        "{id}: memoized pair verdict against {p} diverged"
                    );
                    compatible &= !memoized;
                }
                compatible
            }
            CacheMode::Incremental => self
                .accel
                .plist()
                .iter()
                .filter(|&&p| p != id)
                .all(|&p| !self.accel.conflicts(candidate, self.txn(p))),
        }
    }

    fn preempt_running(&mut self) {
        if let Some(r) = self.running.take() {
            self.emit(|| TraceEvent::Preempt { txn: r });
            let cancelled = self.calendar.cancel(self.cpu_event);
            debug_assert!(cancelled, "running transaction must have a pending burst");
            self.cpu_event = EventHandle::NULL;
            let now = self.now();
            let t = self.txn_mut(r);
            let consumed = now.since(t.burst_start);
            t.cpu_left = t.cpu_left.saturating_sub(consumed);
            if t.stage == Stage::Compute {
                // No own-version bump: at this fixed instant the
                // transaction's *effective* service is unchanged — the
                // in-flight part of the burst was already accruing
                // continuously (see `Transaction::effective_service`), it
                // merely moves from implicit to banked. Priorities that
                // read effective service (CCA's penalty term) see the
                // same value, so cached entries stay bit-valid.
                t.service += consumed;
                // The anchored span ends with the burst it mirrors.
                self.freeze_timed();
            }
            self.set_state(r, TxnState::Ready);
            self.metrics.add_cpu_busy(consumed);
            // A pending stall verdict belonged to the burst as placed;
            // the resumed remainder draws its own attempt.
            self.active_cpu_failed = false;
        }
    }

    fn update_queue_metrics(&mut self) {
        let now = self.now();
        let (plist, ready) = match self.mode {
            CacheMode::AlwaysRecompute => {
                let plist = self
                    .active
                    .iter()
                    .filter(|&&id| self.txn(id).is_partially_executed())
                    .count();
                let ready = self
                    .active
                    .iter()
                    .filter(|&&id| self.txn(id).state == TxnState::Ready)
                    .count();
                (plist, ready)
            }
            _ => {
                if self.mode == CacheMode::Verify {
                    let plist_scan = self
                        .active
                        .iter()
                        .filter(|&&id| self.txn(id).is_partially_executed())
                        .count();
                    let ready_scan = self
                        .active
                        .iter()
                        .filter(|&&id| self.txn(id).state == TxnState::Ready)
                        .count();
                    self.verify_checks.set(self.verify_checks.get() + 2);
                    assert_eq!(self.accel.plist_len(), plist_scan, "P-list count diverged");
                    assert_eq!(self.ready_count, ready_scan, "ready count diverged");
                }
                (self.accel.plist_len(), self.ready_count)
            }
        };
        self.metrics.set_plist_len(now, plist);
        self.metrics.set_ready_len(now, ready);
    }

    /// Deadlock resolution: invoked when the event calendar drains while
    /// transactions remain. At that point every active transaction is
    /// lock-waiting (anything runnable would have been dispatched and
    /// anything on the disk would have a pending completion), so the
    /// wait-for graph — waiter → holder of its awaited item — is a
    /// function on the waiters and must contain a cycle. The
    /// lowest-priority member of one such cycle is aborted, releasing its
    /// locks and waking its waiters.
    ///
    /// # Panics
    /// Panics if no lock-wait cycle exists — then the drained calendar is
    /// an engine bug, not a deadlock.
    fn resolve_deadlock(&mut self) {
        assert!(self.running.is_none(), "calendar drained while CPU busy");
        let waiters: Vec<TxnId> = self
            .active
            .iter()
            .copied()
            .filter(|&id| self.txn(id).state == TxnState::LockWait)
            .collect();
        assert!(
            !waiters.is_empty(),
            "event calendar empty with uncommitted transactions (starvation bug)"
        );
        // Walk waiter → holder edges until a node repeats: that suffix is
        // a cycle. The visited map makes the repeat test O(1) instead of
        // rescanning the walk prefix; the walk order itself is unchanged.
        let mut seen: Vec<TxnId> = Vec::new();
        let mut visited: HashMap<TxnId, usize> = HashMap::new();
        let mut cur = waiters[0];
        let cycle_start = loop {
            if let Some(&pos) = visited.get(&cur) {
                break pos;
            }
            visited.insert(cur, seen.len());
            seen.push(cur);
            let item = self
                .txn(cur)
                .waiting_for
                .expect("LockWait transaction without an awaited item");
            let (holders, _) = self.locks.holders(item);
            // In the wedge every holder is itself lock-waiting; follow any
            // one of them (shared locks can have several).
            cur = holders
                .iter()
                .copied()
                .find(|&h| self.txn(h).state == TxnState::LockWait)
                .expect("awaited lock has no lock-waiting holder");
        };
        let cycle = &seen[cycle_start..];
        // Abort the *youngest* cycle member. This must agree with the
        // starvation escalation's age order: the oldest transaction never
        // loses a conflict (there and here), so it monotonically advances
        // to commit and the population drains — choosing the victim by
        // policy priority instead can re-select the same starved victim
        // forever under continuous-evaluation policies.
        let victim = cycle
            .iter()
            .copied()
            .max_by_key(|&id| {
                let t = self.txn(id);
                (t.arrival, t.id)
            })
            .expect("cycle is non-empty");
        self.metrics.record_deadlock_resolution();
        self.emit(|| TraceEvent::DeadlockResolved { victim });
        self.abort(victim);
        self.update_queue_metrics();
        self.reschedule();
    }

    /// Expensive cross-structure consistency check, used by tests.
    fn validate_state(&self) {
        self.locks.check_invariants().expect("lock table corrupt");
        // Every active transaction's accessed set matches its held locks.
        for &id in &self.active {
            let t = self.txn(id);
            let held = self.locks.held_by(id);
            assert_eq!(
                held.len(),
                t.accessed.len(),
                "{id}: accessed set and lock table disagree"
            );
            for item in held {
                assert!(t.accessed.contains(item));
            }
            // No transaction waits for a lock: HP has no lock wait, so a
            // Ready transaction is always immediately dispatchable.
            if t.state == TxnState::Running {
                assert_eq!(self.running, Some(id));
            }
        }
        // Committed and rejected transactions hold nothing.
        for t in &self.txns {
            if matches!(t.state, TxnState::Committed | TxnState::Rejected) {
                assert!(self.locks.held_by(t.id).is_empty());
            }
        }
        // The maintained P-list and ready counter (kept in every cache
        // mode) agree with full scans.
        let plist_scan: Vec<TxnId> = self
            .active
            .iter()
            .copied()
            .filter(|&id| self.txn(id).is_partially_executed())
            .collect();
        assert_eq!(
            self.accel.plist(),
            plist_scan.as_slice(),
            "maintained P-list diverged from scan"
        );
        assert!(
            self.accel.plist().windows(2).all(|w| w[0] < w[1]),
            "P-list not strictly id-sorted"
        );
        let ready_scan = self
            .active
            .iter()
            .filter(|&&id| self.txn(id).state == TxnState::Ready)
            .count();
        assert_eq!(self.ready_count, ready_scan, "ready counter diverged");
        // The dense state-tag vector mirrors the authoritative per-
        // transaction state exactly (every id, not just active ones).
        assert_eq!(self.state_tags.len(), self.txns.len(), "tag vector size");
        for (i, t) in self.txns.iter().enumerate() {
            assert_eq!(self.state_tags[i], t.state, "state tag diverged at txn {i}");
        }
        // The priority index holds exactly one entry per active
        // transaction, keyed bit-identically to its cached value.
        if self.heap_in_use() {
            let index = self.index.borrow();
            assert_eq!(index.len(), self.active.len(), "index size diverged");
            let a = self.fall_offset_now();
            let view = self.fresh_view();
            for &id in &self.active {
                let (key, half) = index.key_of(id).expect("active but not indexed");
                match half {
                    Half::Free => assert_eq!(
                        key.0.to_bits(),
                        self.accel.slot(id).pri_value.0.to_bits(),
                        "{id}: free-half key and cached priority disagree"
                    ),
                    Half::Timed => {
                        // Timed keys exist only under a positive fall
                        // rate, and their effective bound must dominate
                        // the exact priority at all times.
                        assert!(
                            self.fall_rate > 0.0,
                            "{id}: timed entry with zero fall rate"
                        );
                        let fresh = self.policy.priority(self.txn(id), &view);
                        assert!(
                            self.timed_effective(key, a) >= fresh,
                            "{id}: timed-half effective bound {} < fresh {}",
                            self.timed_effective(key, a).0,
                            fresh.0
                        );
                    }
                }
            }
        }
        // The slack index, when it is the pick path, covers the active
        // set exactly and every key matches the policy's current value.
        if self.slack_in_use() {
            let slack = self.slack.borrow();
            for &id in &self.active {
                let b = SlackBands::band_of(self.txn(id).deadline);
                let key = slack.key_of(b, id).expect("active but not slack-indexed");
                let k = self
                    .policy
                    .time_invariant_key(self.txn(id))
                    .expect("slack-indexed policy stopped exposing keys");
                assert_eq!(
                    key.0.to_bits(),
                    k.to_bits(),
                    "{id}: slack key diverged from the policy's current key"
                );
            }
        }
    }
}

/// Run one simulation to completion and return its summary.
///
/// Deterministic: the same `(cfg, policy)` pair always produces the same
/// summary.
///
/// # Panics
/// Panics if the configuration is invalid.
pub fn run_simulation(cfg: &SimConfig, policy: &dyn Policy) -> RunSummary {
    run_simulation_with(cfg, policy, |_| {})
}

/// As [`run_simulation`] under an explicit [`CacheMode`].
///
/// The simulated outcome is bit-identical across modes (that is the
/// incremental core's contract; `CacheMode::Verify` asserts it at every
/// decision) — only the scheduler-overhead counters in
/// [`RunSummary::sched`] differ.
pub fn run_simulation_with_mode(
    cfg: &SimConfig,
    policy: &dyn Policy,
    mode: CacheMode,
) -> RunSummary {
    run_simulation_opts(cfg, policy, mode, false, |_| {})
}

/// As [`run_simulation`], additionally measuring wall-clock time spent in
/// the scheduler (`RunSummary::sched.sched_wall_ns`). Kept out of the
/// default path so normal summaries never carry machine-dependent values.
pub fn run_simulation_profiled(cfg: &SimConfig, policy: &dyn Policy) -> RunSummary {
    run_simulation_opts(cfg, policy, CacheMode::Incremental, true, |_| {})
}

/// As [`run_simulation_profiled`] under an explicit [`CacheMode`] — the
/// benchmark harness runs this once incrementally and once with
/// [`CacheMode::AlwaysRecompute`] to report the speedup.
pub fn run_simulation_profiled_with_mode(
    cfg: &SimConfig,
    policy: &dyn Policy,
    mode: CacheMode,
) -> RunSummary {
    run_simulation_opts(cfg, policy, mode, true, |_| {})
}

/// Run a simulation over a custom [`TxnSource`] instead of the built-in
/// workload generator. `expected` is the number of transactions the source
/// will produce (the run ends once all of them terminate — commit or are
/// rejected at admission); the source must yield dense ids in
/// non-decreasing arrival order.
pub fn run_simulation_from(
    cfg: &SimConfig,
    policy: &dyn Policy,
    source: &mut dyn TxnSource,
    expected: usize,
) -> RunSummary {
    run_simulation_from_mode(cfg, policy, source, expected, CacheMode::Incremental)
}

/// As [`run_simulation_from`] under an explicit [`CacheMode`] — how the
/// oracle-equivalence tests replay one recorded workload through the
/// incremental, always-recompute and verifying engines.
pub fn run_simulation_from_mode(
    cfg: &SimConfig,
    policy: &dyn Policy,
    source: &mut dyn TxnSource,
    expected: usize,
    mode: CacheMode,
) -> RunSummary {
    cfg.validate().expect("invalid simulation configuration");
    assert!(expected > 0, "expected transaction count must be positive");
    let mut st = EngineState::new(cfg, policy);
    st.mode = mode;
    drive(&mut st, source, expected, |_| {}).unwrap_or_else(|e| panic!("{e}"))
}

/// As [`run_simulation`], but with every failure mode typed instead of
/// panicking: an invalid configuration and a tripped watchdog both come
/// back as a [`RunError`]. This is what the hardened replication runner
/// calls per seed.
pub fn run_simulation_checked(
    cfg: &SimConfig,
    policy: &dyn Policy,
) -> Result<RunSummary, RunError> {
    run_simulation_checked_mode(cfg, policy, CacheMode::Incremental)
}

/// As [`run_simulation_checked`] under an explicit [`CacheMode`] — the
/// replication runner's whole-suite equivalence sweeps thread the mode
/// override through here.
pub fn run_simulation_checked_mode(
    cfg: &SimConfig,
    policy: &dyn Policy,
    mode: CacheMode,
) -> Result<RunSummary, RunError> {
    cfg.validate()?;
    poison_check(cfg);
    let seeder = StreamSeeder::new(cfg.run.seed);
    let table = TypeTable::generate(cfg, &seeder);
    let mut generator = ArrivalGenerator::new(cfg, &table, &seeder);
    let mut st = EngineState::new(cfg, policy);
    st.mode = mode;
    let expected = cfg.run.num_transactions;
    drive(&mut st, &mut generator, expected, |_| {})
}

/// The `poison_seed` test hook: force a panic for one specific seed so the
/// runner-hardening tests can verify panic isolation.
fn poison_check(cfg: &SimConfig) {
    if cfg.run.poison_seed == Some(cfg.run.seed) {
        panic!("poisoned seed {} (test hook)", cfg.run.seed);
    }
}

/// As [`run_simulation`], additionally invoking `inspect` with the engine
/// state after every event — used by tests to assert run-time invariants.
fn run_simulation_with(
    cfg: &SimConfig,
    policy: &dyn Policy,
    inspect: impl FnMut(&EngineState<'_>),
) -> RunSummary {
    run_simulation_opts(cfg, policy, CacheMode::Incremental, false, inspect)
}

/// The common generator-driven entry point: cache mode, profiling and an
/// inspection hook.
fn run_simulation_opts(
    cfg: &SimConfig,
    policy: &dyn Policy,
    mode: CacheMode,
    profile: bool,
    inspect: impl FnMut(&EngineState<'_>),
) -> RunSummary {
    cfg.validate().expect("invalid simulation configuration");
    poison_check(cfg);
    let seeder = StreamSeeder::new(cfg.run.seed);
    let table = TypeTable::generate(cfg, &seeder);
    let mut generator = ArrivalGenerator::new(cfg, &table, &seeder);
    let mut st = EngineState::new(cfg, policy);
    st.mode = mode;
    st.profile = profile;
    let expected = cfg.run.num_transactions;
    drive(&mut st, &mut generator, expected, inspect).unwrap_or_else(|e| panic!("{e}"))
}

/// The shared event loop: pump events until all `expected` transactions
/// terminate (commit, or are rejected at admission). The configured
/// watchdog limits, if any, are enforced here.
fn drive(
    st: &mut EngineState<'_>,
    source: &mut dyn TxnSource,
    expected: usize,
    mut inspect: impl FnMut(&EngineState<'_>),
) -> Result<RunSummary, RunError> {
    if let Some(first) = source.next_transaction() {
        st.calendar
            .schedule(first.arrival, Event::Arrival(Box::new(first)));
    }

    let watchdog = st.cfg.run.watchdog;
    let mut events: u64 = 0;
    while st.metrics.committed() + st.metrics.rejected() < expected as u64 {
        if let Some(w) = watchdog {
            if events >= w.max_events {
                return Err(RunError::WatchdogEvents {
                    limit: w.max_events,
                });
            }
            let now_ms = st.now().as_ms();
            if now_ms > w.max_sim_ms {
                return Err(RunError::WatchdogSimTime {
                    limit_ms: w.max_sim_ms,
                    reached_ms: now_ms,
                });
            }
        }
        events += 1;
        let fired = match st.calendar.pop() {
            Some(f) => f,
            None => {
                // No future events but uncommitted transactions remain:
                // the system is wedged in a lock-wait cycle (possible
                // under dynamic continuously-evaluated priorities like
                // LSF — §2's "they still have deadlock problems"; never
                // under CCA, Theorem 1). Resolve it and continue.
                st.resolve_deadlock();
                continue;
            }
        };
        // Popping an event advances the simulation clock. A partially
        // executed Compute-stage runner accrues effective service, which
        // can only *lower* ConflictState priorities computed against it —
        // stale-high cache entries and heap keys the pick path's
        // pop-and-revalidate already tolerates, so no invalidation here.
        match fired.payload {
            Event::Arrival(txn) => {
                if let Some(next) = source.next_transaction() {
                    st.calendar
                        .schedule(next.arrival, Event::Arrival(Box::new(next)));
                }
                st.on_arrival(*txn);
            }
            Event::CpuDone(id) => st.on_cpu_done(id),
            Event::IoDone(id) => st.on_io_done(id),
            Event::IoRetry(id, token) => st.on_io_retry(id, token),
            Event::CpuRetry(id, token) => st.on_cpu_retry(id, token),
        }
        inspect(st);
    }

    Ok(st.finish_summary())
}

impl EngineState<'_> {
    /// Finalize the run: install the scheduler-overhead tallies and fold
    /// the metrics into a [`RunSummary`] at the current simulation time.
    /// Shared by the batch `drive` loop and [`StepEngine::finish`].
    fn finish_summary(&mut self) -> RunSummary {
        let end = self.now();
        let disk_busy = self
            .disk
            .as_ref()
            .map(|d| d.busy_until(end))
            .unwrap_or(SimDuration::ZERO);
        self.metrics.set_sched_stats(SchedStats {
            pick_next_calls: self.pick_next_calls.get(),
            priority_evals: self.priority_evals.get(),
            priority_cache_hits: self.priority_cache_hits.get(),
            pair_checks: self.accel.pair_checks(),
            pair_cache_hits: self.accel.pair_cache_hits(),
            heap_pushes: self.heap_pushes.get(),
            heap_stale_pops: self.heap_stale_pops.get(),
            heap_validated_picks: self.heap_validated_picks.get(),
            pair_invalidations: self.accel.pair_invalidations(),
            pair_cache_evictions: self.accel.pair_cache_evictions(),
            clear_repair_clears: self.clear_repair_clears.get(),
            clear_repair_visits: self.clear_repair_visits.get(),
            index_migrations: self.index_migrations.get(),
            migrations_batched: self.migrations_batched.get(),
            pair_cache_probes: self.accel.pair_cache_probes(),
            frozen_compactions: self.frozen_compactions.get(),
            verify_checks: self.verify_checks.get(),
            sched_wall_ns: self.sched_wall_ns.get(),
            shard_barriers: self.shard_barriers.get(),
            cross_shard_conflicts: self.cross_shard_conflicts.get(),
        });
        self.metrics.finish(end, disk_busy)
    }
}

/// How a transaction left the system, as reported through
/// [`StepEngine::drain_completions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Ran to commit. `missed` is true iff it committed after its
    /// deadline (the deadline is soft — late transactions still commit).
    Committed {
        /// Commit happened strictly after the deadline.
        missed: bool,
    },
    /// Rejected at the door by admission control; never executed.
    Rejected,
}

/// One terminal transaction outcome, observed by the serving layer.
///
/// All times are simulation times; a wall-clock front-end converts them
/// to real time through its [`rtx_sim::clock::Clock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The transaction.
    pub id: TxnId,
    /// Its arrival (= submission) time.
    pub arrival: SimTime,
    /// Its absolute deadline.
    pub deadline: SimTime,
    /// When it terminated (commit time; for rejections, the arrival
    /// instant — rejection is immediate).
    pub finish: SimTime,
    /// How many times it was aborted and restarted before terminating.
    pub restarts: u32,
    /// Commit-vs-reject, and whether the deadline was met.
    pub kind: CompletionKind,
}

impl Completion {
    /// Response time (finish − arrival) as a sim-time span.
    pub fn response(&self) -> SimDuration {
        self.finish.since(self.arrival)
    }
}

/// An incrementally driven engine: the same event machinery as
/// [`run_simulation`], exposed one event at a time so a serving loop can
/// interleave event processing with externally submitted arrivals and
/// pace both against a wall clock.
///
/// The stepping discipline reproduces the batch loop **exactly**: at
/// most one `Arrival` event is in the calendar at a time, and the next
/// queued arrival is scheduled at the moment the previous one fires —
/// the same point in the event-sequence order at which the batch loop
/// pulls its `TxnSource`. Feeding a recorded trace through a
/// `StepEngine` therefore replays the identical event sequence (and
/// produces a bit-identical [`RunSummary`]) as
/// [`run_simulation_from`] over the same transactions; the serving
/// bit-identity test in `tests/serving.rs` pins this.
///
/// Unlike the batch entry points, a `StepEngine` has no preset
/// transaction budget and no watchdog: the caller decides when to stop
/// submitting and when to [`StepEngine::finish`].
pub struct StepEngine<'p> {
    st: EngineState<'p>,
    /// Submitted transactions not yet scheduled into the calendar (the
    /// batch loop's "source", materialized).
    queue: VecDeque<Transaction>,
    /// True while an `Arrival` event sits in the calendar.
    arrival_pending: bool,
    /// Total transactions ever submitted.
    submitted: u64,
    /// Total `Arrival` events processed (≤ `submitted`). A deterministic
    /// position in the event sequence: fault-injection harnesses key
    /// "crash after the Nth arrival" off this counter.
    fired: u64,
    /// Arrival stamp of the last submission (stamps are non-decreasing).
    last_arrival: SimTime,
}

impl<'p> StepEngine<'p> {
    /// A fresh engine under `cfg` and `policy` (incremental cache mode).
    ///
    /// `cfg.run.num_transactions` is only a capacity hint here; the run
    /// ends when the caller stops, not when a budget is reached.
    ///
    /// # Errors
    /// Returns the configuration's validation error, if any.
    pub fn new(cfg: &'p SimConfig, policy: &'p dyn Policy) -> Result<Self, RunError> {
        Self::with_mode(cfg, policy, CacheMode::Incremental)
    }

    /// As [`StepEngine::new`] under an explicit [`CacheMode`].
    ///
    /// # Errors
    /// Returns the configuration's validation error, if any.
    pub fn with_mode(
        cfg: &'p SimConfig,
        policy: &'p dyn Policy,
        mode: CacheMode,
    ) -> Result<Self, RunError> {
        cfg.validate()?;
        let mut st = EngineState::new(cfg, policy);
        st.mode = mode;
        st.completions = Some(Vec::new());
        Ok(StepEngine {
            st,
            queue: VecDeque::new(),
            arrival_pending: false,
            submitted: 0,
            fired: 0,
            last_arrival: SimTime::ZERO,
        })
    }

    /// Current simulation time (the firing time of the last processed
    /// event).
    pub fn now(&self) -> SimTime {
        self.st.now()
    }

    /// The dense id the next submitted transaction must carry.
    pub fn next_txn_id(&self) -> TxnId {
        TxnId(self.submitted as u32)
    }

    /// Submit a transaction. Ids must be dense in submission order
    /// ([`StepEngine::next_txn_id`]) and arrival stamps non-decreasing
    /// and not in the engine's past — a wall-clock front-end stamps
    /// submissions with `max(clock now, engine now, last stamp)`, which
    /// satisfies both by construction.
    ///
    /// # Panics
    /// Panics if the id is not the next dense id or the arrival stamp
    /// regresses.
    pub fn submit(&mut self, txn: Transaction) {
        assert_eq!(txn.id, self.next_txn_id(), "transaction ids must be dense");
        assert!(
            txn.arrival >= self.last_arrival,
            "arrival stamps must be non-decreasing"
        );
        assert!(
            txn.arrival >= self.st.now(),
            "arrival stamp {} is in the engine's past (now {})",
            txn.arrival,
            self.st.now()
        );
        self.last_arrival = txn.arrival;
        self.submitted += 1;
        self.queue.push_back(txn);
        self.pump_arrival();
    }

    /// Schedule the next queued arrival if none is pending — the
    /// stepping analogue of the batch loop pulling its source.
    fn pump_arrival(&mut self) {
        if !self.arrival_pending {
            if let Some(next) = self.queue.pop_front() {
                self.st
                    .calendar
                    .schedule(next.arrival, Event::Arrival(Box::new(next)));
                self.arrival_pending = true;
            }
        }
    }

    /// The firing time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.st.calendar.peek_time()
    }

    /// Submitted arrivals still buffered *behind* the one pending in the
    /// calendar. A deterministic (virtual-clock) serving loop steps only
    /// while this is ≥ 1 or the stream is closed: it guarantees that when
    /// the pending arrival fires, its successor is scheduled at the same
    /// point in event-sequence order as the batch loop would have — the
    /// invariant behind bit-identical replay.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Total `Arrival` events processed so far. Deterministic across
    /// replays of the same submission sequence (unlike drain timing), so
    /// a chaos harness can cut the engine at "the Nth arrival" and land
    /// at the same event-sequence position every run.
    pub fn arrivals_fired(&self) -> u64 {
        self.fired
    }

    /// Process one event. Returns `false` iff there was nothing to do —
    /// no pending events and no stuck transactions. (When the calendar
    /// drains while admitted transactions remain blocked, the engine
    /// breaks the lock-wait cycle exactly as the batch loop does and
    /// returns `true`.)
    pub fn step(&mut self) -> bool {
        let fired = match self.st.calendar.pop() {
            Some(f) => f,
            None => {
                if self.st.active.is_empty() {
                    return false;
                }
                // Wedged lock-wait cycle (possible under LSF, never
                // under CCA — Theorem 1): same resolution as `drive`.
                self.st.resolve_deadlock();
                return true;
            }
        };
        match fired.payload {
            Event::Arrival(txn) => {
                self.arrival_pending = false;
                self.fired += 1;
                self.pump_arrival();
                self.st.on_arrival(*txn);
            }
            Event::CpuDone(id) => self.st.on_cpu_done(id),
            Event::IoDone(id) => self.st.on_io_done(id),
            Event::IoRetry(id, token) => self.st.on_io_retry(id, token),
            Event::CpuRetry(id, token) => self.st.on_cpu_retry(id, token),
        }
        true
    }

    /// Take the completions recorded since the last drain, in
    /// termination order.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.st
            .completions
            .replace(Vec::new())
            .expect("StepEngine always installs a completion sink")
    }

    /// Terminated transactions so far (committed + rejected).
    pub fn terminated(&self) -> u64 {
        self.st.metrics.committed() + self.st.metrics.rejected()
    }

    /// Submitted transactions that have not yet reached a terminal
    /// state (includes ones still queued behind a pending arrival).
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.terminated()
    }

    /// Finalize: fold the metrics into a [`RunSummary`] at the current
    /// simulation time, exactly as the batch loop does at end of run.
    pub fn finish(mut self) -> RunSummary {
        self.st.finish_summary()
    }
}

/// Run with full state validation after every event (slow; tests only).
pub fn run_simulation_validated(cfg: &SimConfig, policy: &dyn Policy) -> RunSummary {
    run_simulation_with(cfg, policy, |st| st.validate_state())
}

/// Run one simulation while recording every scheduling decision.
/// Costs memory proportional to the event count; intended for analysis
/// and small runs, not sweeps.
pub fn run_simulation_traced(cfg: &SimConfig, policy: &dyn Policy) -> (RunSummary, Trace) {
    cfg.validate().expect("invalid simulation configuration");
    poison_check(cfg);
    let seeder = StreamSeeder::new(cfg.run.seed);
    let table = TypeTable::generate(cfg, &seeder);
    let mut generator = ArrivalGenerator::new(cfg, &table, &seeder);
    let mut st = EngineState::new(cfg, policy);
    st.trace = Some(Trace::new());
    let expected = cfg.run.num_transactions;
    let summary =
        drive(&mut st, &mut generator, expected, |_| {}).unwrap_or_else(|e| panic!("{e}"));
    (summary, st.trace.take().expect("trace enabled above"))
}

/// A frozen-system harness for `best_by_priority` micro-benchmarks:
/// builds an engine whose active set is exactly the supplied
/// transactions and exposes the pick path — heap-indexed under
/// [`CacheMode::Incremental`], the verbatim full scan under
/// [`CacheMode::AlwaysRecompute`] — without running any events.
///
/// Bench/test support only. The harness never dispatches the picked
/// transaction, so repeated [`PickHarness::pick`] calls measure the
/// steady-state (warm-cache) cost; call
/// [`PickHarness::invalidate_conflict_caches`] between picks to measure
/// the cold path for `ConflictState` policies (for `Static` policies a
/// valid entry is definitionally never stale, so there is no cold case
/// to measure).
pub struct PickHarness<'p> {
    st: EngineState<'p>,
}

impl<'p> PickHarness<'p> {
    /// Assemble a harness over `txns`, which must carry dense ids
    /// `0..n` in order. Transactions with non-empty `accessed` sets are
    /// registered as P-list members, exactly as if they had grown their
    /// sets inside a run.
    ///
    /// # Panics
    /// Panics if ids are not dense or a transaction is not active.
    pub fn new(
        cfg: &'p SimConfig,
        policy: &'p dyn Policy,
        txns: Vec<Transaction>,
        mode: CacheMode,
    ) -> Self {
        let mut st = EngineState::new(cfg, policy);
        st.mode = mode;
        for txn in txns {
            let id = txn.id;
            assert_eq!(
                id.0 as usize,
                st.txns.len(),
                "transaction ids must be dense"
            );
            assert!(txn.is_active(), "harness transactions must be active");
            st.accel.register(id);
            st.index.borrow_mut().register();
            let partial = txn.is_partially_executed();
            if txn.state == TxnState::Ready {
                st.ready_count += 1;
            }
            st.state_tags.push(txn.state);
            st.txns.push(txn);
            st.secondary.push(false);
            st.active.push(id);
            st.accel.reindex(id, &st.txns[id.0 as usize].might_access);
            if partial {
                st.accel.note_access_growth(id, false);
            }
        }
        // Seed every cache entry and index key, as arrivals do in a run.
        if st.heap_in_use() {
            for i in 0..st.active.len() {
                st.priority_exact(st.active[i]);
            }
        }
        for i in 0..st.active.len() {
            st.slack_upsert(st.active[i]);
        }
        PickHarness { st }
    }

    /// One scheduling decision over the frozen system (see
    /// `pick_next`): the best runnable transaction, or the best
    /// IOwait-compatible one when the policy restricts. Counted in
    /// [`Self::stats`] like any in-run pick.
    pub fn pick(&self) -> Option<(TxnId, bool)> {
        self.st.pick_next()
    }

    /// Invalidate every cached `ConflictState` priority by bumping each
    /// transaction's pair stamp — the cold-cache case. Index keys keep
    /// their (still-correct) values, so the next pick pays exact
    /// revalidation of the entries it actually inspects rather than a
    /// full-system recompute: that asymmetry against the scan oracle is
    /// precisely what the cold benchmark now measures.
    pub fn invalidate_conflict_caches(&mut self) {
        for i in 0..self.st.active.len() {
            let id = self.st.active[i];
            self.st.accel.bump_pair_stamp(id);
        }
    }

    /// The scheduler counters accumulated by this harness's picks
    /// (wall time stays 0: harness runs are never profiled).
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            pick_next_calls: self.st.pick_next_calls.get(),
            priority_evals: self.st.priority_evals.get(),
            priority_cache_hits: self.st.priority_cache_hits.get(),
            pair_checks: self.st.accel.pair_checks(),
            pair_cache_hits: self.st.accel.pair_cache_hits(),
            heap_pushes: self.st.heap_pushes.get(),
            heap_stale_pops: self.st.heap_stale_pops.get(),
            heap_validated_picks: self.st.heap_validated_picks.get(),
            pair_invalidations: self.st.accel.pair_invalidations(),
            pair_cache_evictions: self.st.accel.pair_cache_evictions(),
            clear_repair_clears: self.st.clear_repair_clears.get(),
            clear_repair_visits: self.st.clear_repair_visits.get(),
            index_migrations: self.st.index_migrations.get(),
            migrations_batched: self.st.migrations_batched.get(),
            pair_cache_probes: self.st.accel.pair_cache_probes(),
            frozen_compactions: self.st.frozen_compactions.get(),
            verify_checks: self.st.verify_checks.get(),
            sched_wall_ns: self.st.sched_wall_ns.get(),
            shard_barriers: self.st.shard_barriers.get(),
            cross_shard_conflicts: self.st.cross_shard_conflicts.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, Priority, SystemView};

    /// Earliest Deadline First with HP conflict resolution: the paper's
    /// baseline, used here to exercise the engine.
    struct Edf;
    impl Policy for Edf {
        fn name(&self) -> &str {
            "EDF-HP(test)"
        }
        fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
            Priority(-txn.deadline.as_ms())
        }
    }

    /// EDF with the CCA IOwait-schedule restriction but no penalty term.
    struct EdfRestricted;
    impl Policy for EdfRestricted {
        fn name(&self) -> &str {
            "EDF+iowait"
        }
        fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
            Priority(-txn.deadline.as_ms())
        }
        fn iowait_restrict(&self) -> bool {
            true
        }
    }

    fn small_mm(seed: u64, rate: f64, n: usize) -> SimConfig {
        let mut cfg = SimConfig::mm_base();
        cfg.run.seed = seed;
        cfg.run.arrival_rate_tps = rate;
        cfg.run.num_transactions = n;
        cfg
    }

    fn small_disk(seed: u64, rate: f64, n: usize) -> SimConfig {
        let mut cfg = SimConfig::disk_base();
        cfg.run.seed = seed;
        cfg.run.arrival_rate_tps = rate;
        cfg.run.num_transactions = n;
        cfg
    }

    #[test]
    fn all_transactions_commit_mm() {
        let cfg = small_mm(1, 5.0, 200);
        let s = run_simulation(&cfg, &Edf);
        assert_eq!(s.committed, 200, "soft deadlines: nothing is dropped");
        assert!(s.makespan_ms > 0.0);
    }

    #[test]
    fn all_transactions_commit_disk() {
        let cfg = small_disk(1, 3.0, 100);
        let s = run_simulation(&cfg, &Edf);
        assert_eq!(s.committed, 100);
        assert!(s.disk_utilization > 0.0, "disk was used");
        assert!(s.disk_utilization < 1.0);
    }

    #[test]
    fn determinism_same_seed() {
        let cfg = small_mm(7, 8.0, 150);
        let a = run_simulation(&cfg, &Edf);
        let b = run_simulation(&cfg, &Edf);
        assert_eq!(a, b, "same seed must give identical results");
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_simulation(&small_mm(1, 8.0, 150), &Edf);
        let b = run_simulation(&small_mm(2, 8.0, 150), &Edf);
        assert_ne!(a, b);
    }

    #[test]
    fn state_invariants_hold_throughout_mm() {
        let cfg = small_mm(3, 9.0, 120);
        let s = run_simulation_validated(&cfg, &Edf);
        assert_eq!(s.committed, 120);
    }

    #[test]
    fn state_invariants_hold_throughout_disk() {
        let cfg = small_disk(3, 4.0, 80);
        let s = run_simulation_validated(&cfg, &Edf);
        assert_eq!(s.committed, 80);
        let s2 = run_simulation_validated(&cfg, &EdfRestricted);
        assert_eq!(s2.committed, 80);
    }

    #[test]
    fn light_load_no_misses() {
        // At 0.5 tps on a 12.5 tps system, nearly everything makes its
        // deadline and restarts are rare.
        let cfg = small_mm(4, 0.5, 100);
        let s = run_simulation(&cfg, &Edf);
        assert!(s.miss_percent < 5.0, "miss {} too high", s.miss_percent);
        assert!(s.restarts_per_txn < 0.2, "restarts {}", s.restarts_per_txn);
    }

    #[test]
    fn heavy_load_causes_misses_and_restarts() {
        let cfg = small_mm(5, 10.0, 300);
        let s = run_simulation(&cfg, &Edf);
        assert!(
            s.miss_percent > 1.0,
            "expected misses, got {}",
            s.miss_percent
        );
        assert!(s.restarts_total > 0, "expected aborts under contention");
        assert!(s.cpu_utilization > 0.5);
    }

    #[test]
    fn miss_rate_increases_with_load() {
        let lo = run_simulation(&small_mm(6, 2.0, 300), &Edf);
        let hi = run_simulation(&small_mm(6, 10.0, 300), &Edf);
        assert!(
            hi.miss_percent >= lo.miss_percent,
            "load response inverted: {} vs {}",
            lo.miss_percent,
            hi.miss_percent
        );
        assert!(hi.mean_lateness_ms >= lo.mean_lateness_ms);
    }

    #[test]
    fn plist_stays_small() {
        // §4.1: "The average number of partially executed transactions …
        // is 1 to 2".
        let cfg = small_mm(8, 8.0, 300);
        let s = run_simulation(&cfg, &Edf);
        assert!(
            s.mean_plist_len < 4.0,
            "mean P-list length {} unexpectedly large",
            s.mean_plist_len
        );
    }

    #[test]
    fn iowait_restriction_reduces_noncontributing_aborts() {
        let cfg = small_disk(9, 5.0, 150);
        let plain = run_simulation(&cfg, &Edf);
        let restricted = run_simulation(&cfg, &EdfRestricted);
        // A compatible secondary is never rolled back by the returning
        // primary (it can still be aborted by a later conflicting arrival,
        // so the count need not be exactly zero).
        assert!(
            restricted.noncontributing_aborts <= plain.noncontributing_aborts,
            "restriction should reduce noncontributing aborts: {} vs {}",
            restricted.noncontributing_aborts,
            plain.noncontributing_aborts
        );
        // A compatible secondary also never has to lock-wait.
        assert!(restricted.lock_waits <= plain.lock_waits);
    }

    #[test]
    fn disk_utilization_below_paper_bound() {
        // §5: utilization stays below 62.5% for arrival rates ≤ 7 tps
        // (that bound is for 12.5 tps, so any admissible rate is below it).
        for rate in [2.0, 5.0, 7.0] {
            let cfg = small_disk(10, rate, 120);
            let s = run_simulation(&cfg, &Edf);
            let expected = cfg.disk_utilization_at(rate);
            // Aborted work re-executes, so measured utilization may exceed
            // the no-abort estimate, but not the physical bound.
            assert!(s.disk_utilization <= 1.0);
            assert!(
                s.disk_utilization > 0.3 * expected,
                "rate {rate}: utilization {} far below expectation {expected}",
                s.disk_utilization
            );
        }
    }

    #[test]
    fn zero_abort_cost_supported() {
        let mut cfg = small_mm(11, 9.0, 100);
        cfg.system.abort_cost_ms = 0.0;
        let s = run_simulation(&cfg, &Edf);
        assert_eq!(s.committed, 100);
    }

    #[test]
    fn proportional_recovery_increases_cost() {
        let mut base = small_mm(12, 10.0, 200);
        let flat = run_simulation(&base, &Edf);
        base.system.proportional_recovery = true;
        let prop = run_simulation(&base, &Edf);
        // More expensive recovery can only lengthen the run.
        assert!(prop.makespan_ms >= flat.makespan_ms);
    }

    #[test]
    #[should_panic(expected = "invalid simulation configuration")]
    fn invalid_config_panics() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 0;
        run_simulation(&cfg, &Edf);
    }

    #[test]
    fn single_transaction_runs_in_isolation() {
        let cfg = small_mm(13, 1.0, 1);
        let s = run_simulation(&cfg, &Edf);
        assert_eq!(s.committed, 1);
        assert_eq!(s.restarts_total, 0);
        assert_eq!(s.miss_percent, 0.0, "an isolated txn meets any deadline");
        assert_eq!(s.mean_lateness_ms, 0.0);
    }

    #[test]
    fn response_time_at_least_resource_time() {
        // The mean response must exceed the isolated service time of the
        // shortest transaction; sanity for the pipeline accounting.
        let cfg = small_mm(14, 6.0, 100);
        let s = run_simulation(&cfg, &Edf);
        assert!(s.mean_response_ms >= 4.0, "response {}", s.mean_response_ms);
    }
}
