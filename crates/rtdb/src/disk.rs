//! The single disk with FCFS scheduling (§5: "we have single processor,
//! single disk and FCFS IO scheduling").
//!
//! Only the *active* transfer has a completion event in the calendar;
//! queued requests are just queue entries, so an abort while queued
//! ("the transaction is deleted from the disk queue immediately") removes
//! the entry without touching the calendar, while an abort during the
//! transfer lets the transfer finish ("it is not deleted until it releases
//! the disk") — the engine marks the victim *doomed* instead.
//!
//! The disk does not decide service times: the engine passes the duration
//! of each transfer to [`Disk::start`], because under fault injection a
//! transfer may be slowed by a latency spike or brownout window (see
//! `rtx_sim::fault`). The split API — [`Disk::enqueue`] says whether the
//! disk is idle, [`Disk::pop_next`] yields the next queued request after a
//! completion — keeps the fault draw in the engine, on its own RNG stream.

use std::collections::VecDeque;

use rtx_sim::time::{SimDuration, SimTime};

use crate::txn::TxnId;

/// Queue discipline for the disk.
///
/// The paper uses FCFS ("single disk and FCFS IO scheduling", §5) but
/// cites real-time IO scheduling [AG89, CBB+89] as a way to reduce IO
/// waits; `EarliestDeadline` services the request whose transaction has
/// the earliest deadline first (the `ablate-disk-sched` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskDiscipline {
    /// First come, first served (the paper's model).
    #[default]
    Fcfs,
    /// Earliest-deadline-first over queued requests.
    EarliestDeadline,
}

/// State of the simulated disk.
#[derive(Debug, Clone)]
pub struct Disk {
    access_time: SimDuration,
    discipline: DiskDiscipline,
    /// Queued requests: (transaction, priority key — smaller first under
    /// `EarliestDeadline`; arrival order breaks ties and rules FCFS).
    queue: VecDeque<(TxnId, u64)>,
    active: Option<TxnId>,
    /// Accumulated busy time, for the utilization metric.
    busy: SimDuration,
    active_since: SimTime,
    completed: u64,
}

impl Disk {
    /// An idle FCFS disk (the paper's model).
    pub fn new(access_time: SimDuration) -> Self {
        Disk::with_discipline(access_time, DiskDiscipline::Fcfs)
    }

    /// An idle disk with the given queue discipline.
    pub fn with_discipline(access_time: SimDuration, discipline: DiskDiscipline) -> Self {
        Disk {
            access_time,
            discipline,
            queue: VecDeque::new(),
            active: None,
            busy: SimDuration::ZERO,
            active_since: SimTime::ZERO,
            completed: 0,
        }
    }

    /// The queue discipline in use.
    pub fn discipline(&self) -> DiskDiscipline {
        self.discipline
    }

    /// The nominal (fault-free) per-access service time.
    pub fn access_time(&self) -> SimDuration {
        self.access_time
    }

    /// The transaction whose transfer is in progress, if any.
    pub fn active(&self) -> Option<TxnId> {
        self.active
    }

    /// Number of queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Completed transfers so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Enqueue a request from `txn`. `key` is the service priority under
    /// [`DiskDiscipline::EarliestDeadline`] (smaller = sooner; the engine
    /// passes the transaction's absolute deadline) and ignored under FCFS.
    ///
    /// Returns `true` iff the disk is idle — the caller must then decide
    /// the transfer's service time and call [`Disk::start`]. (The request
    /// is *not* queued in that case.)
    pub fn enqueue(&mut self, txn: TxnId, key: u64) -> bool {
        if self.active.is_none() {
            true
        } else {
            self.queue.push_back((txn, key));
            false
        }
    }

    /// Begin `txn`'s transfer at `now` with the given per-transfer
    /// `service` time (nominal access time possibly inflated by injected
    /// latency). Returns the completion instant the engine must schedule.
    ///
    /// # Panics
    /// Panics if a transfer is already active.
    pub fn start(&mut self, txn: TxnId, now: SimTime, service: SimDuration) -> SimTime {
        assert!(self.active.is_none(), "start() with a transfer active");
        self.active = Some(txn);
        self.active_since = now;
        now + service
    }

    /// The active transfer finished at `now`; returns its transaction.
    /// Call [`Disk::pop_next`] afterwards to obtain the next request to
    /// start, if any.
    ///
    /// # Panics
    /// Panics if no transfer was active.
    pub fn complete(&mut self, now: SimTime) -> TxnId {
        let done = self
            .active
            .take()
            .expect("complete() with no active transfer");
        self.busy += now.since(self.active_since);
        self.completed += 1;
        done
    }

    /// Remove and return the next queued request per the discipline, or
    /// `None` if the queue is empty. Only meaningful while the disk is
    /// idle (between [`Disk::complete`] and the next [`Disk::start`]).
    pub fn pop_next(&mut self) -> Option<TxnId> {
        let idx = match self.discipline {
            DiskDiscipline::Fcfs => (!self.queue.is_empty()).then_some(0),
            DiskDiscipline::EarliestDeadline => self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, (_, key))| (*key, *i))
                .map(|(i, _)| i),
        }?;
        let (txn, _) = self.queue.remove(idx).expect("index in range");
        Some(txn)
    }

    /// Remove `txn` from the wait queue (abort while queued). Returns
    /// `true` iff it was queued. Does **not** touch an active transfer.
    pub fn remove_queued(&mut self, txn: TxnId) -> bool {
        if let Some(pos) = self.queue.iter().position(|&(t, _)| t == txn) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// True iff `txn` has a request pending (queued or active).
    pub fn involves(&self, txn: TxnId) -> bool {
        self.active == Some(txn) || self.queue.iter().any(|&(t, _)| t == txn)
    }

    /// Total busy time up to `now` (includes the in-flight transfer).
    pub fn busy_until(&self, now: SimTime) -> SimDuration {
        match self.active {
            Some(_) => self.busy + now.since(self.active_since),
            None => self.busy,
        }
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_until(now).as_secs() / now.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_ms(x)
    }

    /// Enqueue and, if the disk was idle, start at the nominal service
    /// time — the fault-free path the engine takes.
    fn issue(d: &mut Disk, txn: TxnId, key: u64, now: SimTime) -> Option<SimTime> {
        d.enqueue(txn, key).then(|| {
            let svc = d.access_time();
            d.start(txn, now, svc)
        })
    }

    /// Complete the active transfer and start the next queued request, if
    /// any, returning (done, next start's completion time).
    fn finish(d: &mut Disk, now: SimTime) -> (TxnId, Option<(TxnId, SimTime)>) {
        let done = d.complete(now);
        let next = d.pop_next().map(|t| {
            let svc = d.access_time();
            (t, d.start(t, now, svc))
        });
        (done, next)
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        assert_eq!(issue(&mut d, TxnId(1), 0, ms(10.0)), Some(ms(35.0)));
        assert_eq!(d.active(), Some(TxnId(1)));
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn fcfs_order() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        issue(&mut d, TxnId(1), 0, ms(0.0));
        assert_eq!(issue(&mut d, TxnId(2), 0, ms(1.0)), None);
        assert_eq!(issue(&mut d, TxnId(3), 0, ms(2.0)), None);
        assert_eq!(d.queue_len(), 2);
        let (done, next) = finish(&mut d, ms(25.0));
        assert_eq!(done, TxnId(1));
        assert_eq!(next, Some((TxnId(2), ms(50.0))));
        let (done, next) = finish(&mut d, ms(50.0));
        assert_eq!(done, TxnId(2));
        assert_eq!(next, Some((TxnId(3), ms(75.0))));
        let (done, next) = finish(&mut d, ms(75.0));
        assert_eq!(done, TxnId(3));
        assert_eq!(next, None);
        assert_eq!(d.completed(), 3);
    }

    #[test]
    fn caller_controls_service_time() {
        // A spiked transfer takes 4× nominal; busy accounting follows the
        // actual duration, not the nominal one.
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        assert!(d.enqueue(TxnId(1), 0));
        let done_at = d.start(TxnId(1), ms(0.0), SimDuration::from_ms(100.0));
        assert_eq!(done_at, ms(100.0));
        assert_eq!(d.complete(ms(100.0)), TxnId(1));
        assert_eq!(d.busy_until(ms(100.0)), SimDuration::from_ms(100.0));
    }

    #[test]
    fn remove_queued_only_touches_queue() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        issue(&mut d, TxnId(1), 0, ms(0.0));
        issue(&mut d, TxnId(2), 0, ms(0.0));
        issue(&mut d, TxnId(3), 0, ms(0.0));
        assert!(d.remove_queued(TxnId(2)));
        assert!(!d.remove_queued(TxnId(2)), "already removed");
        assert!(!d.remove_queued(TxnId(1)), "active transfer not removable");
        assert_eq!(d.active(), Some(TxnId(1)));
        let (_, next) = finish(&mut d, ms(25.0));
        assert_eq!(next, Some((TxnId(3), ms(50.0))));
    }

    #[test]
    fn involves_checks_queue_and_active() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        issue(&mut d, TxnId(1), 0, ms(0.0));
        issue(&mut d, TxnId(2), 0, ms(0.0));
        assert!(d.involves(TxnId(1)));
        assert!(d.involves(TxnId(2)));
        assert!(!d.involves(TxnId(3)));
    }

    #[test]
    fn utilization_accounting() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        issue(&mut d, TxnId(1), 0, ms(0.0));
        d.complete(ms(25.0));
        // busy 25 of 100 ms → 25%.
        assert!((d.utilization(ms(100.0)) - 0.25).abs() < 1e-9);
        // In-flight transfer counts.
        issue(&mut d, TxnId(2), 0, ms(100.0));
        assert!((d.utilization(ms(110.0)) - 35.0 / 110.0).abs() < 1e-9);
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn edf_discipline_services_earliest_deadline_first() {
        let mut d =
            Disk::with_discipline(SimDuration::from_ms(25.0), DiskDiscipline::EarliestDeadline);
        assert_eq!(d.discipline(), DiskDiscipline::EarliestDeadline);
        issue(&mut d, TxnId(1), 500, ms(0.0)); // active immediately
        issue(&mut d, TxnId(2), 300, ms(1.0));
        issue(&mut d, TxnId(3), 100, ms(2.0));
        issue(&mut d, TxnId(4), 200, ms(3.0));
        let (_, next) = finish(&mut d, ms(25.0));
        assert_eq!(next, Some((TxnId(3), ms(50.0))), "key 100 first");
        let (_, next) = finish(&mut d, ms(50.0));
        assert_eq!(next, Some((TxnId(4), ms(75.0))), "key 200 next");
        let (_, next) = finish(&mut d, ms(75.0));
        assert_eq!(next, Some((TxnId(2), ms(100.0))));
    }

    #[test]
    fn edf_discipline_breaks_key_ties_by_arrival() {
        let mut d =
            Disk::with_discipline(SimDuration::from_ms(25.0), DiskDiscipline::EarliestDeadline);
        issue(&mut d, TxnId(1), 0, ms(0.0));
        issue(&mut d, TxnId(2), 100, ms(1.0));
        issue(&mut d, TxnId(3), 100, ms(2.0));
        let (_, next) = finish(&mut d, ms(25.0));
        assert_eq!(next, Some((TxnId(2), ms(50.0))));
    }

    #[test]
    #[should_panic(expected = "no active transfer")]
    fn complete_without_active_panics() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.complete(ms(5.0));
    }

    #[test]
    #[should_panic(expected = "transfer active")]
    fn double_start_panics() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.start(TxnId(1), ms(0.0), SimDuration::from_ms(25.0));
        d.start(TxnId(2), ms(0.0), SimDuration::from_ms(25.0));
    }
}
