//! The single disk with FCFS scheduling (§5: "we have single processor,
//! single disk and FCFS IO scheduling").
//!
//! Only the *active* transfer has a completion event in the calendar;
//! queued requests are just queue entries, so an abort while queued
//! ("the transaction is deleted from the disk queue immediately") removes
//! the entry without touching the calendar, while an abort during the
//! transfer lets the transfer finish ("it is not deleted until it releases
//! the disk") — the engine marks the victim *doomed* instead.

use std::collections::VecDeque;

use rtx_sim::time::{SimDuration, SimTime};

use crate::txn::TxnId;

/// Queue discipline for the disk.
///
/// The paper uses FCFS ("single disk and FCFS IO scheduling", §5) but
/// cites real-time IO scheduling [AG89, CBB+89] as a way to reduce IO
/// waits; `EarliestDeadline` services the request whose transaction has
/// the earliest deadline first (the `ablate-disk-sched` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskDiscipline {
    /// First come, first served (the paper's model).
    #[default]
    Fcfs,
    /// Earliest-deadline-first over queued requests.
    EarliestDeadline,
}

/// State of the simulated disk.
#[derive(Debug, Clone)]
pub struct Disk {
    access_time: SimDuration,
    discipline: DiskDiscipline,
    /// Queued requests: (transaction, priority key — smaller first under
    /// `EarliestDeadline`; arrival order breaks ties and rules FCFS).
    queue: VecDeque<(TxnId, u64)>,
    active: Option<TxnId>,
    /// Accumulated busy time, for the utilization metric.
    busy: SimDuration,
    active_since: SimTime,
    completed: u64,
}

/// What the engine must do after a disk call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskAction {
    /// Nothing to schedule.
    None,
    /// Schedule an IO-completion event for this transaction at `at`.
    Start(TxnId, SimTime),
}

impl Disk {
    /// An idle FCFS disk (the paper's model).
    pub fn new(access_time: SimDuration) -> Self {
        Disk::with_discipline(access_time, DiskDiscipline::Fcfs)
    }

    /// An idle disk with the given queue discipline.
    pub fn with_discipline(access_time: SimDuration, discipline: DiskDiscipline) -> Self {
        Disk {
            access_time,
            discipline,
            queue: VecDeque::new(),
            active: None,
            busy: SimDuration::ZERO,
            active_since: SimTime::ZERO,
            completed: 0,
        }
    }

    /// The queue discipline in use.
    pub fn discipline(&self) -> DiskDiscipline {
        self.discipline
    }

    /// The fixed per-access service time.
    pub fn access_time(&self) -> SimDuration {
        self.access_time
    }

    /// The transaction whose transfer is in progress, if any.
    pub fn active(&self) -> Option<TxnId> {
        self.active
    }

    /// Number of queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Completed transfers so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Enqueue a request from `txn` at time `now`. `key` is the service
    /// priority under [`DiskDiscipline::EarliestDeadline`] (smaller =
    /// sooner; the engine passes the transaction's absolute deadline) and
    /// ignored under FCFS. If the disk is idle the transfer starts
    /// immediately and the returned action tells the engine when to fire
    /// its completion.
    pub fn enqueue(&mut self, txn: TxnId, key: u64, now: SimTime) -> DiskAction {
        if self.active.is_none() {
            self.start(txn, now)
        } else {
            self.queue.push_back((txn, key));
            DiskAction::None
        }
    }

    fn start(&mut self, txn: TxnId, now: SimTime) -> DiskAction {
        debug_assert!(self.active.is_none());
        self.active = Some(txn);
        self.active_since = now;
        DiskAction::Start(txn, now + self.access_time)
    }

    /// The active transfer finished at `now`. Returns the next transfer to
    /// start, if the queue is non-empty.
    ///
    /// # Panics
    /// Panics if no transfer was active.
    pub fn complete(&mut self, now: SimTime) -> (TxnId, DiskAction) {
        let done = self
            .active
            .take()
            .expect("complete() with no active transfer");
        self.busy += now.since(self.active_since);
        self.completed += 1;
        let next_idx = match self.discipline {
            DiskDiscipline::Fcfs => (!self.queue.is_empty()).then_some(0),
            DiskDiscipline::EarliestDeadline => self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, (_, key))| (*key, *i))
                .map(|(i, _)| i),
        };
        let next = match next_idx {
            Some(i) => {
                let (txn, _) = self.queue.remove(i).expect("index in range");
                self.start(txn, now)
            }
            None => DiskAction::None,
        };
        (done, next)
    }

    /// Remove `txn` from the wait queue (abort while queued). Returns
    /// `true` iff it was queued. Does **not** touch an active transfer.
    pub fn remove_queued(&mut self, txn: TxnId) -> bool {
        if let Some(pos) = self.queue.iter().position(|&(t, _)| t == txn) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// True iff `txn` has a request pending (queued or active).
    pub fn involves(&self, txn: TxnId) -> bool {
        self.active == Some(txn) || self.queue.iter().any(|&(t, _)| t == txn)
    }

    /// Total busy time up to `now` (includes the in-flight transfer).
    pub fn busy_until(&self, now: SimTime) -> SimDuration {
        match self.active {
            Some(_) => self.busy + now.since(self.active_since),
            None => self.busy,
        }
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_until(now).as_secs() / now.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_ms(x)
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        let action = d.enqueue(TxnId(1), 0, ms(10.0));
        assert_eq!(action, DiskAction::Start(TxnId(1), ms(35.0)));
        assert_eq!(d.active(), Some(TxnId(1)));
        assert_eq!(d.queue_len(), 0);
    }

    #[test]
    fn fcfs_order() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.enqueue(TxnId(1), 0, ms(0.0));
        assert_eq!(d.enqueue(TxnId(2), 0, ms(1.0)), DiskAction::None);
        assert_eq!(d.enqueue(TxnId(3), 0, ms(2.0)), DiskAction::None);
        assert_eq!(d.queue_len(), 2);
        let (done, next) = d.complete(ms(25.0));
        assert_eq!(done, TxnId(1));
        assert_eq!(next, DiskAction::Start(TxnId(2), ms(50.0)));
        let (done, next) = d.complete(ms(50.0));
        assert_eq!(done, TxnId(2));
        assert_eq!(next, DiskAction::Start(TxnId(3), ms(75.0)));
        let (done, next) = d.complete(ms(75.0));
        assert_eq!(done, TxnId(3));
        assert_eq!(next, DiskAction::None);
        assert_eq!(d.completed(), 3);
    }

    #[test]
    fn remove_queued_only_touches_queue() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.enqueue(TxnId(1), 0, ms(0.0));
        d.enqueue(TxnId(2), 0, ms(0.0));
        d.enqueue(TxnId(3), 0, ms(0.0));
        assert!(d.remove_queued(TxnId(2)));
        assert!(!d.remove_queued(TxnId(2)), "already removed");
        assert!(!d.remove_queued(TxnId(1)), "active transfer not removable");
        assert_eq!(d.active(), Some(TxnId(1)));
        let (_, next) = d.complete(ms(25.0));
        assert_eq!(next, DiskAction::Start(TxnId(3), ms(50.0)));
    }

    #[test]
    fn involves_checks_queue_and_active() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.enqueue(TxnId(1), 0, ms(0.0));
        d.enqueue(TxnId(2), 0, ms(0.0));
        assert!(d.involves(TxnId(1)));
        assert!(d.involves(TxnId(2)));
        assert!(!d.involves(TxnId(3)));
    }

    #[test]
    fn utilization_accounting() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.enqueue(TxnId(1), 0, ms(0.0));
        d.complete(ms(25.0));
        // busy 25 of 100 ms → 25%.
        assert!((d.utilization(ms(100.0)) - 0.25).abs() < 1e-9);
        // In-flight transfer counts.
        d.enqueue(TxnId(2), 0, ms(100.0));
        assert!((d.utilization(ms(110.0)) - 35.0 / 110.0).abs() < 1e-9);
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn edf_discipline_services_earliest_deadline_first() {
        let mut d =
            Disk::with_discipline(SimDuration::from_ms(25.0), DiskDiscipline::EarliestDeadline);
        assert_eq!(d.discipline(), DiskDiscipline::EarliestDeadline);
        d.enqueue(TxnId(1), 500, ms(0.0)); // active immediately
        d.enqueue(TxnId(2), 300, ms(1.0));
        d.enqueue(TxnId(3), 100, ms(2.0));
        d.enqueue(TxnId(4), 200, ms(3.0));
        let (_, next) = d.complete(ms(25.0));
        assert_eq!(next, DiskAction::Start(TxnId(3), ms(50.0)), "key 100 first");
        let (_, next) = d.complete(ms(50.0));
        assert_eq!(next, DiskAction::Start(TxnId(4), ms(75.0)), "key 200 next");
        let (_, next) = d.complete(ms(75.0));
        assert_eq!(next, DiskAction::Start(TxnId(2), ms(100.0)));
    }

    #[test]
    fn edf_discipline_breaks_key_ties_by_arrival() {
        let mut d =
            Disk::with_discipline(SimDuration::from_ms(25.0), DiskDiscipline::EarliestDeadline);
        d.enqueue(TxnId(1), 0, ms(0.0));
        d.enqueue(TxnId(2), 100, ms(1.0));
        d.enqueue(TxnId(3), 100, ms(2.0));
        let (_, next) = d.complete(ms(25.0));
        assert_eq!(next, DiskAction::Start(TxnId(2), ms(50.0)));
    }

    #[test]
    #[should_panic(expected = "no active transfer")]
    fn complete_without_active_panics() {
        let mut d = Disk::new(SimDuration::from_ms(25.0));
        d.complete(ms(5.0));
    }
}
