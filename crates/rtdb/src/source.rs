//! Pluggable transaction sources.
//!
//! The paper's workload (Poisson arrivals over 50 generated straight-line
//! types) is the default, but the engine itself only needs a stream of
//! transaction instances in arrival order — custom workloads (the
//! branching-program extension, hand-crafted scenarios in the examples)
//! implement [`TxnSource`] and use
//! [`run_simulation_from`](crate::engine::run_simulation_from).

use crate::txn::Transaction;
use crate::workload::ArrivalGenerator;

/// A stream of transaction instances in non-decreasing arrival order with
/// dense ids `0, 1, 2, …` (the engine indexes its tables by id).
pub trait TxnSource {
    /// The next transaction, or `None` when the workload is exhausted.
    fn next_transaction(&mut self) -> Option<Transaction>;
}

impl TxnSource for ArrivalGenerator<'_> {
    fn next_transaction(&mut self) -> Option<Transaction> {
        ArrivalGenerator::next_transaction(self)
    }
}

/// A source that replays a pre-built list of transactions.
///
/// # Panics
/// `new` panics if ids are not dense (`0..n`) or arrivals are not
/// non-decreasing — both would corrupt the engine's indexing.
pub struct ReplaySource {
    txns: std::vec::IntoIter<Transaction>,
}

impl ReplaySource {
    /// Build from a complete arrival-ordered list.
    pub fn new(txns: Vec<Transaction>) -> Self {
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i, "transaction ids must be dense");
            if i > 0 {
                assert!(
                    txns[i - 1].arrival <= t.arrival,
                    "arrivals must be non-decreasing"
                );
            }
        }
        ReplaySource {
            txns: txns.into_iter(),
        }
    }
}

impl TxnSource for ReplaySource {
    fn next_transaction(&mut self) -> Option<Transaction> {
        self.txns.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::workload::TypeTable;
    use rtx_sim::rng::StreamSeeder;

    #[test]
    fn generator_implements_source() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 5;
        let seeder = StreamSeeder::new(1);
        let table = TypeTable::generate(&cfg, &seeder);
        let mut gen = ArrivalGenerator::new(&cfg, &table, &seeder);
        let source: &mut dyn TxnSource = &mut gen;
        let mut count = 0;
        while source.next_transaction().is_some() {
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn replay_source_returns_in_order() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 3;
        let seeder = StreamSeeder::new(2);
        let table = TypeTable::generate(&cfg, &seeder);
        let mut gen = ArrivalGenerator::new(&cfg, &table, &seeder);
        let txns: Vec<Transaction> = std::iter::from_fn(|| gen.next_transaction()).collect();
        let arrivals: Vec<_> = txns.iter().map(|t| t.arrival).collect();
        let mut replay = ReplaySource::new(txns);
        for &expect in &arrivals {
            assert_eq!(replay.next_transaction().unwrap().arrival, expect);
        }
        assert!(replay.next_transaction().is_none());
    }

    #[test]
    #[should_panic(expected = "ids must be dense")]
    fn replay_rejects_sparse_ids() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 2;
        let seeder = StreamSeeder::new(3);
        let table = TypeTable::generate(&cfg, &seeder);
        let mut gen = ArrivalGenerator::new(&cfg, &table, &seeder);
        let mut txns: Vec<Transaction> = std::iter::from_fn(|| gen.next_transaction()).collect();
        txns.remove(0);
        ReplaySource::new(txns);
    }
}
