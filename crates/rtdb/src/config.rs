//! Simulation parameters, mirroring Table 1 (main memory) and Table 2
//! (disk resident) of the paper, plus the robustness extensions (fault
//! plan, admission control, run watchdog) that the paper's tables do not
//! model.

use crate::error::ConfigError;
use rtx_sim::fault::FaultPlan;
use rtx_sim::time::SimDuration;

/// Workload-shape parameters (shared by both resident models).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of transaction types ("Transaction type 50").
    pub num_types: usize,
    /// Mean of the per-type update count ("Update per transaction (mean)").
    pub updates_mean: f64,
    /// Standard deviation of the update count.
    pub updates_std: f64,
    /// Number of objects in the database ("Database size").
    pub db_size: u64,
    /// Lower bound of slack as a fraction of the resource time
    /// ("Min-slack as fraction of total runtime", 20% → 0.2).
    pub min_slack: f64,
    /// Upper bound of slack (800% → 8.0).
    pub max_slack: f64,
    /// Probability that an update only *reads* its item (shared lock).
    /// The paper's model is write-only (`0.0`, §3.1); non-zero values
    /// drive the §6 shared-lock extension experiment.
    pub read_probability: f64,
    /// Fraction of instances drawn as high-criticality (class 1). The
    /// paper assumes "same criticalness" (`0.0`); non-zero values drive
    /// the §6 "multiple criticalness" extension experiment.
    pub high_criticality_fraction: f64,
    /// Per-update CPU times, one per *class* of transaction types.
    ///
    /// The base experiments use a single class of 4 ms
    /// ("Computation/update (ms) 4"); the high-variance experiment (§4.2)
    /// classifies the 50 types into 3 classes with 0.4 / 4 / 40 ms. Types
    /// are assigned to classes round-robin by type index.
    pub update_time_classes_ms: Vec<f64>,
}

impl WorkloadConfig {
    /// The per-update CPU time of type `type_index`.
    pub fn update_time_for_type(&self, type_index: usize) -> SimDuration {
        let class = type_index % self.update_time_classes_ms.len();
        SimDuration::from_ms(self.update_time_classes_ms[class])
    }

    /// Validate parameter sanity; returns the first problem found as a
    /// typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_types == 0 {
            return Err(ConfigError::ZeroTypes);
        }
        if self.db_size == 0 {
            return Err(ConfigError::ZeroDbSize);
        }
        if self.updates_mean <= 0.0 {
            return Err(ConfigError::NonPositiveUpdatesMean);
        }
        if self.updates_std < 0.0 {
            return Err(ConfigError::NegativeUpdatesStd);
        }
        if self.min_slack < 0.0 || self.max_slack < self.min_slack {
            return Err(ConfigError::BadSlackRange {
                min: self.min_slack,
                max: self.max_slack,
            });
        }
        if !(0.0..=1.0).contains(&self.read_probability) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "read_probability",
                value: self.read_probability,
            });
        }
        if !(0.0..=1.0).contains(&self.high_criticality_fraction) {
            return Err(ConfigError::ProbabilityOutOfRange {
                field: "high_criticality_fraction",
                value: self.high_criticality_fraction,
            });
        }
        if self.update_time_classes_ms.is_empty()
            || self.update_time_classes_ms.iter().any(|&t| t <= 0.0)
        {
            return Err(ConfigError::BadUpdateTimeClasses);
        }
        Ok(())
    }
}

/// Feasibility-based admission control (config-gated; `None` disables it).
///
/// On arrival the engine estimates whether the transaction can possibly
/// finish by its deadline: estimated execution time plus the current
/// penalty of conflict, inflated by a safety factor, must fit within the
/// deadline. Transactions that fail the test are **rejected** — a distinct
/// outcome class from *missed* (ran, finished late or was discarded at its
/// deadline) — so the miss ratio decomposes into missed/aborted/rejected.
///
/// The safety factor is either pinned for the whole run (`Static`) or
/// driven by a windowed miss-ratio feedback controller (`Adaptive`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionConfig {
    /// One safety factor for the whole run — the original admission test.
    Static {
        /// Multiplier applied to the execution + conflict-penalty
        /// estimate (`1.0` = admit exactly when the raw estimate fits;
        /// larger values reject earlier).
        safety_factor: f64,
    },
    /// Miss-ratio feedback: the factor starts at
    /// [`AdaptiveAdmission::base_factor`] and moves with the observed
    /// windowed miss percentage.
    Adaptive(AdaptiveAdmission),
}

/// Parameters of the miss-ratio feedback admission controller.
///
/// The engine tallies commits and deadline misses over fixed windows of
/// simulated time. When a window closes with miss% above
/// `target_miss_percent`, the safety factor is multiplied by `tighten`
/// (rejecting earlier); when it closes below `hysteresis ×
/// target_miss_percent`, the factor is multiplied by `relax` (letting
/// load back in). The factor is clamped to `[base_factor, max_factor]`,
/// and the hysteresis band between the two thresholds keeps the
/// controller from oscillating on every window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveAdmission {
    /// Starting (and minimum) safety factor.
    pub base_factor: f64,
    /// Ceiling on the safety factor (`≥ base_factor`).
    pub max_factor: f64,
    /// Windowed miss percentage the controller steers toward (`> 0`).
    pub target_miss_percent: f64,
    /// Controller window length in simulated milliseconds (`> 0`).
    pub window_ms: f64,
    /// Multiplier applied when a window misses above target (`> 1`).
    pub tighten: f64,
    /// Multiplier applied when a window misses below the hysteresis
    /// threshold (`0 < relax < 1`).
    pub relax: f64,
    /// Fraction of the target below which the controller relaxes
    /// (`0 ≤ hysteresis ≤ 1`); windows between `hysteresis × target` and
    /// `target` leave the factor unchanged.
    pub hysteresis: f64,
}

impl AdaptiveAdmission {
    /// A reasonable starting point: no margin at rest, up to 8× under
    /// sustained misses, steering toward 5% windowed misses over 1-second
    /// windows.
    pub fn default_controller() -> Self {
        AdaptiveAdmission {
            base_factor: 1.0,
            max_factor: 8.0,
            target_miss_percent: 5.0,
            window_ms: 1000.0,
            tighten: 1.5,
            relax: 0.9,
            hysteresis: 0.5,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bad = |msg: String| Err(ConfigError::BadAdmission(msg));
        if !self.base_factor.is_finite() || self.base_factor <= 0.0 {
            return bad(format!(
                "base_factor {} must be positive and finite",
                self.base_factor
            ));
        }
        if !self.max_factor.is_finite() || self.max_factor < self.base_factor {
            return bad(format!(
                "max_factor {} must be ≥ base_factor {}",
                self.max_factor, self.base_factor
            ));
        }
        if !self.target_miss_percent.is_finite() || self.target_miss_percent <= 0.0 {
            return bad(format!(
                "target_miss_percent {} must be positive",
                self.target_miss_percent
            ));
        }
        if !self.window_ms.is_finite() || self.window_ms <= 0.0 {
            return bad(format!("window_ms {} must be positive", self.window_ms));
        }
        if !self.tighten.is_finite() || self.tighten <= 1.0 {
            return bad(format!("tighten {} must be > 1", self.tighten));
        }
        if !self.relax.is_finite() || self.relax <= 0.0 || self.relax >= 1.0 {
            return bad(format!("relax {} must be in (0,1)", self.relax));
        }
        if !self.hysteresis.is_finite() || !(0.0..=1.0).contains(&self.hysteresis) {
            return bad(format!("hysteresis {} must be in [0,1]", self.hysteresis));
        }
        Ok(())
    }
}

impl AdmissionConfig {
    /// Static admission with no safety margin.
    pub fn lenient() -> Self {
        AdmissionConfig::Static { safety_factor: 1.0 }
    }

    /// Adaptive admission with the default controller parameters.
    pub fn adaptive() -> Self {
        AdmissionConfig::Adaptive(AdaptiveAdmission::default_controller())
    }

    /// The safety factor the run starts with (static factor, or the
    /// adaptive controller's base).
    pub fn initial_factor(&self) -> f64 {
        match self {
            AdmissionConfig::Static { safety_factor } => *safety_factor,
            AdmissionConfig::Adaptive(a) => a.base_factor,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            AdmissionConfig::Static { safety_factor } => {
                if !safety_factor.is_finite() || *safety_factor <= 0.0 {
                    return Err(ConfigError::BadAdmission(format!(
                        "safety_factor {safety_factor} must be positive and finite"
                    )));
                }
                Ok(())
            }
            AdmissionConfig::Adaptive(a) => a.validate(),
        }
    }
}

/// Hard limits on one replication, enforced by the engine's event loop.
///
/// A run that exceeds either limit is stopped with a typed
/// [`crate::error::RunError`] instead of spinning forever — the backstop
/// that lets [`crate::runner::run_seeds_checked`] merge the surviving
/// seeds of a batch that contains a pathological one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Maximum number of calendar events the run may process.
    pub max_events: u64,
    /// Maximum simulated time the run may reach, ms.
    pub max_sim_ms: f64,
}

impl WatchdogConfig {
    /// Generous limits: far above anything a healthy run produces, low
    /// enough to stop a livelocked one promptly.
    pub fn generous(num_transactions: usize) -> Self {
        WatchdogConfig {
            max_events: (num_transactions as u64).saturating_mul(100_000).max(1),
            max_sim_ms: 1e9,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_events == 0 {
            return Err(ConfigError::BadWatchdog(
                "max_events must be positive".into(),
            ));
        }
        if !self.max_sim_ms.is_finite() || self.max_sim_ms <= 0.0 {
            return Err(ConfigError::BadWatchdog(format!(
                "max_sim_ms {} must be positive and finite",
                self.max_sim_ms
            )));
        }
        Ok(())
    }
}

/// Disk parameters (§5; `None` in [`SystemConfig`] models the main-memory
/// resident database of §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskConfig {
    /// Time for one disk access ("Disk access time (ms) 25").
    pub access_time_ms: f64,
    /// Probability that an update needs a disk access
    /// ("Disk access probability 1/10").
    pub access_prob: f64,
    /// IO queue discipline (FCFS in the paper; EDF for the
    /// `ablate-disk-sched` experiment).
    pub discipline: crate::disk::DiskDiscipline,
}

impl DiskConfig {
    /// Disk access duration.
    pub fn access_time(&self) -> SimDuration {
        SimDuration::from_ms(self.access_time_ms)
    }
}

/// Resource-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU time to roll a transaction back ("abort cost (ms)": 4 for main
    /// memory, 5 for disk resident).
    pub abort_cost_ms: f64,
    /// Disk model, if the database is disk resident.
    pub disk: Option<DiskConfig>,
    /// When `true`, rollback consumes CPU time proportional to the work the
    /// victim had performed (`abort_cost_ms` per performed update) instead
    /// of the paper's flat cost. This is the §6 ablation: "if the recovery
    /// cost is proportional to the execution of a transaction … then our
    /// approach is very attractive".
    pub proportional_recovery: bool,
    /// Livelock escalation: once a transaction has been aborted this many
    /// times, wound-wait stops aborting it — conflicting requesters wait
    /// instead — until it commits. Continuous-evaluation policies like LSF
    /// can otherwise livelock (a freshly restarted transaction always has
    /// the least slack, so victims abort each other forever). The default
    /// of 100 is far above anything the paper's policies produce (CCA and
    /// EDF-HP runs never shield), and far below livelock's thousands.
    pub starvation_threshold: u32,
    /// Disk fault-injection plan. [`FaultPlan::none()`] (the default built
    /// by every constructor) injects nothing and consumes no randomness,
    /// keeping fault-free runs byte-identical to pre-fault builds.
    pub faults: FaultPlan,
    /// Feasibility-based admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Run the split priority index's anchor-migration walks eagerly at
    /// every compute-burst start instead of deferring them until the
    /// first pick inside the burst (the batched default skips the walks
    /// entirely for bursts no pick interrupts). Results are
    /// bit-identical either way — this is the ablation/test hook the
    /// batched-vs-eager equivalence proptest toggles.
    pub eager_migrations: bool,
    /// Number of contiguous item-range shards the lock table and conflict
    /// state are partitioned into (`1..=8`). At `1` the engine runs the
    /// exact serial path; at `N > 1` conflict epochs whose candidate sets
    /// are large enough are evaluated by `N` scoped worker threads, one
    /// per shard, with a deterministic ascending-id merge at the epoch
    /// barrier — outcomes are bit-identical for every shard count.
    pub shards: usize,
}

impl SystemConfig {
    /// Abort (rollback) cost as a duration.
    pub fn abort_cost(&self) -> SimDuration {
        SimDuration::from_ms(self.abort_cost_ms)
    }
}

/// Parameters of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Mean transaction arrival rate, transactions/second (Poisson).
    pub arrival_rate_tps: f64,
    /// Number of transactions per run (1000 main memory, 300 disk).
    pub num_transactions: usize,
    /// Master seed: the type table and all stochastic draws derive from it.
    pub seed: u64,
    /// Hard event-count / sim-time limits; `None` runs unbounded.
    pub watchdog: Option<WatchdogConfig>,
    /// Test hook: a run whose seed equals this value panics immediately.
    /// Exists so the runner-hardening tests can poison exactly one
    /// replication of a batch; never set outside tests.
    pub poison_seed: Option<u64>,
}

/// Full configuration of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Resource model.
    pub system: SystemConfig,
    /// Run parameters.
    pub run: RunConfig,
}

impl SimConfig {
    /// Table 1: the main-memory base parameters.
    pub fn mm_base() -> Self {
        SimConfig {
            workload: WorkloadConfig {
                num_types: 50,
                updates_mean: 20.0,
                updates_std: 10.0,
                db_size: 30,
                min_slack: 0.2,
                max_slack: 8.0,
                read_probability: 0.0,
                high_criticality_fraction: 0.0,
                update_time_classes_ms: vec![4.0],
            },
            system: SystemConfig {
                abort_cost_ms: 4.0,
                disk: None,
                proportional_recovery: false,
                starvation_threshold: 100,
                faults: FaultPlan::none(),
                admission: None,
                eager_migrations: false,
                shards: 1,
            },
            run: RunConfig {
                arrival_rate_tps: 5.0,
                num_transactions: 1000,
                seed: 0,
                watchdog: None,
                poison_seed: None,
            },
        }
    }

    /// §4.2: the high-variance main-memory workload — 3 classes with
    /// 0.4 / 4 / 40 ms per update.
    pub fn mm_high_variance() -> Self {
        let mut cfg = Self::mm_base();
        cfg.workload.update_time_classes_ms = vec![0.4, 4.0, 40.0];
        cfg
    }

    /// Table 2: the disk-resident base parameters.
    pub fn disk_base() -> Self {
        SimConfig {
            workload: WorkloadConfig {
                num_types: 50,
                updates_mean: 20.0,
                updates_std: 10.0,
                db_size: 30,
                min_slack: 0.2,
                max_slack: 8.0,
                read_probability: 0.0,
                high_criticality_fraction: 0.0,
                update_time_classes_ms: vec![4.0],
            },
            system: SystemConfig {
                abort_cost_ms: 5.0,
                disk: Some(DiskConfig {
                    access_time_ms: 25.0,
                    access_prob: 0.1,
                    discipline: crate::disk::DiskDiscipline::Fcfs,
                }),
                proportional_recovery: false,
                starvation_threshold: 100,
                faults: FaultPlan::none(),
                admission: None,
                eager_migrations: false,
                shards: 1,
            },
            run: RunConfig {
                arrival_rate_tps: 4.0,
                num_transactions: 300,
                seed: 0,
                watchdog: None,
                poison_seed: None,
            },
        }
    }

    /// The system's theoretical CPU capacity in transactions/second,
    /// disregarding aborts (§4.1's "12.5 transactions/second" calculation).
    pub fn cpu_capacity_tps(&self) -> f64 {
        let mean_update_ms = self.workload.update_time_classes_ms.iter().sum::<f64>()
            / self.workload.update_time_classes_ms.len() as f64;
        1000.0 / (mean_update_ms * self.workload.updates_mean)
    }

    /// Expected disk utilization at a given arrival rate, disregarding
    /// aborts (§5's "62.5%" calculation). Zero for main memory.
    pub fn disk_utilization_at(&self, arrival_tps: f64) -> f64 {
        match &self.system.disk {
            None => 0.0,
            Some(d) => {
                arrival_tps * self.workload.updates_mean * d.access_prob * d.access_time_ms / 1000.0
            }
        }
    }

    /// Validate all parameters; returns the first problem found as a
    /// typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.workload.validate()?;
        if self.system.abort_cost_ms < 0.0 {
            return Err(ConfigError::NegativeAbortCost);
        }
        if self.system.starvation_threshold == 0 {
            return Err(ConfigError::ZeroStarvationThreshold);
        }
        if let Some(d) = &self.system.disk {
            if d.access_time_ms <= 0.0 {
                return Err(ConfigError::NonPositiveDiskAccessTime);
            }
            if !(0.0..=1.0).contains(&d.access_prob) {
                return Err(ConfigError::ProbabilityOutOfRange {
                    field: "disk access probability",
                    value: d.access_prob,
                });
            }
        }
        self.system
            .faults
            .validate()
            .map_err(ConfigError::BadFaultPlan)?;
        if !self.system.faults.disk_is_none() && self.system.disk.is_none() {
            return Err(ConfigError::FaultsWithoutDisk);
        }
        if let Some(a) = &self.system.admission {
            a.validate()?;
        }
        if !(1..=8).contains(&self.system.shards) {
            return Err(ConfigError::BadShardCount {
                shards: self.system.shards,
            });
        }
        if self.run.arrival_rate_tps <= 0.0 {
            return Err(ConfigError::NonPositiveArrivalRate);
        }
        if self.run.num_transactions == 0 {
            return Err(ConfigError::ZeroTransactions);
        }
        if let Some(w) = &self.run.watchdog {
            w.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let cfg = SimConfig::mm_base();
        assert_eq!(cfg.workload.num_types, 50);
        assert_eq!(cfg.workload.updates_mean, 20.0);
        assert_eq!(cfg.workload.updates_std, 10.0);
        assert_eq!(cfg.workload.db_size, 30);
        assert_eq!(cfg.workload.min_slack, 0.2);
        assert_eq!(cfg.workload.max_slack, 8.0);
        assert_eq!(cfg.system.abort_cost_ms, 4.0);
        assert!(cfg.system.disk.is_none());
        assert_eq!(cfg.run.num_transactions, 1000);
        cfg.validate().unwrap();
    }

    #[test]
    fn table2_parameters() {
        let cfg = SimConfig::disk_base();
        assert_eq!(cfg.system.abort_cost_ms, 5.0);
        let d = cfg.system.disk.unwrap();
        assert_eq!(d.access_time_ms, 25.0);
        assert_eq!(d.access_prob, 0.1);
        assert_eq!(cfg.run.num_transactions, 300);
        cfg.validate().unwrap();
    }

    #[test]
    fn paper_capacity_calculations() {
        // §4.1: 4 ms/update × 20 updates → 80 ms/txn → 12.5 tps.
        let mm = SimConfig::mm_base();
        assert!((mm.cpu_capacity_tps() - 12.5).abs() < 1e-9);
        // §4.2: mean of (0.4, 4, 40) × 20 → 296 ms → ≈3.37 tps.
        let hv = SimConfig::mm_high_variance();
        assert!((hv.cpu_capacity_tps() - 1000.0 / 296.0).abs() < 1e-9);
        // §5: at 12.5 tps the disk is 62.5% utilized.
        let disk = SimConfig::disk_base();
        assert!((disk.disk_utilization_at(12.5) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn class_assignment_round_robin() {
        let hv = SimConfig::mm_high_variance();
        assert_eq!(
            hv.workload.update_time_for_type(0),
            SimDuration::from_ms(0.4)
        );
        assert_eq!(
            hv.workload.update_time_for_type(1),
            SimDuration::from_ms(4.0)
        );
        assert_eq!(
            hv.workload.update_time_for_type(2),
            SimDuration::from_ms(40.0)
        );
        assert_eq!(
            hv.workload.update_time_for_type(3),
            SimDuration::from_ms(0.4)
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.workload.min_slack = 2.0;
        cfg.workload.max_slack = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.run.arrival_rate_tps = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::disk_base();
        cfg.system.disk = Some(DiskConfig {
            access_time_ms: 25.0,
            access_prob: 1.5,
            discipline: crate::disk::DiskDiscipline::Fcfs,
        });
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.workload.update_time_classes_ms = vec![];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_errors_are_typed() {
        use crate::error::ConfigError;

        let mut cfg = SimConfig::mm_base();
        cfg.workload.num_types = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroTypes));

        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroTransactions));

        let mut cfg = SimConfig::mm_base();
        cfg.workload.read_probability = -0.5;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ProbabilityOutOfRange {
                field: "read_probability",
                ..
            })
        ));
    }

    #[test]
    fn validation_covers_robustness_extensions() {
        use crate::error::ConfigError;
        use rtx_sim::fault::FaultPlan;

        // Faults on a main-memory config: nothing to fault.
        let mut cfg = SimConfig::mm_base();
        cfg.system.faults = FaultPlan {
            error_prob: 0.1,
            ..FaultPlan::none()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::FaultsWithoutDisk));

        // Same plan on the disk config is fine.
        let mut cfg = SimConfig::disk_base();
        cfg.system.faults = FaultPlan {
            error_prob: 0.1,
            ..FaultPlan::none()
        };
        cfg.validate().unwrap();

        // Malformed plan parameters are caught.
        let mut cfg = SimConfig::disk_base();
        cfg.system.faults = FaultPlan {
            error_prob: 2.0,
            ..FaultPlan::none()
        };
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFaultPlan(_))));

        // Admission and watchdog parameters are validated too.
        let mut cfg = SimConfig::mm_base();
        cfg.system.admission = Some(AdmissionConfig::Static { safety_factor: 0.0 });
        assert!(matches!(cfg.validate(), Err(ConfigError::BadAdmission(_))));
        cfg.system.admission = Some(AdmissionConfig::lenient());
        cfg.validate().unwrap();

        // A CPU fault section is valid without a disk (it faults the
        // processor, not the disk) but its parameters are still checked.
        let mut cfg = SimConfig::mm_base();
        cfg.system.faults.cpu = Some(rtx_sim::fault::CpuFaultPlan {
            stall_prob: 0.1,
            slow_prob: 0.0,
            slow_factor: 2.0,
            retry_budget: 2,
            backoff_base_ms: 1.0,
            backoff_cap_ms: 4.0,
            brownout: None,
        });
        cfg.validate().unwrap();
        cfg.system.faults.cpu.as_mut().unwrap().stall_prob = 1.5;
        assert!(matches!(cfg.validate(), Err(ConfigError::BadFaultPlan(_))));

        // Adaptive admission parameters are validated.
        let mut cfg = SimConfig::mm_base();
        cfg.system.admission = Some(AdmissionConfig::adaptive());
        cfg.validate().unwrap();
        let mut bad = AdaptiveAdmission::default_controller();
        bad.relax = 1.5;
        cfg.system.admission = Some(AdmissionConfig::Adaptive(bad));
        assert!(matches!(cfg.validate(), Err(ConfigError::BadAdmission(_))));

        let mut cfg = SimConfig::mm_base();
        cfg.run.watchdog = Some(WatchdogConfig {
            max_events: 0,
            max_sim_ms: 100.0,
        });
        assert!(matches!(cfg.validate(), Err(ConfigError::BadWatchdog(_))));
        cfg.run.watchdog = Some(WatchdogConfig::generous(cfg.run.num_transactions));
        cfg.validate().unwrap();
    }
}
