//! Simulation parameters, mirroring Table 1 (main memory) and Table 2
//! (disk resident) of the paper.

use rtx_sim::time::SimDuration;

/// Workload-shape parameters (shared by both resident models).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of transaction types ("Transaction type 50").
    pub num_types: usize,
    /// Mean of the per-type update count ("Update per transaction (mean)").
    pub updates_mean: f64,
    /// Standard deviation of the update count.
    pub updates_std: f64,
    /// Number of objects in the database ("Database size").
    pub db_size: u64,
    /// Lower bound of slack as a fraction of the resource time
    /// ("Min-slack as fraction of total runtime", 20% → 0.2).
    pub min_slack: f64,
    /// Upper bound of slack (800% → 8.0).
    pub max_slack: f64,
    /// Probability that an update only *reads* its item (shared lock).
    /// The paper's model is write-only (`0.0`, §3.1); non-zero values
    /// drive the §6 shared-lock extension experiment.
    pub read_probability: f64,
    /// Fraction of instances drawn as high-criticality (class 1). The
    /// paper assumes "same criticalness" (`0.0`); non-zero values drive
    /// the §6 "multiple criticalness" extension experiment.
    pub high_criticality_fraction: f64,
    /// Per-update CPU times, one per *class* of transaction types.
    ///
    /// The base experiments use a single class of 4 ms
    /// ("Computation/update (ms) 4"); the high-variance experiment (§4.2)
    /// classifies the 50 types into 3 classes with 0.4 / 4 / 40 ms. Types
    /// are assigned to classes round-robin by type index.
    pub update_time_classes_ms: Vec<f64>,
}

impl WorkloadConfig {
    /// The per-update CPU time of type `type_index`.
    pub fn update_time_for_type(&self, type_index: usize) -> SimDuration {
        let class = type_index % self.update_time_classes_ms.len();
        SimDuration::from_ms(self.update_time_classes_ms[class])
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_types == 0 {
            return Err("num_types must be positive".into());
        }
        if self.db_size == 0 {
            return Err("db_size must be positive".into());
        }
        if self.updates_mean <= 0.0 {
            return Err("updates_mean must be positive".into());
        }
        if self.updates_std < 0.0 {
            return Err("updates_std cannot be negative".into());
        }
        if self.min_slack < 0.0 || self.max_slack < self.min_slack {
            return Err("slack range must satisfy 0 <= min <= max".into());
        }
        if !(0.0..=1.0).contains(&self.read_probability) {
            return Err("read_probability must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.high_criticality_fraction) {
            return Err("high_criticality_fraction must be in [0,1]".into());
        }
        if self.update_time_classes_ms.is_empty()
            || self.update_time_classes_ms.iter().any(|&t| t <= 0.0)
        {
            return Err("update time classes must be positive".into());
        }
        Ok(())
    }
}

/// Disk parameters (§5; `None` in [`SystemConfig`] models the main-memory
/// resident database of §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskConfig {
    /// Time for one disk access ("Disk access time (ms) 25").
    pub access_time_ms: f64,
    /// Probability that an update needs a disk access
    /// ("Disk access probability 1/10").
    pub access_prob: f64,
    /// IO queue discipline (FCFS in the paper; EDF for the
    /// `ablate-disk-sched` experiment).
    pub discipline: crate::disk::DiskDiscipline,
}

impl DiskConfig {
    /// Disk access duration.
    pub fn access_time(&self) -> SimDuration {
        SimDuration::from_ms(self.access_time_ms)
    }
}

/// Resource-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU time to roll a transaction back ("abort cost (ms)": 4 for main
    /// memory, 5 for disk resident).
    pub abort_cost_ms: f64,
    /// Disk model, if the database is disk resident.
    pub disk: Option<DiskConfig>,
    /// When `true`, rollback consumes CPU time proportional to the work the
    /// victim had performed (`abort_cost_ms` per performed update) instead
    /// of the paper's flat cost. This is the §6 ablation: "if the recovery
    /// cost is proportional to the execution of a transaction … then our
    /// approach is very attractive".
    pub proportional_recovery: bool,
    /// Livelock escalation: once a transaction has been aborted this many
    /// times, wound-wait stops aborting it — conflicting requesters wait
    /// instead — until it commits. Continuous-evaluation policies like LSF
    /// can otherwise livelock (a freshly restarted transaction always has
    /// the least slack, so victims abort each other forever). The default
    /// of 100 is far above anything the paper's policies produce (CCA and
    /// EDF-HP runs never shield), and far below livelock's thousands.
    pub starvation_threshold: u32,
}

impl SystemConfig {
    /// Abort (rollback) cost as a duration.
    pub fn abort_cost(&self) -> SimDuration {
        SimDuration::from_ms(self.abort_cost_ms)
    }
}

/// Parameters of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Mean transaction arrival rate, transactions/second (Poisson).
    pub arrival_rate_tps: f64,
    /// Number of transactions per run (1000 main memory, 300 disk).
    pub num_transactions: usize,
    /// Master seed: the type table and all stochastic draws derive from it.
    pub seed: u64,
}

/// Full configuration of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Resource model.
    pub system: SystemConfig,
    /// Run parameters.
    pub run: RunConfig,
}

impl SimConfig {
    /// Table 1: the main-memory base parameters.
    pub fn mm_base() -> Self {
        SimConfig {
            workload: WorkloadConfig {
                num_types: 50,
                updates_mean: 20.0,
                updates_std: 10.0,
                db_size: 30,
                min_slack: 0.2,
                max_slack: 8.0,
                read_probability: 0.0,
                high_criticality_fraction: 0.0,
                update_time_classes_ms: vec![4.0],
            },
            system: SystemConfig {
                abort_cost_ms: 4.0,
                disk: None,
                proportional_recovery: false,
                starvation_threshold: 100,
            },
            run: RunConfig {
                arrival_rate_tps: 5.0,
                num_transactions: 1000,
                seed: 0,
            },
        }
    }

    /// §4.2: the high-variance main-memory workload — 3 classes with
    /// 0.4 / 4 / 40 ms per update.
    pub fn mm_high_variance() -> Self {
        let mut cfg = Self::mm_base();
        cfg.workload.update_time_classes_ms = vec![0.4, 4.0, 40.0];
        cfg
    }

    /// Table 2: the disk-resident base parameters.
    pub fn disk_base() -> Self {
        SimConfig {
            workload: WorkloadConfig {
                num_types: 50,
                updates_mean: 20.0,
                updates_std: 10.0,
                db_size: 30,
                min_slack: 0.2,
                max_slack: 8.0,
                read_probability: 0.0,
                high_criticality_fraction: 0.0,
                update_time_classes_ms: vec![4.0],
            },
            system: SystemConfig {
                abort_cost_ms: 5.0,
                disk: Some(DiskConfig {
                    access_time_ms: 25.0,
                    access_prob: 0.1,
                    discipline: crate::disk::DiskDiscipline::Fcfs,
                }),
                proportional_recovery: false,
                starvation_threshold: 100,
            },
            run: RunConfig {
                arrival_rate_tps: 4.0,
                num_transactions: 300,
                seed: 0,
            },
        }
    }

    /// The system's theoretical CPU capacity in transactions/second,
    /// disregarding aborts (§4.1's "12.5 transactions/second" calculation).
    pub fn cpu_capacity_tps(&self) -> f64 {
        let mean_update_ms = self.workload.update_time_classes_ms.iter().sum::<f64>()
            / self.workload.update_time_classes_ms.len() as f64;
        1000.0 / (mean_update_ms * self.workload.updates_mean)
    }

    /// Expected disk utilization at a given arrival rate, disregarding
    /// aborts (§5's "62.5%" calculation). Zero for main memory.
    pub fn disk_utilization_at(&self, arrival_tps: f64) -> f64 {
        match &self.system.disk {
            None => 0.0,
            Some(d) => {
                arrival_tps * self.workload.updates_mean * d.access_prob * d.access_time_ms / 1000.0
            }
        }
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.workload.validate()?;
        if self.system.abort_cost_ms < 0.0 {
            return Err("abort cost cannot be negative".into());
        }
        if self.system.starvation_threshold == 0 {
            return Err("starvation_threshold must be positive".into());
        }
        if let Some(d) = &self.system.disk {
            if d.access_time_ms <= 0.0 {
                return Err("disk access time must be positive".into());
            }
            if !(0.0..=1.0).contains(&d.access_prob) {
                return Err("disk access probability must be in [0,1]".into());
            }
        }
        if self.run.arrival_rate_tps <= 0.0 {
            return Err("arrival rate must be positive".into());
        }
        if self.run.num_transactions == 0 {
            return Err("num_transactions must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let cfg = SimConfig::mm_base();
        assert_eq!(cfg.workload.num_types, 50);
        assert_eq!(cfg.workload.updates_mean, 20.0);
        assert_eq!(cfg.workload.updates_std, 10.0);
        assert_eq!(cfg.workload.db_size, 30);
        assert_eq!(cfg.workload.min_slack, 0.2);
        assert_eq!(cfg.workload.max_slack, 8.0);
        assert_eq!(cfg.system.abort_cost_ms, 4.0);
        assert!(cfg.system.disk.is_none());
        assert_eq!(cfg.run.num_transactions, 1000);
        cfg.validate().unwrap();
    }

    #[test]
    fn table2_parameters() {
        let cfg = SimConfig::disk_base();
        assert_eq!(cfg.system.abort_cost_ms, 5.0);
        let d = cfg.system.disk.unwrap();
        assert_eq!(d.access_time_ms, 25.0);
        assert_eq!(d.access_prob, 0.1);
        assert_eq!(cfg.run.num_transactions, 300);
        cfg.validate().unwrap();
    }

    #[test]
    fn paper_capacity_calculations() {
        // §4.1: 4 ms/update × 20 updates → 80 ms/txn → 12.5 tps.
        let mm = SimConfig::mm_base();
        assert!((mm.cpu_capacity_tps() - 12.5).abs() < 1e-9);
        // §4.2: mean of (0.4, 4, 40) × 20 → 296 ms → ≈3.37 tps.
        let hv = SimConfig::mm_high_variance();
        assert!((hv.cpu_capacity_tps() - 1000.0 / 296.0).abs() < 1e-9);
        // §5: at 12.5 tps the disk is 62.5% utilized.
        let disk = SimConfig::disk_base();
        assert!((disk.disk_utilization_at(12.5) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn class_assignment_round_robin() {
        let hv = SimConfig::mm_high_variance();
        assert_eq!(
            hv.workload.update_time_for_type(0),
            SimDuration::from_ms(0.4)
        );
        assert_eq!(
            hv.workload.update_time_for_type(1),
            SimDuration::from_ms(4.0)
        );
        assert_eq!(
            hv.workload.update_time_for_type(2),
            SimDuration::from_ms(40.0)
        );
        assert_eq!(
            hv.workload.update_time_for_type(3),
            SimDuration::from_ms(0.4)
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.workload.min_slack = 2.0;
        cfg.workload.max_slack = 1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.run.arrival_rate_tps = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::disk_base();
        cfg.system.disk = Some(DiskConfig {
            access_time_ms: 25.0,
            access_prob: 1.5,
            discipline: crate::disk::DiskDiscipline::Fcfs,
        });
        assert!(cfg.validate().is_err());

        let mut cfg = SimConfig::mm_base();
        cfg.workload.update_time_classes_ms = vec![];
        assert!(cfg.validate().is_err());
    }
}
