//! `rtx-rtdb` — the real-time database simulator the paper's evaluation
//! runs on (§4 main memory, §5 disk resident).
//!
//! The crate is policy-agnostic: it defines the [`policy::Policy`] trait
//! and everything needed to execute a workload under any priority
//! assignment — the concrete CCA / EDF-HP / LSF policies live in
//! `rtx-core`. The pieces:
//!
//! * [`config`] — Table 1 / Table 2 parameter sets and validation, plus
//!   the robustness extensions (fault plan, admission control, watchdog);
//! * [`error`] — typed configuration ([`error::ConfigError`]) and run
//!   ([`error::RunError`]) failures;
//! * [`workload`] — transaction types, Poisson arrivals, deadline
//!   assignment (`deadline = arrival + resource_time × (1 + slack)`);
//! * [`txn`] — run-time transaction state (pipeline stage, locks held,
//!   effective service time, restarts);
//! * [`components`] — the lane-split component event loop (scheduler,
//!   CPU, disk as components on a global min-heap);
//! * [`locks`] — the write-lock table (no lock waits under HP);
//! * [`disk`] — the single FCFS disk;
//! * [`engine`] — the event-driven execution engine with HP conflict
//!   resolution, preemption, IO-wait scheduling and abort/restart;
//! * [`metrics`] — miss percent, mean lateness, restarts per transaction,
//!   utilization, P-list length;
//! * [`runner`] — multi-seed replication and the paper's improvement
//!   formula.
//!
//! # Example
//!
//! ```
//! use rtx_rtdb::config::SimConfig;
//! use rtx_rtdb::engine::run_simulation;
//! use rtx_rtdb::policy::{Policy, Priority, SystemView};
//! use rtx_rtdb::txn::Transaction;
//!
//! struct Edf;
//! impl Policy for Edf {
//!     fn name(&self) -> &str { "EDF-HP" }
//!     fn priority(&self, t: &Transaction, _: &SystemView<'_>) -> Priority {
//!         Priority(-t.deadline.as_ms())
//!     }
//! }
//!
//! let mut cfg = SimConfig::mm_base();
//! cfg.run.num_transactions = 50;
//! let summary = run_simulation(&cfg, &Edf);
//! assert_eq!(summary.committed, 50);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
pub mod components;
pub mod config;
pub mod disk;
pub mod engine;
pub mod error;
pub mod locks;
pub mod metrics;
pub mod policy;
pub mod runner;
pub mod sched;
pub mod source;
pub mod trace;
pub mod txn;
pub mod workload;

pub use config::{
    AdaptiveAdmission, AdmissionConfig, DiskConfig, RunConfig, SimConfig, SystemConfig,
    WatchdogConfig, WorkloadConfig,
};
pub use disk::DiskDiscipline;
pub use engine::{
    run_simulation, run_simulation_checked, run_simulation_from, run_simulation_from_mode,
    run_simulation_profiled, run_simulation_profiled_with_mode, run_simulation_traced,
    run_simulation_validated, run_simulation_with_mode, Completion, CompletionKind, StepEngine,
};
pub use error::{ConfigError, RunError};
pub use metrics::{RunSummary, SchedStats};
pub use policy::{PartiallyExecuted, Policy, Priority, PriorityDeps, SystemView};
pub use runner::{
    aggregate, improvement_percent, run_one, run_one_checked, run_replications,
    run_replications_checked, run_replications_with, run_seeds, run_seeds_checked,
    AggregateSummary, BatchSummary, Parallelism, ReplicationOptions, ReplicationTimer,
};
pub use sched::CacheMode;
pub use source::{ReplaySource, TxnSource};
pub use trace::{Trace, TraceEvent, TraceRecord};
pub use txn::{DecisionSpec, Stage, Transaction, TxnId, TxnState};
pub use workload::{ArrivalGenerator, TxnType, TypeTable};
