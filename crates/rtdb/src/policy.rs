//! The scheduling-policy interface.
//!
//! The engine is policy-agnostic: at every scheduling point it asks the
//! [`Policy`] for each active transaction's priority and dispatches the
//! highest-priority runnable transaction (or, when that transaction is
//! blocked on IO, the best *compatible* ready transaction if the policy
//! enables the paper's `IOwait-schedule` step). Concrete policies — CCA,
//! EDF-HP, EDF-Wait, LSF, FCFS — live in the `rtx-core` crate.

use std::cmp::Ordering;

use rtx_sim::time::{SimDuration, SimTime};

use crate::sched::ConflictAccel;
use crate::txn::{Transaction, TxnId};

/// A scheduling priority. Higher compares greater. Total order (ties are
/// broken by the engine on arrival time, then id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority(pub f64);

impl Priority {
    /// The least possible priority.
    pub const MIN: Priority = Priority(f64::NEG_INFINITY);
}

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert!(!self.0.is_nan() && !other.0.is_nan(), "NaN priority");
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Which inputs a policy's [`Policy::priority`] is a function of — the
/// engine's priority-cache invalidation hint.
///
/// Declaring a *wider* dependency than the policy actually has is always
/// safe (it only costs recomputations); declaring a narrower one breaks
/// bit-identity and is caught by the engine's `Verify` cache mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriorityDeps {
    /// Depends only on the transaction's immutable attributes (deadline,
    /// arrival, criticality). EDF-HP, FCFS: computed once, never again.
    Static,
    /// Depends on the current time and the transaction's own mutable
    /// state (progress, service), but not on other transactions. LSF.
    TimeAndSelf,
    /// Depends on time, own state, *and* the system's conflict state.
    /// CCA, EDF-Wait. Contract, part 1 (shape): the priority of `T` may
    /// depend on other transactions **only** through the set of partials
    /// unsafe w.r.t. `T` (`is_unsafe_with`) and those partials'
    /// effective service / abort cost. Contract, part 2
    /// (fall-monotonicity): conflict events other than a partial's
    /// *clear* — an access-set growth, effective service accruing with
    /// the clock — may only **lower** the priority, never raise it
    /// (penalty terms are nonnegative and grow monotonically). Contract,
    /// part 3 (own state): of `T`'s own mutable state, only a narrowing
    /// of `T`'s `might_access` may *raise* `T`'s priority; its own
    /// service and progress must not enter its own priority at all. The
    /// engine leans on all three: a partial's clear repairs the affected
    /// cached values in place by the policy's
    /// [`Policy::conflict_clear_raise`] bound, a narrowing eagerly
    /// refreshes `T`'s own entry, and every other event leaves cached
    /// values and index keys as stale-high upper bounds that the lazy
    /// pick path revalidates at the top. A policy whose priority can
    /// *rise* on growth or with time must declare
    /// [`PriorityDeps::Volatile`] instead.
    ///
    /// `runner_fall_rate` declares, in priority units per millisecond of
    /// the *running* transaction's uninterrupted compute time, the exact
    /// rate at which the priority of every transaction unsafe w.r.t. that
    /// runner falls while the runner's effective service accrues (zero
    /// for policies whose penalty ignores service, e.g. EDF-Wait). The
    /// engine uses it to place runner-conflicting index keys in a
    /// *timed* half whose keys share a global fall offset: the keys then
    /// stay put between structural events instead of being demoted pick
    /// by pick. Declaring the rate only affects which half a key lives
    /// in and how its stored bound is folded — a wrong rate loses the
    /// upper-bound property and is caught by `Verify` mode.
    ///
    /// The engine additionally *batches* the timed-half membership walk:
    /// consecutive compute bursts by the same runner reuse the membership
    /// the first burst's walk established, re-walking only after an event
    /// that can shrink an unsafe set (a partial's clear, a might-access
    /// narrowing). Reuse is sound because between walks a runner's sets
    /// only grow: a conflicting key the reused membership misses either
    /// enrolls into the timed half at its next cache write (if the
    /// falling band can still reach it) or stays in the free half,
    /// stale-high by exactly the fall the walk would have tracked —
    /// still an upper bound either way (falls only lower the exact
    /// value, see part 2), so validated picks are unaffected.
    ConflictState {
        /// Per-ms fall rate of runner-unsafe priorities (≥ 0, finite).
        runner_fall_rate: f64,
    },
    /// No cacheable structure declared; recompute at every use. The
    /// conservative default for policies written before this hint
    /// existed.
    Volatile,
}

/// A read-only view of the system handed to policies when they evaluate a
/// transaction's priority.
///
/// Construct with [`SystemView::new`]; the engine additionally threads an
/// internal conflict accelerator through it so `penalty_of_conflict`'s
/// pair tests hit the memoized path transparently.
pub struct SystemView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// All transaction slots (committed ones included; filter as needed).
    pub txns: &'a [Transaction],
    /// CPU time required to roll back one transaction (the `rollback_t`
    /// term of the penalty of conflict).
    pub abort_cost: SimDuration,
    /// The engine's incremental conflict state, when running cached.
    accel: Option<&'a ConflictAccel>,
}

impl<'a> SystemView<'a> {
    /// A plain view with no acceleration state: every P-list walk scans
    /// `txns` and every pair test recomputes from the transactions' sets.
    pub fn new(now: SimTime, txns: &'a [Transaction], abort_cost: SimDuration) -> Self {
        SystemView {
            now,
            txns,
            abort_cost,
            accel: None,
        }
    }

    /// A view backed by the engine's conflict accelerator: P-list walks
    /// iterate the maintained list and pair tests are memoized.
    pub(crate) fn with_accel(
        now: SimTime,
        txns: &'a [Transaction],
        abort_cost: SimDuration,
        accel: &'a ConflictAccel,
    ) -> Self {
        SystemView {
            now,
            txns,
            abort_cost,
            accel: Some(accel),
        }
    }

    /// The paper's *P list*: transactions that have partially executed
    /// (hold locks that would be destroyed by an abort), excluding `of`.
    ///
    /// Yields in ascending id order either way: the maintained P-list is
    /// kept id-sorted, and a scan of `txns` (slots are in id = arrival
    /// order) visits the same transactions in the same order, so cached
    /// and fresh evaluations are bit-identical.
    pub fn partially_executed(&self, of: TxnId) -> PartiallyExecuted<'a> {
        let inner = match self.accel {
            Some(a) => PlistIter::Ids {
                ids: a.plist().iter(),
                txns: self.txns,
                of,
            },
            None => PlistIter::Scan {
                iter: self.txns.iter(),
                of,
            },
        };
        PartiallyExecuted { inner }
    }

    /// Is `partial` unsafe (or conditionally unsafe) with respect to
    /// `candidate`? Memoized through the engine's pair cache when this
    /// view carries one; otherwise computed from the transactions' sets.
    /// Identical verdicts either way — see [`crate::txn::is_unsafe_with`].
    pub fn is_unsafe_with(&self, partial: &Transaction, candidate: &Transaction) -> bool {
        match self.accel {
            Some(a) => a.is_unsafe(partial, candidate),
            None => crate::txn::is_unsafe_with(partial, candidate),
        }
    }

    /// Symmetric static conflict test (`conflicts_with`), memoized when
    /// this view carries the engine's pair cache.
    pub fn conflicts(&self, a: &Transaction, b: &Transaction) -> bool {
        match self.accel {
            Some(acc) => acc.conflicts(a, b),
            None => a.conflicts_with(b),
        }
    }
}

enum PlistIter<'a> {
    Scan {
        iter: std::slice::Iter<'a, Transaction>,
        of: TxnId,
    },
    Ids {
        ids: std::slice::Iter<'a, TxnId>,
        txns: &'a [Transaction],
        of: TxnId,
    },
}

/// Iterator over the P-list (see [`SystemView::partially_executed`]).
pub struct PartiallyExecuted<'a> {
    inner: PlistIter<'a>,
}

impl<'a> Iterator for PartiallyExecuted<'a> {
    type Item = &'a Transaction;

    fn next(&mut self) -> Option<&'a Transaction> {
        match &mut self.inner {
            PlistIter::Scan { iter, of } => iter.find(|t| t.id != *of && t.is_partially_executed()),
            PlistIter::Ids { ids, txns, of } => {
                for &id in ids.by_ref() {
                    if id == *of {
                        continue;
                    }
                    let t = &txns[id.0 as usize];
                    debug_assert!(
                        t.is_partially_executed(),
                        "maintained P-list out of sync for {id}"
                    );
                    return Some(t);
                }
                None
            }
        }
    }
}

/// A real-time transaction scheduling policy: one priority assignment
/// plus the choice of whether `IOwait-schedule` restricts execution during
/// IO waits to conflict-free transactions.
///
/// # Thread safety
///
/// `Policy: Sync` so one `&dyn Policy` can be shared by the replication
/// runner's worker threads (each seeded run borrows the same policy
/// concurrently). The engine only ever takes `&self`, so a policy must be
/// safe to *read* from many threads; in practice every policy in
/// `rtx-core` is a plain value type (a few `f64` weights at most) and is
/// trivially `Sync`. A policy that wants interior mutable state (caches,
/// statistics) must synchronise it itself — and must keep `priority` a
/// pure function of `(txn, view)` per run, or cross-replication
/// determinism is lost.
pub trait Policy: Sync {
    /// Short policy name for reports ("CCA", "EDF-HP", …).
    fn name(&self) -> &str;

    /// The priority of `txn` given the current system state. Called at
    /// every scheduling point for every active transaction (continuous
    /// evaluation); policies that only use static information are free to
    /// ignore `view`.
    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority;

    /// If `true`, the engine's IO-wait scheduling only considers ready
    /// transactions that neither conflict nor conditionally conflict with
    /// any partially executed transaction (§3.3.3 `IOwait-schedule`); if
    /// `false`, the highest-priority ready transaction runs regardless
    /// (EDF-HP's behaviour, which produces noncontributing executions).
    fn iowait_restrict(&self) -> bool {
        false
    }

    /// What [`Policy::priority`] depends on — the engine's cache
    /// invalidation hint. The default, [`PriorityDeps::Volatile`],
    /// disables caching for this policy and is always correct; policies
    /// should override it with the narrowest honest answer.
    fn depends_on(&self) -> PriorityDeps {
        PriorityDeps::Volatile
    }

    /// For [`PriorityDeps::ConflictState`] policies: an upper bound (in
    /// priority units) on how much *any* other transaction's priority can
    /// rise when `cleared`'s access sets clear, evaluated **before** the
    /// clearing (so `cleared`'s effective service is still the one the
    /// victims' penalties charged).
    ///
    /// The engine uses this to repair affected index keys in place — old
    /// key plus this bound stays an upper bound on the post-clear
    /// priority, no recomputation needed. Soundness only requires a value
    /// `>=` the true rise; tightness only buys fewer revalidations at the
    /// next pick. The default, `+∞`, is always sound (the repaired keys
    /// float to the top and revalidate exactly) and is what a
    /// `ConflictState` policy gets if it declines to override. Policies
    /// with other dependency classes never see this called.
    fn conflict_clear_raise(&self, cleared: &Transaction, view: &SystemView<'_>) -> f64 {
        let _ = (cleared, view);
        f64::INFINITY
    }

    /// For [`PriorityDeps::TimeAndSelf`] policies: the time-invariant
    /// part `K` of the priority, such that
    /// `priority(txn, now) ≈ now_ms + K(txn)` up to floating-point
    /// rounding in the policy's own evaluation. `K` may depend on the
    /// transaction's mutable own state (progress, restarts) but not on
    /// the clock, so it only changes at events the engine already
    /// observes. When a policy returns `Some`, the engine keys a
    /// slack-ordered pick index on `K` — candidates keep their relative
    /// order as time advances, so picks validate the top instead of
    /// rescanning — and revalidates each pick exactly (the scan remains
    /// the `Verify`-mode oracle). `None` (the default) keeps the scan
    /// path. LSF's slack `-(d - now - estimate)` decomposes this way;
    /// a time/self policy with a nonlinear clock term does not and must
    /// return `None`.
    fn time_invariant_key(&self, txn: &Transaction) -> Option<f64> {
        let _ = txn;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::{Stage, TxnState};
    use rtx_preanalysis::sets::DataSet;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::ItemId;

    fn mk_txn(id: u32, accessed: &[u32]) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(100.0),
            resource_time: SimDuration::from_ms(80.0),
            items: vec![ItemId(0)],
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: DataSet::from_items([ItemId(0)]),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: accessed.iter().map(|&i| ItemId(i)).collect(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn priority_total_order() {
        let a = Priority(-10.0);
        let b = Priority(-5.0);
        assert!(b > a, "later deadline (more negative) is lower priority");
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(Priority::MIN < a);
        let mut v = vec![b, Priority::MIN, a];
        v.sort();
        assert_eq!(v, vec![Priority::MIN, a, b]);
    }

    #[test]
    fn partially_executed_filters_self_and_fresh() {
        let txns = vec![mk_txn(0, &[1]), mk_txn(1, &[]), mk_txn(2, &[2])];
        let view = SystemView::new(SimTime::ZERO, &txns, SimDuration::from_ms(4.0));
        let plist: Vec<u32> = view.partially_executed(TxnId(0)).map(|t| t.id.0).collect();
        assert_eq!(plist, vec![2], "self (0) and lock-free (1) excluded");
        let plist: Vec<u32> = view.partially_executed(TxnId(9)).map(|t| t.id.0).collect();
        assert_eq!(plist, vec![0, 2]);
    }

    #[test]
    fn committed_txns_not_partially_executed() {
        let mut t = mk_txn(0, &[1]);
        t.state = TxnState::Committed;
        let txns = vec![t];
        let view = SystemView::new(SimTime::ZERO, &txns, SimDuration::ZERO);
        assert_eq!(view.partially_executed(TxnId(9)).count(), 0);
    }
}
