//! Replication runner: "We ran the simulation with the same parameter for
//! 10 different random number seeds … For each algorithm the result were
//! collected and averaged over the 10 runs" (§4; 30 runs in §5).
//!
//! Replications are **independent by construction** — each run derives
//! every RNG stream from its own seed — so they can execute on any number
//! of worker threads. Determinism is preserved by separating the two
//! phases:
//!
//! 1. [`run_one`] executes a single seeded replication (pure with respect
//!    to the seed: no shared state, any thread);
//! 2. the per-seed [`RunSummary`] values are folded into
//!    [`AggregateSummary`] **in seed order**, so the floating-point
//!    reductions see the same operand order regardless of
//!    [`Parallelism`] — serial and parallel aggregates are bit-identical.
//!
//! [`run_replications`] keeps the historical serial-by-default signature;
//! [`run_replications_with`] adds the [`ReplicationOptions`] knob.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtx_sim::stats::{Estimate, Replications};

use crate::config::SimConfig;
use crate::engine::{run_simulation_checked_mode, run_simulation_with_mode};
use crate::error::RunError;
use crate::metrics::RunSummary;
use crate::policy::Policy;
use crate::CacheMode;

/// How a batch of replications is spread across OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every replication on the calling thread, in seed order.
    Serial,
    /// Fan out across exactly this many worker threads (values of 0 and 1
    /// both mean the serial path).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
}

impl Parallelism {
    /// The number of worker threads this setting resolves to for a batch
    /// of `reps` replications (never more workers than replications).
    pub fn workers(self, reps: usize) -> usize {
        let raw = match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        raw.min(reps.max(1))
    }
}

/// Wall-clock accounting for a batch of replications, shared across
/// worker threads.
///
/// `busy` accumulates the per-replication wall time summed over all
/// workers — an estimate of what a serial execution would have cost — so
/// `busy / wall` estimates the parallel speedup without rerunning the
/// batch serially.
#[derive(Debug, Default)]
pub struct ReplicationTimer {
    busy_nanos: AtomicU64,
    runs: AtomicU64,
}

impl ReplicationTimer {
    /// A fresh timer with zero accumulated time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one replication that took `elapsed` of worker wall time.
    pub fn record(&self, elapsed: Duration) {
        self.busy_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Total busy time summed across workers.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Number of replications recorded.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }
}

/// Options controlling how [`run_replications_with`] (and the generic
/// [`run_seeds`]) execute a replication batch.
///
/// The options never affect *what* is computed — only on how many threads
/// and whether timing is collected. (`shards` is the one exception in
/// mechanism, not in outcome: it overrides `cfg.system.shards` for every
/// replication, and sharded runs are bit-identical to serial ones.)
#[derive(Debug, Clone, Default)]
pub struct ReplicationOptions {
    /// Worker-thread policy.
    pub parallelism: Parallelism,
    /// Optional shared timer; every completed replication adds its wall
    /// time, regardless of which worker ran it.
    pub timer: Option<Arc<ReplicationTimer>>,
    /// Overrides `cfg.system.shards` for every replication when set
    /// (the `--shards` experiment flag).
    pub shards: Option<usize>,
}

impl ReplicationOptions {
    /// Serial execution (the historical behaviour).
    pub fn serial() -> Self {
        ReplicationOptions {
            parallelism: Parallelism::Serial,
            timer: None,
            shards: None,
        }
    }

    /// Fan out across `n` worker threads.
    pub fn threads(n: usize) -> Self {
        ReplicationOptions {
            parallelism: Parallelism::Threads(n),
            timer: None,
            shards: None,
        }
    }

    /// One worker per available hardware thread.
    pub fn auto() -> Self {
        ReplicationOptions {
            parallelism: Parallelism::Auto,
            timer: None,
            shards: None,
        }
    }

    /// Attach a shared [`ReplicationTimer`].
    pub fn with_timer(mut self, timer: Arc<ReplicationTimer>) -> Self {
        self.timer = Some(timer);
        self
    }

    /// Override the engine shard count for every replication.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The configuration a replication should actually run: `cfg` with the
    /// shard override applied (borrowed unchanged when there is none).
    fn effective_cfg<'c>(&self, cfg: &'c SimConfig) -> std::borrow::Cow<'c, SimConfig> {
        match self.shards {
            None => std::borrow::Cow::Borrowed(cfg),
            Some(n) => {
                let mut c = cfg.clone();
                c.system.shards = n;
                std::borrow::Cow::Owned(c)
            }
        }
    }
}

/// Across-replication averages of every [`RunSummary`] field the paper
/// plots, each with a 95% confidence half-width.
#[derive(Debug, Clone)]
pub struct AggregateSummary {
    /// Policy name the runs used.
    pub policy: String,
    /// Number of replications.
    pub replications: usize,
    /// Miss percentage.
    pub miss_percent: Estimate,
    /// Mean tardiness over all transactions, ms.
    pub mean_lateness_ms: Estimate,
    /// Mean signed lateness, ms.
    pub mean_signed_lateness_ms: Estimate,
    /// Restarts per transaction.
    pub restarts_per_txn: Estimate,
    /// Noncontributing (secondary-victim) aborts per run.
    pub noncontributing_aborts: Estimate,
    /// Time-averaged P-list length.
    pub mean_plist_len: Estimate,
    /// CPU utilization.
    pub cpu_utilization: Estimate,
    /// Disk utilization.
    pub disk_utilization: Estimate,
    /// Mean response time, ms.
    pub mean_response_ms: Estimate,
    /// Share of transactions rejected at admission (0 when admission is
    /// off).
    pub rejected_percent: Estimate,
    /// Injected transient IO errors per run (0 under `FaultPlan::none()`).
    pub injected_io_faults: Estimate,
    /// Disk-transfer retries per run.
    pub io_retries: Estimate,
    /// Retry-budget-exhaustion aborts per run.
    pub io_exhausted_aborts: Estimate,
    /// Disk-hold time wasted by doomed transactions per run, ms.
    pub wasted_disk_hold_ms: Estimate,
}

/// Execute replication `rep` of `cfg` under `policy`: one independent
/// simulation run whose seed is `cfg.run.seed + rep` (wrapping).
///
/// Pure with respect to `(cfg, policy, rep)` — it touches no shared
/// mutable state, so batches of `run_one` calls may execute concurrently.
pub fn run_one(cfg: &SimConfig, policy: &dyn Policy, rep: usize) -> RunSummary {
    let mut run_cfg = cfg.clone();
    run_cfg.run.seed = cfg.run.seed.wrapping_add(rep as u64);
    run_simulation_with_mode(&run_cfg, policy, cache_mode_override())
}

/// Cache-mode override for whole-suite sweeps: `RTX_CACHE_MODE=recompute`
/// replays every replication through the always-recompute oracle,
/// `RTX_CACHE_MODE=verify` through the self-asserting verifier; unset (or
/// `incremental`) is the production engine. Published tables are
/// bit-identical under all three — regenerating `results/*.csv` under
/// each value is the whole-suite equivalence gate.
///
/// # Panics
/// Panics on an unrecognized value: a typo must not silently fall back
/// to the production engine mid-gate.
fn cache_mode_override() -> CacheMode {
    match std::env::var("RTX_CACHE_MODE") {
        Err(_) => CacheMode::Incremental,
        Ok(v) => match v.as_str() {
            "" | "incremental" => CacheMode::Incremental,
            "recompute" => CacheMode::AlwaysRecompute,
            "verify" => CacheMode::Verify,
            other => panic!("unknown RTX_CACHE_MODE: {other:?}"),
        },
    }
}

/// As [`run_one`], but every failure mode is typed: an invalid
/// configuration, a tripped watchdog, and — via the `catch_unwind` wrapper
/// in [`run_seeds_checked`] — a panic all come back as a
/// [`RunError`] instead of killing the batch.
pub fn run_one_checked(
    cfg: &SimConfig,
    policy: &dyn Policy,
    rep: usize,
) -> Result<RunSummary, RunError> {
    let mut run_cfg = cfg.clone();
    run_cfg.run.seed = cfg.run.seed.wrapping_add(rep as u64);
    run_simulation_checked_mode(&run_cfg, policy, cache_mode_override())
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Order-preserving parallel map over seed indices `0..reps`.
///
/// `f(rep)` runs once per index on some worker thread; the returned `Vec`
/// is always in index order, so any order-sensitive fold downstream (CI
/// estimates, CSV rows, floating-point sums) sees results exactly as a
/// serial loop would have produced them. Workers pull indices from a
/// shared counter, so uneven per-seed costs balance automatically.
///
/// This is the engine under [`run_replications_with`]; experiment
/// harnesses with bespoke per-seed work (custom workloads, per-class
/// metrics) use it directly.
pub fn run_seeds<T, F>(reps: usize, opts: &ReplicationOptions, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let timed = |rep: usize| -> T {
        let start = Instant::now();
        let out = f(rep);
        if let Some(timer) = &opts.timer {
            timer.record(start.elapsed());
        }
        out
    };

    let workers = opts.parallelism.workers(reps);
    if workers <= 1 {
        return (0..reps).map(timed).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..reps).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let rep = next.fetch_add(1, Ordering::Relaxed);
                if rep >= reps {
                    break;
                }
                let out = timed(rep);
                *slots[rep].lock().expect("replication slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("replication slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// As [`run_seeds`], with each seed's work isolated under
/// [`catch_unwind`]: a replication that panics yields
/// `Err(RunError::Panicked)` in its slot instead of propagating and
/// killing the whole batch. Order preservation and the seed-order merge
/// guarantee are unchanged — surviving seeds produce exactly the values a
/// fully healthy batch would have produced for them.
///
/// Panic isolation is sound here because each seed's closure invocation
/// owns its state: a panicking replication can poison nothing the other
/// seeds observe (hence the `AssertUnwindSafe`).
pub fn run_seeds_checked<T, F>(
    reps: usize,
    opts: &ReplicationOptions,
    f: F,
) -> Vec<Result<T, RunError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, RunError> + Sync,
{
    run_seeds(reps, opts, |rep| {
        match catch_unwind(AssertUnwindSafe(|| f(rep))) {
            Ok(result) => result,
            Err(payload) => Err(RunError::Panicked {
                message: panic_message(payload),
            }),
        }
    })
}

/// The outcome of a hardened replication batch: per-seed results in seed
/// order, plus the aggregate over the survivors.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Aggregate over the surviving seeds, folded in seed order; `None`
    /// iff every seed failed.
    pub aggregate: Option<AggregateSummary>,
    /// Per-seed outcome, indexed by replication number.
    pub outcomes: Vec<Result<RunSummary, RunError>>,
}

impl BatchSummary {
    /// The surviving summaries, in seed order.
    pub fn survivors(&self) -> impl Iterator<Item = &RunSummary> {
        self.outcomes.iter().filter_map(|o| o.as_ref().ok())
    }

    /// The failed seeds as `(rep, error)`, in seed order.
    pub fn errors(&self) -> impl Iterator<Item = (usize, &RunError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(rep, o)| o.as_ref().err().map(|e| (rep, e)))
    }
}

/// Run `replications` hardened seeded runs under `opts`: panics,
/// validation failures and watchdog trips each surface as that seed's
/// typed [`RunError`] while every other seed completes normally. The
/// survivor aggregate is folded in seed order, so it is bit-identical
/// across all [`Parallelism`] settings — and bit-identical to a smaller
/// batch containing only the surviving seeds.
pub fn run_replications_checked(
    cfg: &SimConfig,
    policy: &dyn Policy,
    replications: usize,
    opts: &ReplicationOptions,
) -> BatchSummary {
    assert!(replications > 0, "need at least one replication");
    let cfg = opts.effective_cfg(cfg);
    let outcomes = run_seeds_checked(replications, opts, |rep| run_one_checked(&cfg, policy, rep));
    let survivors: Vec<RunSummary> = outcomes.iter().filter_map(|o| o.clone().ok()).collect();
    let aggregate = if survivors.is_empty() {
        None
    } else {
        Some(aggregate(policy.name(), &survivors))
    };
    BatchSummary {
        aggregate,
        outcomes,
    }
}

/// Fold per-seed summaries (in slice order) into an [`AggregateSummary`].
///
/// The order of `summaries` is the order every metric's values enter its
/// [`Replications`] accumulator; callers that want serial-equivalent
/// aggregates must pass summaries in seed order.
pub fn aggregate(policy: &str, summaries: &[RunSummary]) -> AggregateSummary {
    let field = |get: fn(&RunSummary) -> f64| -> Estimate {
        let mut reps = Replications::new();
        reps.record_all(summaries.iter().map(get));
        reps.estimate()
    };
    AggregateSummary {
        policy: policy.to_string(),
        replications: summaries.len(),
        miss_percent: field(|s| s.miss_percent),
        mean_lateness_ms: field(|s| s.mean_lateness_ms),
        mean_signed_lateness_ms: field(|s| s.mean_signed_lateness_ms),
        restarts_per_txn: field(|s| s.restarts_per_txn),
        noncontributing_aborts: field(|s| s.noncontributing_aborts as f64),
        mean_plist_len: field(|s| s.mean_plist_len),
        cpu_utilization: field(|s| s.cpu_utilization),
        disk_utilization: field(|s| s.disk_utilization),
        mean_response_ms: field(|s| s.mean_response_ms),
        rejected_percent: field(|s| s.rejected_percent),
        injected_io_faults: field(|s| s.injected_io_faults as f64),
        io_retries: field(|s| s.io_retries as f64),
        io_exhausted_aborts: field(|s| s.io_exhausted_aborts as f64),
        wasted_disk_hold_ms: field(|s| s.wasted_disk_hold_ms),
    }
}

/// Run `replications` independent runs (seeds `0..replications` offset by
/// `cfg.run.seed`) and aggregate, serially on the calling thread.
///
/// Equivalent to [`run_replications_with`] under
/// [`ReplicationOptions::serial`] — and, by the seed-order merge
/// guarantee, to *any* other parallelism setting.
pub fn run_replications(
    cfg: &SimConfig,
    policy: &dyn Policy,
    replications: usize,
) -> AggregateSummary {
    run_replications_with(cfg, policy, replications, &ReplicationOptions::serial())
}

/// Run `replications` independent seeded runs under `opts` and merge the
/// results in seed order.
///
/// The aggregate is **bit-identical across all [`Parallelism`] settings**:
/// each replication is a pure function of its seed, and the merge folds
/// summaries in seed order no matter which worker produced them.
pub fn run_replications_with(
    cfg: &SimConfig,
    policy: &dyn Policy,
    replications: usize,
    opts: &ReplicationOptions,
) -> AggregateSummary {
    assert!(replications > 0, "need at least one replication");
    let cfg = opts.effective_cfg(cfg);
    let summaries = run_seeds(replications, opts, |rep| run_one(&cfg, policy, rep));
    aggregate(policy.name(), &summaries)
}

/// Percentage improvement of `ours` over `baseline` for a
/// lower-is-better metric: `(baseline − ours) / baseline × 100` — the
/// paper's `improvement = (EDF − CCA)/EDF × 100`.
pub fn improvement_percent(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Priority, SystemView};
    use crate::txn::Transaction;

    struct Edf;
    impl Policy for Edf {
        fn name(&self) -> &str {
            "EDF-HP"
        }
        fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
            Priority(-txn.deadline.as_ms())
        }
    }

    #[test]
    fn aggregates_over_seeds() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 60;
        cfg.run.arrival_rate_tps = 8.0;
        let agg = run_replications(&cfg, &Edf, 4);
        assert_eq!(agg.replications, 4);
        assert_eq!(agg.policy, "EDF-HP");
        assert_eq!(agg.miss_percent.n, 4);
        assert!(agg.miss_percent.mean >= 0.0);
        assert!(agg.cpu_utilization.mean > 0.0);
    }

    #[test]
    fn deterministic_aggregation() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 40;
        let a = run_replications(&cfg, &Edf, 3);
        let b = run_replications(&cfg, &Edf, 3);
        assert_eq!(a.miss_percent.mean, b.miss_percent.mean);
        assert_eq!(a.restarts_per_txn.mean, b.restarts_per_txn.mean);
    }

    #[test]
    fn seed_offset_changes_runs() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 40;
        cfg.run.arrival_rate_tps = 9.0;
        let a = run_replications(&cfg, &Edf, 2);
        cfg.run.seed = 1000;
        let b = run_replications(&cfg, &Edf, 2);
        assert_ne!(a.mean_response_ms.mean, b.mean_response_ms.mean);
    }

    #[test]
    fn improvement_formula() {
        assert!((improvement_percent(10.0, 7.0) - 30.0).abs() < 1e-12);
        assert!((improvement_percent(10.0, 12.0) + 20.0).abs() < 1e-12);
        assert_eq!(improvement_percent(0.0, 5.0), 0.0, "guarded division");
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let cfg = SimConfig::mm_base();
        run_replications(&cfg, &Edf, 0);
    }

    #[test]
    fn run_one_matches_manual_seed_offset() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 40;
        cfg.run.seed = 7;
        let via_helper = run_one(&cfg, &Edf, 3);
        let mut manual_cfg = cfg.clone();
        manual_cfg.run.seed = 10;
        let manual = crate::engine::run_simulation(&manual_cfg, &Edf);
        assert_eq!(via_helper, manual);
    }

    #[test]
    fn run_seeds_preserves_order_under_parallelism() {
        let serial = run_seeds(17, &ReplicationOptions::serial(), |rep| rep * rep);
        let parallel = run_seeds(17, &ReplicationOptions::threads(4), |rep| rep * rep);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..17).map(|r| r * r).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 60;
        cfg.run.arrival_rate_tps = 8.0;
        let serial = run_replications_with(&cfg, &Edf, 5, &ReplicationOptions::serial());
        for opts in [
            ReplicationOptions::threads(2),
            ReplicationOptions::threads(4),
            ReplicationOptions::auto(),
        ] {
            let par = run_replications_with(&cfg, &Edf, 5, &opts);
            assert_eq!(serial.miss_percent, par.miss_percent);
            assert_eq!(serial.mean_lateness_ms, par.mean_lateness_ms);
            assert_eq!(serial.mean_signed_lateness_ms, par.mean_signed_lateness_ms);
            assert_eq!(serial.restarts_per_txn, par.restarts_per_txn);
            assert_eq!(serial.noncontributing_aborts, par.noncontributing_aborts);
            assert_eq!(serial.mean_plist_len, par.mean_plist_len);
            assert_eq!(serial.cpu_utilization, par.cpu_utilization);
            assert_eq!(serial.disk_utilization, par.disk_utilization);
            assert_eq!(serial.mean_response_ms, par.mean_response_ms);
        }
    }

    #[test]
    fn timer_counts_every_replication() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 30;
        let timer = Arc::new(ReplicationTimer::new());
        let opts = ReplicationOptions::threads(3).with_timer(Arc::clone(&timer));
        run_replications_with(&cfg, &Edf, 6, &opts);
        assert_eq!(timer.runs(), 6);
        assert!(timer.busy() > Duration::ZERO);
    }

    #[test]
    fn workers_never_exceed_reps() {
        assert_eq!(Parallelism::Threads(8).workers(3), 3);
        assert_eq!(Parallelism::Threads(0).workers(3), 1);
        assert_eq!(Parallelism::Serial.workers(100), 1);
        assert!(Parallelism::Auto.workers(usize::MAX) >= 1);
    }
}
