//! Replication runner: "We ran the simulation with the same parameter for
//! 10 different random number seeds … For each algorithm the result were
//! collected and averaged over the 10 runs" (§4; 30 runs in §5).

use rtx_sim::stats::{Estimate, Replications};

use crate::config::SimConfig;
use crate::engine::run_simulation;
use crate::metrics::RunSummary;
use crate::policy::Policy;

/// Across-replication averages of every [`RunSummary`] field the paper
/// plots, each with a 95% confidence half-width.
#[derive(Debug, Clone)]
pub struct AggregateSummary {
    /// Policy name the runs used.
    pub policy: String,
    /// Number of replications.
    pub replications: usize,
    /// Miss percentage.
    pub miss_percent: Estimate,
    /// Mean tardiness over all transactions, ms.
    pub mean_lateness_ms: Estimate,
    /// Mean signed lateness, ms.
    pub mean_signed_lateness_ms: Estimate,
    /// Restarts per transaction.
    pub restarts_per_txn: Estimate,
    /// Noncontributing (secondary-victim) aborts per run.
    pub noncontributing_aborts: Estimate,
    /// Time-averaged P-list length.
    pub mean_plist_len: Estimate,
    /// CPU utilization.
    pub cpu_utilization: Estimate,
    /// Disk utilization.
    pub disk_utilization: Estimate,
    /// Mean response time, ms.
    pub mean_response_ms: Estimate,
}

/// Run `replications` independent runs (seeds `0..replications` offset by
/// `cfg.run.seed`) and aggregate.
pub fn run_replications(
    cfg: &SimConfig,
    policy: &dyn Policy,
    replications: usize,
) -> AggregateSummary {
    assert!(replications > 0, "need at least one replication");
    let mut miss = Replications::new();
    let mut late = Replications::new();
    let mut signed = Replications::new();
    let mut restarts = Replications::new();
    let mut noncontrib = Replications::new();
    let mut plist = Replications::new();
    let mut cpu = Replications::new();
    let mut disk = Replications::new();
    let mut resp = Replications::new();
    for r in 0..replications {
        let mut run_cfg = cfg.clone();
        run_cfg.run.seed = cfg.run.seed.wrapping_add(r as u64);
        let s: RunSummary = run_simulation(&run_cfg, policy);
        miss.record(s.miss_percent);
        late.record(s.mean_lateness_ms);
        signed.record(s.mean_signed_lateness_ms);
        restarts.record(s.restarts_per_txn);
        noncontrib.record(s.noncontributing_aborts as f64);
        plist.record(s.mean_plist_len);
        cpu.record(s.cpu_utilization);
        disk.record(s.disk_utilization);
        resp.record(s.mean_response_ms);
    }
    AggregateSummary {
        policy: policy.name().to_string(),
        replications,
        miss_percent: miss.estimate(),
        mean_lateness_ms: late.estimate(),
        mean_signed_lateness_ms: signed.estimate(),
        restarts_per_txn: restarts.estimate(),
        noncontributing_aborts: noncontrib.estimate(),
        mean_plist_len: plist.estimate(),
        cpu_utilization: cpu.estimate(),
        disk_utilization: disk.estimate(),
        mean_response_ms: resp.estimate(),
    }
}

/// Percentage improvement of `ours` over `baseline` for a
/// lower-is-better metric: `(baseline − ours) / baseline × 100` — the
/// paper's `improvement = (EDF − CCA)/EDF × 100`.
pub fn improvement_percent(baseline: f64, ours: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - ours) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Priority, SystemView};
    use crate::txn::Transaction;

    struct Edf;
    impl Policy for Edf {
        fn name(&self) -> &str {
            "EDF-HP"
        }
        fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
            Priority(-txn.deadline.as_ms())
        }
    }

    #[test]
    fn aggregates_over_seeds() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 60;
        cfg.run.arrival_rate_tps = 8.0;
        let agg = run_replications(&cfg, &Edf, 4);
        assert_eq!(agg.replications, 4);
        assert_eq!(agg.policy, "EDF-HP");
        assert_eq!(agg.miss_percent.n, 4);
        assert!(agg.miss_percent.mean >= 0.0);
        assert!(agg.cpu_utilization.mean > 0.0);
    }

    #[test]
    fn deterministic_aggregation() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 40;
        let a = run_replications(&cfg, &Edf, 3);
        let b = run_replications(&cfg, &Edf, 3);
        assert_eq!(a.miss_percent.mean, b.miss_percent.mean);
        assert_eq!(a.restarts_per_txn.mean, b.restarts_per_txn.mean);
    }

    #[test]
    fn seed_offset_changes_runs() {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = 40;
        cfg.run.arrival_rate_tps = 9.0;
        let a = run_replications(&cfg, &Edf, 2);
        cfg.run.seed = 1000;
        let b = run_replications(&cfg, &Edf, 2);
        assert_ne!(a.mean_response_ms.mean, b.mean_response_ms.mean);
    }

    #[test]
    fn improvement_formula() {
        assert!((improvement_percent(10.0, 7.0) - 30.0).abs() < 1e-12);
        assert!((improvement_percent(10.0, 12.0) + 20.0).abs() < 1e-12);
        assert_eq!(improvement_percent(0.0, 5.0), 0.0, "guarded division");
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_panics() {
        let cfg = SimConfig::mm_base();
        run_replications(&cfg, &Edf, 0);
    }
}
