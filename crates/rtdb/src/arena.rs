//! Dense per-transaction scheduler state.
//!
//! The scheduler's hot loops — peek-validate-demote picks, clear-repair
//! walks, pair-predicate version gates — used to chase four separate
//! version vectors plus a priority-cache vector, paying one cache line
//! per structure per transaction touched. This module packs all of that
//! per-transaction state into a single 64-byte [`SlotState`] record in
//! one arena, indexed by a compact [`TxnSlot`]: validating one candidate
//! now reads exactly one cache line, and a repair walk streams
//! contiguous lines instead of gathering across five allocations.
//!
//! The arena holds *redundant acceleration state only*: every field is
//! reconstructible from the transactions themselves, and the `Verify`
//! cache mode asserts the derived values against scan-based oracles at
//! every pick.

use std::cell::Cell;

use rtx_sim::time::SimTime;

use crate::policy::Priority;
use crate::txn::TxnId;

/// Compact arena index for a transaction. Transaction ids are dense
/// (arrival order, starting at 0), so the slot is the id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct TxnSlot(pub(crate) u32);

impl From<TxnId> for TxnSlot {
    #[inline]
    fn from(id: TxnId) -> Self {
        TxnSlot(id.0)
    }
}

/// One transaction's hot scheduler state, packed into a single cache
/// line: the cached priority with the stamps it was computed from, and
/// the conflict-bookkeeping version counters that gate the pair caches.
///
/// Field semantics mirror the structures this replaces (the engine's
/// `PriEntry` vector and the accelerator's four version vectors);
/// see the field docs. Validity of the cached priority is encoded in
/// `pri_stamp`: [`SlotState::NO_PRI`] means "never computed" (real
/// stamps count up from 0 and can never reach it).
#[derive(Clone, Copy)]
#[repr(C, align(64))]
pub(crate) struct SlotState {
    /// Cached priority value (policy-dependent upper bound or exact;
    /// see `EngineState::priority_of`).
    pub pri_value: Priority,
    /// Simulation time the value was computed at (`TimeAndSelf` key).
    pub pri_at: SimTime,
    /// `pair_stamp` at computation time (`ConflictState` key), or
    /// [`SlotState::NO_PRI`] when no priority has been cached yet.
    pub pri_stamp: u64,
    /// `own_version` at computation time.
    pub pri_own: u64,
    /// Per-transaction conflict stamp: bumped for exactly the
    /// transactions whose unsafe/conditionally-unsafe partial set (the
    /// input of a `ConflictState` priority) changed.
    pub pair_stamp: u64,
    /// Bumped on *any* own-state change that could move this
    /// transaction's priority (progress, restarts, set changes).
    pub own_version: u64,
    /// Bumped when the `accessed`/`written` sets grow or are cleared.
    /// Gates the dynamic unsafe-pair cache.
    pub access_version: u64,
    /// Bumped when `might_access` is reassigned (decision narrowing,
    /// restart re-widening). Gates the static pair cache.
    pub might_version: u64,
}

const _: () = assert!(
    std::mem::size_of::<SlotState>() == 64,
    "SlotState must stay one cache line"
);

impl SlotState {
    /// `pri_stamp` sentinel marking "no cached priority". Stamps are
    /// bumped at most once per simulation event, so they never reach it.
    pub const NO_PRI: u64 = u64::MAX;

    /// A freshly registered transaction: zero versions, no priority.
    pub const EMPTY: SlotState = SlotState {
        pri_value: Priority::MIN,
        pri_at: SimTime::ZERO,
        pri_stamp: Self::NO_PRI,
        pri_own: 0,
        pair_stamp: 0,
        own_version: 0,
        access_version: 0,
        might_version: 0,
    };

    /// Has a priority ever been cached for this transaction?
    #[inline]
    pub fn pri_valid(&self) -> bool {
        self.pri_stamp != Self::NO_PRI
    }
}

/// The slot arena: one [`SlotState`] cache line per registered
/// transaction, readable and writable through shared references (the
/// pick paths run under `&self`).
pub(crate) struct SchedArena {
    slots: Vec<Cell<SlotState>>,
}

impl SchedArena {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        SchedArena {
            slots: Vec::with_capacity(capacity),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Register the next dense slot (ids arrive in order).
    pub(crate) fn register(&mut self) {
        self.slots.push(Cell::new(SlotState::EMPTY));
    }

    /// Copy out a slot's state (one cache-line read).
    #[inline]
    pub(crate) fn get(&self, slot: TxnSlot) -> SlotState {
        self.slots[slot.0 as usize].get()
    }

    /// Read-modify-write a slot in place.
    #[inline]
    pub(crate) fn update(&self, slot: TxnSlot, f: impl FnOnce(&mut SlotState)) {
        let cell = &self.slots[slot.0 as usize];
        let mut s = cell.get();
        f(&mut s);
        cell.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<SlotState>(), 64);
        assert_eq!(std::mem::align_of::<SlotState>(), 64);
    }

    #[test]
    fn empty_slot_has_no_priority() {
        let s = SlotState::EMPTY;
        assert!(!s.pri_valid());
        let mut arena = SchedArena::with_capacity(2);
        arena.register();
        arena.register();
        assert_eq!(arena.len(), 2);
        arena.update(TxnSlot(1), |s| {
            s.pair_stamp += 1;
            s.pri_stamp = s.pair_stamp;
        });
        assert!(arena.get(TxnSlot(1)).pri_valid());
        assert!(!arena.get(TxnSlot(0)).pri_valid());
    }
}
