//! Dense per-transaction scheduler state.
//!
//! The scheduler's hot loops — peek-validate-demote picks, clear-repair
//! walks, pair-predicate version gates — used to chase four separate
//! version vectors plus a priority-cache vector, paying one cache line
//! per structure per transaction touched. This module packs all of that
//! per-transaction state into a single 64-byte [`SlotState`] record in
//! one arena, indexed by a compact [`TxnSlot`]: validating one candidate
//! now reads exactly one cache line, and a repair walk streams
//! contiguous lines instead of gathering across five allocations.
//!
//! The arena holds *redundant acceleration state only*: every field is
//! reconstructible from the transactions themselves, and the `Verify`
//! cache mode asserts the derived values against scan-based oracles at
//! every pick.

use std::cell::Cell;

use rtx_sim::time::SimTime;

use crate::policy::Priority;

/// Compact arena index for a transaction's slot. Slots are *recycled*:
/// a departed transaction's slot is handed to a later arrival, so the
/// arena stays sized by the peak concurrent population rather than the
/// run's total transaction count. Holders map ids to slots through
/// `ConflictAccel`'s slot map, never by arithmetic on the id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct TxnSlot(pub(crate) u32);

impl TxnSlot {
    /// Sentinel for "this transaction's slot was released" in slot maps
    /// (no arena ever reaches 2^32 - 1 live slots).
    pub(crate) const RELEASED: TxnSlot = TxnSlot(u32::MAX);
}

/// One transaction's hot scheduler state, packed into a single cache
/// line: the cached priority with the stamps it was computed from, and
/// the conflict-bookkeeping version counters that gate the pair caches.
///
/// Field semantics mirror the structures this replaces (the engine's
/// `PriEntry` vector and the accelerator's four version vectors);
/// see the field docs. Validity of the cached priority is encoded in
/// `pri_stamp`: [`SlotState::NO_PRI`] means "never computed" (real
/// stamps count up from 0 and can never reach it).
#[derive(Clone, Copy)]
#[repr(C, align(64))]
pub(crate) struct SlotState {
    /// Cached priority value (policy-dependent upper bound or exact;
    /// see `EngineState::priority_of`).
    pub pri_value: Priority,
    /// Simulation time the value was computed at (`TimeAndSelf` key).
    pub pri_at: SimTime,
    /// `pair_stamp` at computation time (`ConflictState` key), or
    /// [`SlotState::NO_PRI`] when no priority has been cached yet.
    pub pri_stamp: u64,
    /// `own_version` at computation time.
    pub pri_own: u64,
    /// Per-transaction conflict stamp: bumped for exactly the
    /// transactions whose unsafe/conditionally-unsafe partial set (the
    /// input of a `ConflictState` priority) changed.
    pub pair_stamp: u64,
    /// Bumped on *any* own-state change that could move this
    /// transaction's priority (progress, restarts, set changes).
    pub own_version: u64,
    /// Bumped when the `accessed`/`written` sets grow or are cleared.
    /// Gates the dynamic unsafe-pair cache.
    pub access_version: u64,
    /// Bumped when `might_access` is reassigned (decision narrowing,
    /// restart re-widening). Gates the static pair cache.
    pub might_version: u64,
}

const _: () = assert!(
    std::mem::size_of::<SlotState>() == 64,
    "SlotState must stay one cache line"
);

impl SlotState {
    /// `pri_stamp` sentinel marking "no cached priority". Stamps are
    /// bumped at most once per simulation event, so they never reach it.
    pub const NO_PRI: u64 = u64::MAX;

    /// A freshly registered transaction: zero versions, no priority.
    pub const EMPTY: SlotState = SlotState {
        pri_value: Priority::MIN,
        pri_at: SimTime::ZERO,
        pri_stamp: Self::NO_PRI,
        pri_own: 0,
        pair_stamp: 0,
        own_version: 0,
        access_version: 0,
        might_version: 0,
    };

    /// Has a priority ever been cached for this transaction?
    #[inline]
    pub fn pri_valid(&self) -> bool {
        self.pri_stamp != Self::NO_PRI
    }
}

/// The slot arena: one [`SlotState`] cache line per *live* transaction,
/// readable and writable through shared references (the pick paths run
/// under `&self`).
///
/// Slots of departed transactions are recycled through a free list, and
/// each slot carries a generation stamp bumped on release. The stamp
/// makes recycling safe **without a version sweep**: a recycled slot is
/// reset to [`SlotState::EMPTY`] in O(1) at release, exactly the state a
/// fresh push would have had, and the generation lets debug builds and
/// tests prove no stale [`TxnSlot`] from a previous incarnation is ever
/// dereferenced (pair caches never need flushing either — their keys are
/// transaction ids, which are never reused).
pub(crate) struct SchedArena {
    slots: Vec<Cell<SlotState>>,
    /// Incarnation counter per slot, bumped when the slot is released.
    generations: Vec<Cell<u32>>,
    /// Released slot indices awaiting reuse (LIFO: the hottest line is
    /// handed out first).
    free: Vec<u32>,
}

impl SchedArena {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        SchedArena {
            slots: Vec::with_capacity(capacity),
            generations: Vec::with_capacity(capacity),
            free: Vec::new(),
        }
    }

    /// Total slots ever allocated (live + free) — the high-water mark of
    /// the concurrent population.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently assigned to live transactions.
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Assign a slot to a new transaction: reuse a released slot if one
    /// is free, else grow the arena. The returned slot's state is
    /// [`SlotState::EMPTY`] either way.
    pub(crate) fn register(&mut self) -> TxnSlot {
        if let Some(i) = self.free.pop() {
            debug_assert!(!self.slots[i as usize].get().pri_valid());
            TxnSlot(i)
        } else {
            self.slots.push(Cell::new(SlotState::EMPTY));
            self.generations.push(Cell::new(0));
            TxnSlot((self.slots.len() - 1) as u32)
        }
    }

    /// Return a departed transaction's slot to the free list: reset the
    /// state and bump the generation so any stale reference to the old
    /// incarnation is detectable.
    pub(crate) fn release(&mut self, slot: TxnSlot) {
        let i = slot.0 as usize;
        debug_assert!(!self.free.contains(&slot.0), "double release of {slot:?}");
        self.slots[i].set(SlotState::EMPTY);
        self.generations[i].set(self.generations[i].get().wrapping_add(1));
        self.free.push(slot.0);
    }

    /// The slot's incarnation count (bumps on each release).
    #[cfg(test)]
    pub(crate) fn generation(&self, slot: TxnSlot) -> u32 {
        self.generations[slot.0 as usize].get()
    }

    /// Copy out a slot's state (one cache-line read).
    #[inline]
    pub(crate) fn get(&self, slot: TxnSlot) -> SlotState {
        self.slots[slot.0 as usize].get()
    }

    /// Read-modify-write a slot in place.
    #[inline]
    pub(crate) fn update(&self, slot: TxnSlot, f: impl FnOnce(&mut SlotState)) {
        let cell = &self.slots[slot.0 as usize];
        let mut s = cell.get();
        f(&mut s);
        cell.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<SlotState>(), 64);
        assert_eq!(std::mem::align_of::<SlotState>(), 64);
    }

    #[test]
    fn empty_slot_has_no_priority() {
        let s = SlotState::EMPTY;
        assert!(!s.pri_valid());
        let mut arena = SchedArena::with_capacity(2);
        let a = arena.register();
        let b = arena.register();
        assert_eq!((a, b), (TxnSlot(0), TxnSlot(1)));
        assert_eq!(arena.len(), 2);
        arena.update(b, |s| {
            s.pair_stamp += 1;
            s.pri_stamp = s.pair_stamp;
        });
        assert!(arena.get(b).pri_valid());
        assert!(!arena.get(a).pri_valid());
    }

    #[test]
    fn release_recycles_reset_slots_lifo() {
        let mut arena = SchedArena::with_capacity(4);
        let a = arena.register();
        let b = arena.register();
        let c = arena.register();
        arena.update(b, |s| {
            s.pair_stamp = 7;
            s.pri_stamp = 7;
        });
        assert_eq!((arena.len(), arena.live()), (3, 3));
        let (gen_a, gen_b) = (arena.generation(a), arena.generation(b));
        arena.release(a);
        arena.release(b);
        assert_eq!((arena.len(), arena.live()), (3, 1));
        assert_eq!(arena.generation(a), gen_a + 1);
        assert_eq!(arena.generation(b), gen_b + 1);
        // LIFO reuse, and the recycled slot reads as freshly registered.
        let d = arena.register();
        assert_eq!(d, b);
        assert!(!arena.get(d).pri_valid());
        assert_eq!(arena.get(d).pair_stamp, 0);
        let e = arena.register();
        assert_eq!(e, a);
        // The untouched live slot kept its identity and no growth happened.
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.live(), 3);
        let f = arena.register();
        assert_eq!(f, TxnSlot(3));
        assert_eq!(arena.get(c).pair_stamp, 0);
    }
}
