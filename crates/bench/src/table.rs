//! Result tables: aligned console rendering plus CSV output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular result table with a title and column headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id / figure name.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Convenience: append a row of formatted numbers (3 decimals).
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        self.push_row(cells.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut first = true;
            for (cell, w) in cells.iter().zip(widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Serialize as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV to `dir/<title>.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.title));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig_test", &["x", "edf", "cca"]);
        t.push_numeric_row(&[1.0, 10.5, 8.25]);
        t.push_row(vec!["2".into(), "hello, world".into(), "b\"q".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== fig_test =="));
        assert!(s.contains("edf"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,edf,cca");
        assert_eq!(lines[1], "1.000,10.500,8.250");
        assert!(lines[2].contains("\"hello, world\""));
        assert!(lines[2].contains("\"b\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("rtx_table_test");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, sample().to_csv());
        let _ = std::fs::remove_file(path);
    }
}
