//! `rtx-bench` — the experiment harness.
//!
//! One generator per table and figure of the paper's evaluation (§4 and
//! §5): each experiment runs the simulator at the paper's parameters,
//! averages over the paper's replication counts, prints the series the
//! figure plots, and writes a CSV under `results/`.
//!
//! The binary `experiments` drives it:
//!
//! ```text
//! cargo run -p rtx-bench --release --bin experiments -- all
//! cargo run -p rtx-bench --release --bin experiments -- fig4a fig4c
//! cargo run -p rtx-bench --release --bin experiments -- --quick all
//! ```
//!
//! `--quick` divides the replication counts and run lengths by ~4 for a
//! fast smoke pass; EXPERIMENTS.md records full-scale results.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod plot;
pub mod profile;
pub mod table;

pub use plot::render_chart;
pub use profile::{bench_profile_docs, bench_profile_json, ScenarioSummary};
pub use table::Table;

/// Controls experiment size: full paper scale or a fast smoke pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale replications and run lengths.
    Full,
    /// ~4× smaller for smoke testing.
    Quick,
}

impl Scale {
    /// Scale a replication count.
    pub fn reps(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(2),
        }
    }

    /// Scale a per-run transaction count.
    pub fn txns(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => (full / 4).max(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Full.reps(10), 10);
        assert_eq!(Scale::Quick.reps(10), 2);
        assert_eq!(Scale::Quick.reps(30), 7);
        assert_eq!(Scale::Full.txns(1000), 1000);
        assert_eq!(Scale::Quick.txns(1000), 250);
        assert_eq!(Scale::Quick.txns(100), 50);
    }
}
