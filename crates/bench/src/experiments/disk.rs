//! Disk-resident experiments (§5, Figure 5.b–5.f and Table 2).

use rtx_core::Cca;
use rtx_rtdb::runner::{run_replications_with, ReplicationOptions};
use rtx_rtdb::SimConfig;

use super::compare;
use crate::table::Table;
use crate::Scale;

/// Replications for disk experiments ("30 different random number seeds").
const DISK_REPS: usize = 30;
/// Transactions per run ("300 transactions are executed at each run").
const DISK_TXNS: usize = 300;

/// Table 2: the disk-resident base parameters.
pub fn table2() -> Table {
    let cfg = SimConfig::disk_base();
    let d = cfg.system.disk.expect("disk config");
    let w = &cfg.workload;
    let mut t = Table::new("table2", &["Parameter", "Value"]);
    t.push_row(vec!["Transaction type".into(), w.num_types.to_string()]);
    t.push_row(vec![
        "Update per transaction (mean, std)".into(),
        format!("({}, {})", w.updates_mean, w.updates_std),
    ]);
    t.push_row(vec!["Database size".into(), w.db_size.to_string()]);
    t.push_row(vec![
        "Min-slack as fraction of total runtime".into(),
        format!("{}%", w.min_slack * 100.0),
    ]);
    t.push_row(vec![
        "Max-slack as fraction of total runtime".into(),
        format!("{}%", w.max_slack * 100.0),
    ]);
    t.push_row(vec![
        "abort cost (ms)".into(),
        format!("{}", cfg.system.abort_cost_ms),
    ]);
    t.push_row(vec!["weight of penalty of conflict".into(), "1".into()]);
    t.push_row(vec![
        "Computation/Update time (ms)".into(),
        format!("{}", w.update_time_classes_ms[0]),
    ]);
    t.push_row(vec![
        "Disk access time (ms)".into(),
        format!("{}", d.access_time_ms),
    ]);
    t.push_row(vec![
        "Disk access probability".into(),
        format!("{}", d.access_prob),
    ]);
    t.push_row(vec![
        "Disk utilization at CPU capacity (derived)".into(),
        format!(
            "{:.1}%",
            cfg.disk_utilization_at(cfg.cpu_capacity_tps()) * 100.0
        ),
    ]);
    t
}

/// Figures 5.b–5.d: the disk-resident arrival-rate sweep (1–7 tps).
/// Returns `[fig5b (miss %), fig5d (improvement), fig5c (restarts/txn)]`.
pub fn base_sweep(scale: Scale, opts: &ReplicationOptions) -> Vec<Table> {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = scale.txns(DISK_TXNS);
    let reps = scale.reps(DISK_REPS);
    let rates: Vec<f64> = (1..=7).map(|r| r as f64).collect();

    let mut fig5b = Table::new(
        "fig5b",
        &[
            "arrival_tps",
            "edf_miss_pct",
            "cca_miss_pct",
            "edf_ci",
            "cca_ci",
        ],
    );
    let mut fig5d = Table::new(
        "fig5d",
        &["arrival_tps", "improve_miss_pct", "improve_lateness_pct"],
    );
    let mut fig5c = Table::new(
        "fig5c",
        &[
            "arrival_tps",
            "edf_restarts_per_txn",
            "cca_restarts_per_txn",
            "edf_noncontrib_aborts",
            "cca_noncontrib_aborts",
        ],
    );
    for &rate in &rates {
        cfg.run.arrival_rate_tps = rate;
        let pair = compare(&cfg, reps, opts);
        fig5b.push_numeric_row(&[
            rate,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
            pair.edf.miss_percent.half_width,
            pair.cca.miss_percent.half_width,
        ]);
        let (im, il) = pair.improvements();
        fig5d.push_numeric_row(&[rate, im, il]);
        fig5c.push_numeric_row(&[
            rate,
            pair.edf.restarts_per_txn.mean,
            pair.cca.restarts_per_txn.mean,
            pair.edf.noncontributing_aborts.mean,
            pair.cca.noncontributing_aborts.mean,
        ]);
    }
    vec![fig5b, fig5d, fig5c]
}

/// Figure 5.e: effect of database size at arrival rate 4 (disk resident).
pub fn db_size_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = scale.txns(DISK_TXNS);
    cfg.run.arrival_rate_tps = 4.0;
    let reps = scale.reps(DISK_REPS);

    let mut t = Table::new("fig5e", &["db_size", "edf_miss_pct", "cca_miss_pct"]);
    for db in (100..=600).step_by(100) {
        cfg.workload.db_size = db;
        let pair = compare(&cfg, reps, opts);
        t.push_numeric_row(&[
            db as f64,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
        ]);
    }
    t
}

/// Figure 5.f: stability of the penalty weight at 4 tps (disk resident).
pub fn penalty_weight_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = scale.txns(DISK_TXNS);
    cfg.run.arrival_rate_tps = 4.0;
    let reps = scale.reps(DISK_REPS);
    let weights = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0];

    let mut t = Table::new("fig5f", &["penalty_weight", "miss_pct_4tps"]);
    for &w in &weights {
        let agg = run_replications_with(&cfg, &Cca::new(w), reps, opts);
        t.push_numeric_row(&[w, agg.miss_percent.mean]);
    }
    t
}
