//! The experiment registry: one entry per table/figure of the paper plus
//! the ablation/extension studies from DESIGN.md.
//!
//! Experiments are organised into **groups** — sets of ids that share one
//! underlying parameter sweep, so `all` never recomputes a sweep. Each
//! group runs its replications under a caller-supplied
//! [`ReplicationOptions`] (serial or multi-threaded; the output is
//! bit-identical either way, see `rtx_rtdb::runner`) and reports
//! wall-clock plus summed per-replication time, from which a speedup
//! estimate over serial execution is derived.

use std::sync::Arc;
use std::time::Instant;

use rtx_core::{Cca, EdfHp};
use rtx_rtdb::runner::{
    improvement_percent, run_replications_with, AggregateSummary, ReplicationOptions,
    ReplicationTimer,
};
use rtx_rtdb::SimConfig;

use crate::table::Table;
use crate::Scale;

pub mod ablate;
pub mod chaos;
pub mod disk;
pub mod faults;
pub mod mm;
pub mod serve;

/// All experiment ids, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4e",
    "fig4f",
    "fig5a",
    "table2",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5e",
    "fig5f",
    "ablate-recovery",
    "ablate-iowait",
    "ablate-policies",
    "ablate-disk-sched",
    "ext-shared-locks",
    "ext-criticality",
    "ext-branching",
    "faults",
    "faults-admission",
    "serve-vt",
    "chaos",
    "chaos-crash",
];

/// The output of one experiment group: its tables plus timing.
#[derive(Debug)]
pub struct GroupReport {
    /// The ids (of those requested) this group produced.
    pub ids: Vec<&'static str>,
    /// The tables for those ids, in the group's emission order.
    pub tables: Vec<Table>,
    /// Number of simulation runs executed.
    pub runs: u64,
    /// Wall-clock time for the whole group, seconds.
    pub wall_seconds: f64,
    /// Per-replication wall time summed over all workers, seconds — an
    /// estimate of the group's serial cost.
    pub busy_seconds: f64,
}

impl GroupReport {
    /// Estimated speedup over serial execution (`busy / wall`; 1.0 when
    /// no replications ran, e.g. parameter tables).
    pub fn speedup_estimate(&self) -> f64 {
        if self.runs == 0 || self.wall_seconds <= 0.0 {
            1.0
        } else {
            self.busy_seconds / self.wall_seconds
        }
    }
}

/// Run one experiment by id, serially. Returns the tables it produces
/// (several ids share one underlying sweep; each id returns only its own
/// tables).
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    run_with(id, scale, &ReplicationOptions::serial())
}

/// Run one experiment by id under the given replication options.
pub fn run_with(id: &str, scale: Scale, opts: &ReplicationOptions) -> Option<Vec<Table>> {
    match id {
        "table1" => Some(vec![mm::table1()]),
        "fig4a" => Some(vec![mm::base_sweep(scale, opts).remove(0)]),
        "fig4b" => Some(vec![mm::base_sweep(scale, opts).remove(1)]),
        "fig4c" => Some(vec![mm::base_sweep(scale, opts).remove(2)]),
        "fig4d" => Some(vec![mm::high_variance_sweep(scale, opts).remove(0)]),
        "fig4e" => Some(vec![mm::high_variance_sweep(scale, opts).remove(1)]),
        "fig4f" => Some(vec![mm::db_size_sweep(scale, opts)]),
        "fig5a" => Some(vec![mm::penalty_weight_sweep(scale, opts)]),
        "table2" => Some(vec![disk::table2()]),
        "fig5b" => Some(vec![disk::base_sweep(scale, opts).remove(0)]),
        "fig5c" => Some(vec![disk::base_sweep(scale, opts).remove(2)]),
        "fig5d" => Some(vec![disk::base_sweep(scale, opts).remove(1)]),
        "fig5e" => Some(vec![disk::db_size_sweep(scale, opts)]),
        "fig5f" => Some(vec![disk::penalty_weight_sweep(scale, opts)]),
        "ablate-recovery" => Some(vec![ablate::recovery_cost(scale, opts)]),
        "ablate-iowait" => Some(vec![ablate::iowait_mechanism(scale, opts)]),
        "ablate-policies" => Some(vec![ablate::policy_zoo(scale, opts)]),
        "ablate-disk-sched" => Some(vec![ablate::disk_scheduling(scale, opts)]),
        "ext-shared-locks" => Some(vec![ablate::shared_locks(scale, opts)]),
        "ext-criticality" => Some(vec![ablate::criticality_classes(scale, opts)]),
        "ext-branching" => Some(vec![ablate::branching_workload(scale, opts)]),
        "faults" => Some(vec![faults::severity_sweep(scale, opts)]),
        "faults-admission" => Some(vec![faults::admission_sweep(scale, opts)]),
        "serve-vt" => Some(vec![serve::vt_sweep(scale, opts)]),
        "chaos" => Some(vec![chaos::overload_sweep(scale, opts)]),
        "chaos-crash" => Some(vec![chaos::crash_supervision(scale, opts)]),
        _ => None,
    }
}

/// Run the requested ids group by group, delivering each group's tables
/// and timing to `emit` as soon as the group completes. Ids that share a
/// sweep are computed once.
pub fn run_group_with(
    ids: &[&str],
    scale: Scale,
    opts: &ReplicationOptions,
    mut emit: impl FnMut(GroupReport),
) {
    let want = |id: &str| ids.contains(&id) || ids.contains(&"all");
    let mut group = |group_ids: &[&'static str],
                     compute: &dyn Fn(&ReplicationOptions) -> Vec<Table>| {
        let wanted: Vec<&'static str> = group_ids.iter().copied().filter(|id| want(id)).collect();
        if wanted.is_empty() {
            return;
        }
        let timer = Arc::new(ReplicationTimer::new());
        let timed = opts.clone().with_timer(Arc::clone(&timer));
        let start = Instant::now();
        let tables: Vec<Table> = compute(&timed)
            .into_iter()
            .filter(|t| want(&t.title))
            .collect();
        emit(GroupReport {
            ids: wanted,
            tables,
            runs: timer.runs(),
            wall_seconds: start.elapsed().as_secs_f64(),
            busy_seconds: timer.busy().as_secs_f64(),
        });
    };

    group(&["table1"], &|_| vec![mm::table1()]);
    group(&["fig4a", "fig4b", "fig4c"], &|o| mm::base_sweep(scale, o));
    group(&["fig4d", "fig4e"], &|o| mm::high_variance_sweep(scale, o));
    group(&["fig4f"], &|o| vec![mm::db_size_sweep(scale, o)]);
    group(&["fig5a"], &|o| vec![mm::penalty_weight_sweep(scale, o)]);
    group(&["table2"], &|_| vec![disk::table2()]);
    // The disk sweep emits [fig5b, fig5d, fig5c] (figure order differs
    // from column order in the paper); emission order is preserved.
    group(&["fig5b", "fig5d", "fig5c"], &|o| {
        disk::base_sweep(scale, o)
    });
    group(&["fig5e"], &|o| vec![disk::db_size_sweep(scale, o)]);
    group(&["fig5f"], &|o| vec![disk::penalty_weight_sweep(scale, o)]);
    group(&["ablate-recovery"], &|o| {
        vec![ablate::recovery_cost(scale, o)]
    });
    group(&["ablate-iowait"], &|o| {
        vec![ablate::iowait_mechanism(scale, o)]
    });
    group(&["ablate-policies"], &|o| {
        vec![ablate::policy_zoo(scale, o)]
    });
    group(&["ablate-disk-sched"], &|o| {
        vec![ablate::disk_scheduling(scale, o)]
    });
    group(&["ext-shared-locks"], &|o| {
        vec![ablate::shared_locks(scale, o)]
    });
    group(&["ext-criticality"], &|o| {
        vec![ablate::criticality_classes(scale, o)]
    });
    group(&["ext-branching"], &|o| {
        vec![ablate::branching_workload(scale, o)]
    });
    group(&["faults"], &|o| vec![faults::severity_sweep(scale, o)]);
    group(&["faults-admission"], &|o| {
        vec![faults::admission_sweep(scale, o)]
    });
    group(&["serve-vt"], &|o| vec![serve::vt_sweep(scale, o)]);
    group(&["chaos"], &|o| vec![chaos::overload_sweep(scale, o)]);
    group(&["chaos-crash"], &|o| {
        vec![chaos::crash_supervision(scale, o)]
    });
}

/// Collect all tables of the requested ids, serially (convenience over
/// [`run_group_with`]).
pub fn run_group(ids: &[&str], scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    run_group_with(ids, scale, &ReplicationOptions::serial(), |report| {
        out.extend(report.tables)
    });
    out
}

/// One (EDF-HP, CCA) comparison at a single configuration.
pub(crate) struct Pair {
    pub edf: AggregateSummary,
    pub cca: AggregateSummary,
}

/// Run EDF-HP and CCA(base) on the same configuration and replication
/// count.
pub(crate) fn compare(cfg: &SimConfig, reps: usize, opts: &ReplicationOptions) -> Pair {
    Pair {
        edf: run_replications_with(cfg, &EdfHp, reps, opts),
        cca: run_replications_with(cfg, &Cca::base(), reps, opts),
    }
}

impl Pair {
    /// The paper's improvement percentages `(EDF − CCA)/EDF × 100` for
    /// miss percent and mean lateness.
    pub fn improvements(&self) -> (f64, f64) {
        (
            improvement_percent(self.edf.miss_percent.mean, self.cca.miss_percent.mean),
            improvement_percent(
                self.edf.mean_lateness_ms.mean,
                self.cca.mean_lateness_ms.mean,
            ),
        )
    }
}
