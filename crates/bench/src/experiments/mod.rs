//! The experiment registry: one entry per table/figure of the paper plus
//! the ablation/extension studies from DESIGN.md.

use rtx_core::{Cca, EdfHp};
use rtx_rtdb::runner::{improvement_percent, run_replications, AggregateSummary};
use rtx_rtdb::SimConfig;

use crate::table::Table;
use crate::Scale;

pub mod ablate;
pub mod disk;
pub mod mm;

/// All experiment ids, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "table1", "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig5a", "table2", "fig5b",
    "fig5c", "fig5d", "fig5e", "fig5f", "ablate-recovery", "ablate-iowait", "ablate-policies", "ablate-disk-sched",
    "ext-shared-locks", "ext-criticality", "ext-branching",
];

/// Run one experiment by id. Returns the tables it produces (several ids
/// share one underlying sweep; each id returns only its own tables).
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    match id {
        "table1" => Some(vec![mm::table1()]),
        "fig4a" => Some(vec![mm::base_sweep(scale).remove(0)]),
        "fig4b" => Some(vec![mm::base_sweep(scale).remove(1)]),
        "fig4c" => Some(vec![mm::base_sweep(scale).remove(2)]),
        "fig4d" => Some(vec![mm::high_variance_sweep(scale).remove(0)]),
        "fig4e" => Some(vec![mm::high_variance_sweep(scale).remove(1)]),
        "fig4f" => Some(vec![mm::db_size_sweep(scale)]),
        "fig5a" => Some(vec![mm::penalty_weight_sweep(scale)]),
        "table2" => Some(vec![disk::table2()]),
        "fig5b" => Some(vec![disk::base_sweep(scale).remove(0)]),
        "fig5c" => Some(vec![disk::base_sweep(scale).remove(2)]),
        "fig5d" => Some(vec![disk::base_sweep(scale).remove(1)]),
        "fig5e" => Some(vec![disk::db_size_sweep(scale)]),
        "fig5f" => Some(vec![disk::penalty_weight_sweep(scale)]),
        "ablate-recovery" => Some(vec![ablate::recovery_cost(scale)]),
        "ablate-iowait" => Some(vec![ablate::iowait_mechanism(scale)]),
        "ablate-policies" => Some(vec![ablate::policy_zoo(scale)]),
        "ablate-disk-sched" => Some(vec![ablate::disk_scheduling(scale)]),
        "ext-shared-locks" => Some(vec![ablate::shared_locks(scale)]),
        "ext-criticality" => Some(vec![ablate::criticality_classes(scale)]),
        "ext-branching" => Some(vec![ablate::branching_workload(scale)]),
        _ => None,
    }
}

/// Groups of ids that share a sweep, so `all` avoids recomputation.
/// Tables are delivered to `emit` as soon as their group completes.
pub fn run_group_with(ids: &[&str], scale: Scale, mut emit: impl FnMut(Table)) {
    let want = |id: &str| ids.contains(&id) || ids.contains(&"all");
    if want("table1") {
        emit(mm::table1());
    }
    if want("fig4a") || want("fig4b") || want("fig4c") {
        let tables = mm::base_sweep(scale);
        for (i, id) in ["fig4a", "fig4b", "fig4c"].iter().enumerate() {
            if want(id) {
                emit(tables[i].clone());
            }
        }
    }
    if want("fig4d") || want("fig4e") {
        let tables = mm::high_variance_sweep(scale);
        for (i, id) in ["fig4d", "fig4e"].iter().enumerate() {
            if want(id) {
                emit(tables[i].clone());
            }
        }
    }
    if want("fig4f") {
        emit(mm::db_size_sweep(scale));
    }
    if want("fig5a") {
        emit(mm::penalty_weight_sweep(scale));
    }
    if want("table2") {
        emit(disk::table2());
    }
    if want("fig5b") || want("fig5c") || want("fig5d") {
        let tables = disk::base_sweep(scale);
        // sweep emits [fig5b, fig5d, fig5c]; present in figure order.
        for (i, id) in ["fig5b", "fig5d", "fig5c"].iter().enumerate() {
            if want(id) {
                emit(tables[i].clone());
            }
        }
    }
    if want("fig5e") {
        emit(disk::db_size_sweep(scale));
    }
    if want("fig5f") {
        emit(disk::penalty_weight_sweep(scale));
    }
    if want("ablate-recovery") {
        emit(ablate::recovery_cost(scale));
    }
    if want("ablate-iowait") {
        emit(ablate::iowait_mechanism(scale));
    }
    if want("ablate-policies") {
        emit(ablate::policy_zoo(scale));
    }
    if want("ablate-disk-sched") {
        emit(ablate::disk_scheduling(scale));
    }
    if want("ext-shared-locks") {
        emit(ablate::shared_locks(scale));
    }
    if want("ext-criticality") {
        emit(ablate::criticality_classes(scale));
    }
    if want("ext-branching") {
        emit(ablate::branching_workload(scale));
    }
}

/// Collect all tables of the requested ids (convenience over
/// [`run_group_with`]).
pub fn run_group(ids: &[&str], scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    run_group_with(ids, scale, |t| out.push(t));
    out
}

/// One (EDF-HP, CCA) comparison at a single configuration.
pub(crate) struct Pair {
    pub edf: AggregateSummary,
    pub cca: AggregateSummary,
}

/// Run EDF-HP and CCA(base) on the same configuration and replication
/// count.
pub(crate) fn compare(cfg: &SimConfig, reps: usize) -> Pair {
    Pair {
        edf: run_replications(cfg, &EdfHp, reps),
        cca: run_replications(cfg, &Cca::base(), reps),
    }
}

impl Pair {
    /// The paper's improvement percentages `(EDF − CCA)/EDF × 100` for
    /// miss percent and mean lateness.
    pub fn improvements(&self) -> (f64, f64) {
        (
            improvement_percent(self.edf.miss_percent.mean, self.cca.miss_percent.mean),
            improvement_percent(
                self.edf.mean_lateness_ms.mean,
                self.cca.mean_lateness_ms.mean,
            ),
        )
    }
}

