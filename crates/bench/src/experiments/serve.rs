//! Serving-layer experiments: the deterministic virtual-time sweep
//! (`serve-vt`) and the wall-clock trading-day benchmark behind
//! `experiments -- serve`.
//!
//! The two are deliberately separate:
//!
//! * **`serve-vt`** replays the same trading-day traces through the
//!   serving front-end under the virtual clock. It is bit-deterministic
//!   (the serving loop's event order is pinned to the batch
//!   simulator's), so its CSV is committed and byte-gated like every
//!   other experiment.
//! * **`serve`** replays a millions-of-transactions trace against real
//!   time. Its requests/sec and latency numbers depend on the machine,
//!   so it writes `BENCH_serve.json` (benchmarked, never byte-gated)
//!   instead of a committed CSV.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rtx_core::{Cca, EdfHp, Lsf};
use rtx_rtdb::runner::ReplicationOptions;
use rtx_rtdb::{AdmissionConfig, Policy, SimConfig};
use rtx_serve::{ServeConfig, ServeReport, Server, TraceSpec};
use rtx_sim::SimTime;

use crate::table::Table;
use crate::Scale;

/// The engine configuration all serving experiments run on: the
/// main-memory resource model over the trace generator's 10 000-record
/// instrument table, with lenient feasibility admission at the door.
fn serve_cfg() -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.workload.db_size = 10_000;
    cfg.system.abort_cost_ms = 2.0;
    cfg.system.admission = Some(AdmissionConfig::lenient());
    cfg
}

/// A trace whose *average* arrival rate is `rate_tps`: the trading-day
/// preset with the day compressed so `txns` arrivals span it.
fn trace_at_rate(txns: usize, rate_tps: f64, seed: u64) -> TraceSpec {
    let mut spec = TraceSpec::trading_day(txns, seed);
    spec.day_secs = txns as f64 / rate_tps;
    spec
}

/// Replay `spec` through a virtual-clock server under `policy`.
fn replay_virtual(spec: TraceSpec, policy: Arc<dyn Policy + Send + Sync>) -> ServeReport {
    let server = Server::start(ServeConfig::virtual_mode(), Arc::new(serve_cfg()), policy)
        .expect("serve config is valid");
    for req in spec.stream() {
        server.submit(req).expect("server open");
    }
    server.shutdown()
}

/// The `serve-vt` sweep: policies × average load over the same per-load
/// trading-day traces, reporting outcome counts and latency quantiles.
/// Deterministic; joins `all` and the committed-CSV byte gate.
pub fn vt_sweep(scale: Scale, _opts: &ReplicationOptions) -> Table {
    let (txns, rates): (usize, &[f64]) = match scale {
        Scale::Quick => (2_000, &[40.0, 80.0]),
        Scale::Full => (20_000, &[20.0, 40.0, 60.0, 80.0]),
    };
    let policies: [(&str, Arc<dyn Policy + Send + Sync>); 3] = [
        ("EDF-HP", Arc::new(EdfHp)),
        ("CCA", Arc::new(Cca::base())),
        ("LSF", Arc::new(Lsf)),
    ];
    let mut t = Table::new(
        "serve-vt",
        &[
            "rate_tps",
            "policy",
            "committed",
            "rejected",
            "miss_percent",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "restarts_per_txn",
        ],
    );
    for &rate in rates {
        let spec = trace_at_rate(txns, rate, 0);
        for (name, policy) in &policies {
            let report = replay_virtual(spec.clone(), Arc::clone(policy));
            let s = &report.summary;
            let m = &report.metrics;
            t.push_row(vec![
                format!("{rate:.0}"),
                (*name).to_string(),
                s.committed.to_string(),
                s.rejected.to_string(),
                format!("{:.3}", s.miss_percent),
                format!("{:.3}", m.mean_ms),
                format!("{:.3}", m.p50_ms),
                format!("{:.3}", m.p95_ms),
                format!("{:.3}", m.p99_ms),
                format!("{:.3}", s.restarts_per_txn),
            ]);
        }
    }
    t
}

/// Knobs for the wall-clock serving benchmark.
#[derive(Debug, Clone)]
pub struct WallBench {
    /// Trace length (transactions).
    pub txns: usize,
    /// Sim microseconds per wall microsecond: how much faster than real
    /// time the trading day is replayed.
    pub sim_scale: f64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for WallBench {
    /// The acceptance configuration: a 1M-transaction trading day
    /// replayed 600× faster than real time (a 6.5-hour day in ~39 s of
    /// pacing floor).
    fn default() -> Self {
        WallBench {
            txns: 1_000_000,
            sim_scale: 600.0,
            seed: 42,
        }
    }
}

/// Run the wall-clock benchmark under CCA: an open-loop submitter paces
/// the trace against real time (falling back to back-pressure when the
/// engine lags), a monitor thread streams metrics snapshots to stderr,
/// and the headline JSON is returned as `(full, headline)` — the full
/// report for `results/BENCH_serving.json`, the headline for the
/// repo-root `BENCH_serve.json`.
pub fn wall_bench(opts: &WallBench) -> (String, String) {
    let spec = TraceSpec::trading_day(opts.txns, opts.seed);
    let sim_scale = opts.sim_scale;
    let mut serve = ServeConfig::wall(sim_scale);
    serve.queue_capacity = 8192;
    let server = Server::start(serve, Arc::new(serve_cfg()), Arc::new(Cca::base()))
        .expect("serve config is valid");

    let started = Instant::now();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Live observability: stream a metrics snapshot every ~2 s while
        // the trace is being served.
        scope.spawn(|| {
            let mut ticks = 0u32;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(100));
                ticks += 1;
                if ticks.is_multiple_of(20) && !stop.load(Ordering::Relaxed) {
                    eprintln!("{}", server.metrics().to_json());
                }
            }
        });
        // Open-loop pacing: sleep until each request's scaled arrival
        // instant, then submit (blocking submit = back-pressure when the
        // engine can't keep up).
        for req in spec.stream() {
            let target =
                Duration::from_secs_f64(req.arrival.since(SimTime::ZERO).as_secs() / sim_scale);
            let elapsed = started.elapsed();
            if target > elapsed + Duration::from_millis(1) {
                std::thread::sleep(target - elapsed);
            }
            server.submit(req).expect("server open");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let report = server.shutdown();
    let wall = started.elapsed().as_secs_f64();

    let s = &report.summary;
    let m = &report.metrics;
    let req_per_sec = (s.committed + s.rejected) as f64 / wall;
    println!(
        "serve: {} txns in {:.1}s wall — {:.0} req/s sustained ({}x sim time)",
        opts.txns, wall, req_per_sec, sim_scale
    );
    println!(
        "       latency p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms (wall)",
        m.p50_ms, m.p95_ms, m.p99_ms, m.max_ms
    );
    println!(
        "       miss {:.3}%  rejected {}  restarts/txn {:.3}",
        s.miss_percent, s.rejected, s.restarts_per_txn
    );

    let headline = format!(
        "{{\n  \"benchmark\": \"serve-trading-day\",\n  \"policy\": \"CCA\",\n  \
         \"txns\": {},\n  \"sim_scale\": {:.1},\n  \"wall_seconds\": {:.3},\n  \
         \"requests_per_sec\": {:.1},\n  \"p50_ms\": {:.4},\n  \"p95_ms\": {:.4},\n  \
         \"p99_ms\": {:.4},\n  \"miss_percent\": {:.4}\n}}\n",
        opts.txns, sim_scale, wall, req_per_sec, m.p50_ms, m.p95_ms, m.p99_ms, s.miss_percent
    );
    let full = format!(
        "{{\n  \"benchmark\": \"serve-trading-day\",\n  \"policy\": \"CCA\",\n  \
         \"txns\": {},\n  \"sim_scale\": {:.1},\n  \"seed\": {},\n  \
         \"wall_seconds\": {:.3},\n  \"requests_per_sec\": {:.1},\n  \
         \"committed\": {},\n  \"rejected\": {},\n  \"missed_percent\": {:.4},\n  \
         \"restarts_per_txn\": {:.4},\n  \"final_metrics\": {}\n}}\n",
        opts.txns,
        sim_scale,
        opts.seed,
        wall,
        req_per_sec,
        s.committed,
        s.rejected,
        s.miss_percent,
        s.restarts_per_txn,
        m.to_json()
    );
    (full, headline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vt_sweep_quick_is_deterministic() {
        let a = vt_sweep(Scale::Quick, &ReplicationOptions::serial());
        let b = vt_sweep(Scale::Quick, &ReplicationOptions::serial());
        assert_eq!(
            a.to_csv(),
            b.to_csv(),
            "virtual serving must replay identically"
        );
        assert_eq!(a.rows().len(), 2 * 3, "2 rates x 3 policies");
    }

    #[test]
    fn wall_bench_smoke() {
        // A tiny trace at a high sim scale: finishes in well under a
        // second while exercising the full pacing + shutdown path.
        let (full, headline) = wall_bench(&WallBench {
            txns: 500,
            sim_scale: 50_000.0,
            seed: 1,
        });
        for key in ["requests_per_sec", "p99_ms", "wall_seconds"] {
            assert!(headline.contains(key), "missing {key}");
            assert!(full.contains(key), "missing {key}");
        }
    }
}
