//! Main-memory experiments (§4, Figure 4 and Table 1).

use rtx_core::Cca;
use rtx_rtdb::runner::{run_replications_with, ReplicationOptions};
use rtx_rtdb::SimConfig;

use super::compare;
use crate::table::Table;
use crate::Scale;

/// Replications for the main-memory experiments ("10 different random
/// number seeds").
const MM_REPS: usize = 10;
/// Transactions per run ("1000 transactions are executed at each run").
const MM_TXNS: usize = 1000;

/// Table 1: the base parameters, rendered as the paper prints them.
pub fn table1() -> Table {
    let cfg = SimConfig::mm_base();
    let mut t = Table::new("table1", &["Parameter", "Value"]);
    let w = &cfg.workload;
    t.push_row(vec!["Transaction type".into(), w.num_types.to_string()]);
    t.push_row(vec![
        "Update per transaction (mean, std)".into(),
        format!("({}, {})", w.updates_mean, w.updates_std),
    ]);
    t.push_row(vec![
        "Computation/update (ms)".into(),
        format!("{}", w.update_time_classes_ms[0]),
    ]);
    t.push_row(vec!["Database size".into(), w.db_size.to_string()]);
    t.push_row(vec![
        "Min-slack as fraction of total runtime".into(),
        format!("{}%", w.min_slack * 100.0),
    ]);
    t.push_row(vec![
        "Max-slack as fraction of total runtime".into(),
        format!("{}%", w.max_slack * 100.0),
    ]);
    t.push_row(vec![
        "abort cost (ms)".into(),
        format!("{}", cfg.system.abort_cost_ms),
    ]);
    t.push_row(vec!["weight of penalty of conflict".into(), "1".into()]);
    t.push_row(vec![
        "CPU capacity (derived, trs/sec)".into(),
        format!("{:.1}", cfg.cpu_capacity_tps()),
    ]);
    t
}

/// Figures 4.a–4.c: the base-parameter arrival-rate sweep (1–10 tps).
/// Returns `[fig4a (miss %), fig4b (improvement), fig4c (restarts/txn)]`.
pub fn base_sweep(scale: Scale, opts: &ReplicationOptions) -> Vec<Table> {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = scale.txns(MM_TXNS);
    let reps = scale.reps(MM_REPS);
    let rates: Vec<f64> = (1..=10).map(|r| r as f64).collect();

    let mut fig4a = Table::new(
        "fig4a",
        &[
            "arrival_tps",
            "edf_miss_pct",
            "cca_miss_pct",
            "edf_ci",
            "cca_ci",
        ],
    );
    let mut fig4b = Table::new(
        "fig4b",
        &["arrival_tps", "improve_miss_pct", "improve_lateness_pct"],
    );
    let mut fig4c = Table::new(
        "fig4c",
        &[
            "arrival_tps",
            "edf_restarts_per_txn",
            "cca_restarts_per_txn",
        ],
    );
    for &rate in &rates {
        cfg.run.arrival_rate_tps = rate;
        let pair = compare(&cfg, reps, opts);
        fig4a.push_numeric_row(&[
            rate,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
            pair.edf.miss_percent.half_width,
            pair.cca.miss_percent.half_width,
        ]);
        let (im, il) = pair.improvements();
        fig4b.push_numeric_row(&[rate, im, il]);
        fig4c.push_numeric_row(&[
            rate,
            pair.edf.restarts_per_txn.mean,
            pair.cca.restarts_per_txn.mean,
        ]);
    }
    vec![fig4a, fig4b, fig4c]
}

/// Figures 4.d–4.e: high-variance update times (3 classes: 0.4/4/40 ms),
/// arrival 0.2–1.8 tps. Returns `[fig4d (miss %), fig4e (improvement)]`.
pub fn high_variance_sweep(scale: Scale, opts: &ReplicationOptions) -> Vec<Table> {
    let mut cfg = SimConfig::mm_high_variance();
    cfg.run.num_transactions = scale.txns(MM_TXNS);
    let reps = scale.reps(MM_REPS);
    let rates: Vec<f64> = (1..=9).map(|r| r as f64 * 0.2).collect();

    let mut fig4d = Table::new("fig4d", &["arrival_tps", "edf_miss_pct", "cca_miss_pct"]);
    let mut fig4e = Table::new(
        "fig4e",
        &["arrival_tps", "improve_miss_pct", "improve_lateness_pct"],
    );
    for &rate in &rates {
        cfg.run.arrival_rate_tps = rate;
        let pair = compare(&cfg, reps, opts);
        fig4d.push_numeric_row(&[rate, pair.edf.miss_percent.mean, pair.cca.miss_percent.mean]);
        let (im, il) = pair.improvements();
        fig4e.push_numeric_row(&[rate, im, il]);
    }
    vec![fig4d, fig4e]
}

/// Figure 4.f: effect of database size at arrival rate 10.
pub fn db_size_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = scale.txns(MM_TXNS);
    cfg.run.arrival_rate_tps = 10.0;
    let reps = scale.reps(MM_REPS);

    let mut t = Table::new("fig4f", &["db_size", "edf_miss_pct", "cca_miss_pct"]);
    for db in (100..=1000).step_by(100) {
        cfg.workload.db_size = db;
        let pair = compare(&cfg, reps, opts);
        t.push_numeric_row(&[
            db as f64,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
        ]);
    }
    t
}

/// Figure 5.a: stability of the penalty weight (miss % vs `w` at 5 and
/// 8 tps, main memory). `w = 0` is EDF-HP.
pub fn penalty_weight_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = scale.txns(MM_TXNS);
    let reps = scale.reps(MM_REPS);
    let weights = [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0];

    let mut t = Table::new(
        "fig5a",
        &["penalty_weight", "miss_pct_5tps", "miss_pct_8tps"],
    );
    for &w in &weights {
        let mut row = vec![w];
        for rate in [5.0, 8.0] {
            cfg.run.arrival_rate_tps = rate;
            let agg = run_replications_with(&cfg, &Cca::new(w), reps, opts);
            row.push(agg.miss_percent.mean);
        }
        t.push_numeric_row(&row);
    }
    t
}
