//! Fault-injection and overload robustness experiments (extension).
//!
//! The paper evaluates CCA under clean overload; these sweeps ask what
//! happens when the disk itself misbehaves. `faults` sweeps injected
//! fault severity at a fixed arrival rate and reports the miss percent
//! of EDF-HP vs CCA together with the injection accounting (faults,
//! retries, budget-exhausted restarts, wasted disk hold). The severity
//! knob drives the transient-error and latency-spike probabilities and,
//! from the midpoint up, adds a recurring brownout window.
//! `faults-admission` sweeps the arrival rate under a moderate fault
//! plan and compares CCA with admission control off vs on, reporting
//! the missed/rejected decomposition.

use rtx_core::Cca;
use rtx_rtdb::config::AdmissionConfig;
use rtx_rtdb::runner::{run_replications_with, ReplicationOptions};
use rtx_rtdb::SimConfig;
use rtx_sim::fault::{Brownout, FaultPlan};

use super::compare;
use crate::table::Table;
use crate::Scale;

/// Replications, matching the disk-resident experiments.
const FAULT_REPS: usize = 30;
/// Transactions per run, matching the disk-resident experiments.
const FAULT_TXNS: usize = 300;

/// The fault plan at a given severity in `[0, 1]`.
///
/// Severity scales the transient-error probability up to 0.3 and the
/// spike probability up to 0.4; severities ≥ 0.5 also switch on a
/// brownout window covering 10% of simulated time.
pub(crate) fn plan_at(severity: f64) -> FaultPlan {
    let mut plan = FaultPlan {
        error_prob: 0.3 * severity,
        spike_prob: 0.4 * severity,
        spike_factor: 3.0,
        retry_budget: 3,
        backoff_base_ms: 5.0,
        backoff_cap_ms: 40.0,
        brownout: None,
        cpu: None,
    };
    if severity >= 0.5 {
        plan.brownout = Some(Brownout {
            period_ms: 5_000.0,
            duration_ms: 500.0,
            error_prob: (2.0 * plan.error_prob).min(1.0),
            latency_factor: 2.0,
        });
    }
    plan
}

/// `faults`: miss percent and fault accounting vs injected severity at
/// 4 tps (disk resident).
pub fn severity_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = scale.txns(FAULT_TXNS);
    cfg.run.arrival_rate_tps = 4.0;
    let reps = scale.reps(FAULT_REPS);
    let severities = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];

    let mut t = Table::new(
        "faults",
        &[
            "severity",
            "edf_miss_pct",
            "cca_miss_pct",
            "injected_faults",
            "io_retries",
            "exhausted_aborts",
            "wasted_hold_ms",
        ],
    );
    for &severity in &severities {
        cfg.system.faults = plan_at(severity);
        let pair = compare(&cfg, reps, opts);
        t.push_numeric_row(&[
            severity,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
            pair.cca.injected_io_faults.mean,
            pair.cca.io_retries.mean,
            pair.cca.io_exhausted_aborts.mean,
            pair.cca.wasted_disk_hold_ms.mean,
        ]);
    }
    t
}

/// `faults-admission`: CCA with admission control off vs on across an
/// overload arrival-rate sweep under a moderate (severity 0.5) plan.
pub fn admission_sweep(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::disk_base();
    cfg.run.num_transactions = scale.txns(FAULT_TXNS);
    cfg.system.faults = plan_at(0.5);
    let reps = scale.reps(FAULT_REPS);
    let rates: Vec<f64> = (2..=8).step_by(2).map(|r| r as f64).collect();

    let mut t = Table::new(
        "faults-admission",
        &[
            "arrival_tps",
            "cca_miss_pct",
            "adm_miss_pct",
            "adm_rejected_pct",
            "adm_restarts_per_txn",
        ],
    );
    for &rate in &rates {
        cfg.run.arrival_rate_tps = rate;
        cfg.system.admission = None;
        let off = run_replications_with(&cfg, &Cca::base(), reps, opts);
        cfg.system.admission = Some(AdmissionConfig::Static { safety_factor: 2.0 });
        let on = run_replications_with(&cfg, &Cca::base(), reps, opts);
        t.push_numeric_row(&[
            rate,
            off.miss_percent.mean,
            on.miss_percent.mean,
            on.rejected_percent.mean,
            on.restarts_per_txn.mean,
        ]);
    }
    t
}
