//! Ablation and extension studies (beyond the paper's figures; indexed in
//! DESIGN.md).
//!
//! * `ablate-recovery` — §6's conjecture: with recovery cost proportional
//!   to the destroyed work, CCA's advantage over EDF-HP grows;
//! * `ablate-iowait` — isolates CCA's two mechanisms on disk workloads by
//!   disabling the `IOwait-schedule` restriction while keeping the
//!   penalty term;
//! * `ablate-policies` — the full policy zoo (FCFS, LSF, EDF-HP,
//!   EDF-Wait, CCA) across the base arrival sweep;
//! * `ext-branching` — transaction programs *with decision points*: the
//!   analytic `mightaccess` narrows mid-execution, exercising the
//!   conditional conflict/safety machinery the paper left unsimulated.

use rtx_core::{Cca, Criticality, EdfHp, EdfWait, Fcfs, Lsf};
use rtx_preanalysis::sets::{DataSet, ItemId};
use rtx_preanalysis::table::TypeId;
use rtx_rtdb::engine::run_simulation_from;
use rtx_rtdb::policy::{Policy, Priority, SystemView};
use rtx_rtdb::runner::{run_replications_with, run_seeds, ReplicationOptions};
use rtx_rtdb::source::ReplaySource;
use rtx_rtdb::txn::{DecisionSpec, Stage, Transaction, TxnId, TxnState};
use rtx_rtdb::{RunSummary, SimConfig};
use rtx_sim::dist::{exponential, sample_distinct, uniform_below, uniform_range};
use rtx_sim::rng::StreamSeeder;
use rtx_sim::stats::Replications;
use rtx_sim::time::{SimDuration, SimTime};

use super::compare;
use crate::table::Table;
use crate::Scale;

/// CCA's penalty term *without* the IO-wait restriction, used to attribute
/// the disk-resident gains to the right mechanism.
struct CcaNoIowait(Cca);

impl Policy for CcaNoIowait {
    fn name(&self) -> &str {
        "CCA-no-iowait"
    }
    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority {
        self.0.priority(txn, view)
    }
    fn iowait_restrict(&self) -> bool {
        false
    }
}

/// `ablate-recovery`: flat vs work-proportional rollback cost.
pub fn recovery_cost(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut t = Table::new(
        "ablate-recovery",
        &[
            "arrival_tps",
            "improve_miss_flat",
            "improve_miss_prop",
            "improve_late_flat",
            "improve_late_prop",
        ],
    );
    let reps = scale.reps(10);
    for rate in [6.0, 8.0, 10.0] {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = scale.txns(1000);
        cfg.run.arrival_rate_tps = rate;
        let flat = compare(&cfg, reps, opts);
        cfg.system.proportional_recovery = true;
        let prop = compare(&cfg, reps, opts);
        let (fm, fl) = flat.improvements();
        let (pm, pl) = prop.improvements();
        t.push_numeric_row(&[rate, fm, pm, fl, pl]);
    }
    t
}

/// `ablate-iowait`: CCA vs CCA-without-IOwait-schedule vs EDF-HP on the
/// disk-resident base sweep.
pub fn iowait_mechanism(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut t = Table::new(
        "ablate-iowait",
        &[
            "arrival_tps",
            "edf_miss",
            "cca_noiowait_miss",
            "cca_miss",
            "edf_noncontrib",
            "cca_noiowait_noncontrib",
            "cca_noncontrib",
        ],
    );
    let reps = scale.reps(30);
    for rate in [2.0, 4.0, 6.0] {
        let mut cfg = SimConfig::disk_base();
        cfg.run.num_transactions = scale.txns(300);
        cfg.run.arrival_rate_tps = rate;
        let edf = run_replications_with(&cfg, &EdfHp, reps, opts);
        let no_iowait = run_replications_with(&cfg, &CcaNoIowait(Cca::base()), reps, opts);
        let cca = run_replications_with(&cfg, &Cca::base(), reps, opts);
        t.push_numeric_row(&[
            rate,
            edf.miss_percent.mean,
            no_iowait.miss_percent.mean,
            cca.miss_percent.mean,
            edf.noncontributing_aborts.mean,
            no_iowait.noncontributing_aborts.mean,
            cca.noncontributing_aborts.mean,
        ]);
    }
    t
}

/// `ablate-policies`: miss percent of every policy across the base sweep.
pub fn policy_zoo(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut t = Table::new(
        "ablate-policies",
        &["arrival_tps", "fcfs", "lsf", "edf_hp", "edf_wait", "cca"],
    );
    let reps = scale.reps(10);
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(Fcfs),
        Box::new(Lsf),
        Box::new(EdfHp),
        Box::new(EdfWait),
        Box::new(Cca::base()),
    ];
    for rate in [2.0, 4.0, 6.0, 8.0, 10.0] {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = scale.txns(1000);
        cfg.run.arrival_rate_tps = rate;
        let mut row = vec![rate];
        for p in &policies {
            row.push(
                run_replications_with(&cfg, p.as_ref(), reps, opts)
                    .miss_percent
                    .mean,
            );
        }
        t.push_numeric_row(&row);
    }
    t
}

/// `ext-shared-locks`: the §6 extension — a growing fraction of updates
/// take shared (read) locks. Read-read compatibility lowers contention,
/// shrinking both policies' miss rates and the gap between them.
pub fn shared_locks(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut t = Table::new(
        "ext-shared-locks",
        &[
            "read_fraction",
            "edf_miss",
            "cca_miss",
            "edf_restarts",
            "cca_restarts",
        ],
    );
    let reps = scale.reps(10);
    for read_frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.read_probability = read_frac;
        cfg.run.num_transactions = scale.txns(1000);
        cfg.run.arrival_rate_tps = 8.0;
        let pair = compare(&cfg, reps, opts);
        t.push_numeric_row(&[
            read_frac,
            pair.edf.miss_percent.mean,
            pair.cca.miss_percent.mean,
            pair.edf.restarts_per_txn.mean,
            pair.cca.restarts_per_txn.mean,
        ]);
    }
    t
}

/// `ablate-disk-sched`: FCFS vs earliest-deadline disk queueing (§3.3.2
/// cites real-time IO scheduling as a complementary way to reduce IO
/// waits). Both policies run on both disciplines.
pub fn disk_scheduling(scale: Scale, opts: &ReplicationOptions) -> Table {
    use rtx_rtdb::DiskDiscipline;
    let mut t = Table::new(
        "ablate-disk-sched",
        &[
            "arrival_tps",
            "edf_fcfs_miss",
            "edf_edfdisk_miss",
            "cca_fcfs_miss",
            "cca_edfdisk_miss",
        ],
    );
    let reps = scale.reps(30);
    for rate in [3.0, 5.0, 7.0] {
        let mut cfg = SimConfig::disk_base();
        cfg.run.num_transactions = scale.txns(300);
        cfg.run.arrival_rate_tps = rate;
        let mut row = vec![rate];
        for policy in [&EdfHp as &dyn Policy, &Cca::base()] {
            for discipline in [DiskDiscipline::Fcfs, DiskDiscipline::EarliestDeadline] {
                let mut c = cfg.clone();
                c.system.disk.as_mut().expect("disk config").discipline = discipline;
                row.push(
                    run_replications_with(&c, policy, reps, opts)
                        .miss_percent
                        .mean,
                );
            }
        }
        t.push_numeric_row(&row);
    }
    t
}

/// `ext-criticality`: the §6 "multiple criticalness" extension — 20% of
/// instances are high-criticality; the `Criticality` wrapper orders
/// classes lexicographically above the base policy. The question: how
/// completely is the critical class protected, and what does the normal
/// class pay?
pub fn criticality_classes(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut t = Table::new(
        "ext-criticality",
        &[
            "arrival_tps",
            "cca_miss_all",
            "crit_cca_miss_hi",
            "crit_cca_miss_lo",
            "crit_edf_miss_hi",
            "crit_edf_miss_lo",
        ],
    );
    let reps = scale.reps(10);
    for rate in [6.0, 8.0, 10.0] {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.high_criticality_fraction = 0.2;
        cfg.run.num_transactions = scale.txns(1000);
        cfg.run.arrival_rate_tps = rate;

        // Baseline: class-blind CCA (criticality ignored).
        let blind = run_replications_with(&cfg, &Cca::base(), reps, opts);
        // Class-aware CCA and EDF: run both policies per seed (possibly
        // in parallel), then fold per-class miss rates in seed order.
        let per_seed = run_seeds(reps, opts, |rep| {
            let mut run_cfg = cfg.clone();
            run_cfg.run.seed = rep as u64;
            (
                rtx_rtdb::run_simulation(&run_cfg, &Criticality::new(Cca::base())),
                rtx_rtdb::run_simulation(&run_cfg, &Criticality::new(EdfHp)),
            )
        });
        let mut crit_cca = [Replications::new(), Replications::new()];
        let mut crit_edf = [Replications::new(), Replications::new()];
        for (c, e) in per_seed {
            for (agg, s) in [(&mut crit_cca, c), (&mut crit_edf, e)] {
                for (class, slot) in agg.iter_mut().enumerate() {
                    slot.record(s.miss_percent_by_class.get(class).copied().unwrap_or(0.0));
                }
            }
        }
        t.push_numeric_row(&[
            rate,
            blind.miss_percent.mean,
            crit_cca[1].estimate().mean,
            crit_cca[0].estimate().mean,
            crit_edf[1].estimate().mean,
            crit_edf[0].estimate().mean,
        ]);
    }
    t
}

/// Build one replication of the branching workload: types with a common
/// prefix and two alternative suffixes. The instance's concrete items
/// follow the branch its "program semantics" takes, but the analysis only
/// learns the branch when the decision point executes.
fn branching_workload_txns(cfg: &SimConfig, seed: u64, narrowing: bool) -> Vec<Transaction> {
    let seeder = StreamSeeder::new(seed);
    let mut type_rng = seeder.stream("branch-types");
    let db = cfg.workload.db_size;

    struct BranchType {
        prefix: Vec<ItemId>,
        suffixes: [Vec<ItemId>; 2],
        full: DataSet,
        update_time: SimDuration,
    }
    let types: Vec<BranchType> = (0..cfg.workload.num_types)
        .map(|k| {
            // A short common prefix and two large alternative suffixes:
            // the decision point executes early and rules out 8 of the 20
            // items, so the refinement has real leverage.
            let drawn = sample_distinct(&mut type_rng, db, 20);
            let ids: Vec<ItemId> = drawn.into_iter().map(|i| ItemId(i as u32)).collect();
            let prefix = ids[0..4].to_vec();
            let sa = ids[4..12].to_vec();
            let sb = ids[12..20].to_vec();
            let full = ids.iter().copied().collect();
            BranchType {
                prefix,
                suffixes: [sa, sb],
                full,
                update_time: cfg.workload.update_time_for_type(k),
            }
        })
        .collect();

    let mut arr_rng = seeder.stream("branch-arrivals");
    let mut pick_rng = seeder.stream("branch-pick");
    let mut slack_rng = seeder.stream("branch-slack");
    let mut io_rng = seeder.stream("branch-io");
    let mut clock = SimTime::ZERO;
    (0..cfg.run.num_transactions)
        .map(|i| {
            let gap = exponential(&mut arr_rng, 1.0 / cfg.run.arrival_rate_tps);
            clock += SimDuration::from_secs(gap);
            let ty_idx = uniform_below(&mut pick_rng, types.len() as u64) as usize;
            let branch = uniform_below(&mut pick_rng, 2) as usize;
            let ty = &types[ty_idx];
            let mut items = ty.prefix.clone();
            items.extend_from_slice(&ty.suffixes[branch]);
            let narrowed: DataSet = items.iter().copied().collect();
            let io_pattern: Vec<bool> = match &cfg.system.disk {
                None => Vec::new(),
                Some(d) => (0..items.len())
                    .map(|_| rtx_sim::dist::bernoulli(&mut io_rng, d.access_prob))
                    .collect(),
            };
            let io_time = match &cfg.system.disk {
                None => SimDuration::ZERO,
                Some(d) => d.access_time() * io_pattern.iter().filter(|&&b| b).count() as u64,
            };
            let resource_time = ty.update_time * items.len() as u64 + io_time;
            let slack = uniform_range(
                &mut slack_rng,
                cfg.workload.min_slack,
                cfg.workload.max_slack,
            );
            let deadline = clock + resource_time.scale(1.0 + slack);
            Transaction {
                id: TxnId(i as u32),
                ty: TypeId(ty_idx as u32),
                arrival: clock,
                deadline,
                resource_time,
                items,
                io_pattern,
                modes: Vec::new(),
                update_time: ty.update_time,
                might_access: ty.full.clone(),
                state: TxnState::Ready,
                progress: 0,
                stage: Stage::Lock,
                cpu_left: SimDuration::ZERO,
                burst_start: SimTime::ZERO,
                accessed: DataSet::new(),
                written: DataSet::new(),
                service: SimDuration::ZERO,
                restarts: 0,
                waiting_for: None,
                decision: narrowing.then(|| DecisionSpec {
                    after_update: ty.prefix.len(),
                    full: ty.full.clone(),
                    narrowed,
                }),
                criticality: 0,
                doomed: false,
                doomed_at: SimTime::ZERO,
                io_retries: 0,
                retry_token: 0,
                finish: None,
            }
        })
        .collect()
}

/// One replication of the branching experiment under one policy.
fn run_branching(cfg: &SimConfig, policy: &dyn Policy, seed: u64, narrowing: bool) -> RunSummary {
    let txns = branching_workload_txns(cfg, seed, narrowing);
    let n = txns.len();
    let mut source = ReplaySource::new(txns);
    run_simulation_from(cfg, policy, &mut source, n)
}

/// `ext-branching`: CCA pricing conditional conflicts with narrowing
/// (`cca_narrow`) vs the pessimistic analysis (`cca_pessim`) vs EDF-HP,
/// on a **disk-resident** branching-program workload over a 60-item
/// database. Disk residence is where the refinement has leverage: the
/// `IOwait-schedule` compatibility test admits more secondaries once a
/// partial transaction's `mightaccess` has narrowed past its decision
/// point. (On main memory the refinement only perturbs penalties and is
/// empirically inert — a null result recorded in EXPERIMENTS.md.)
pub fn branching_workload(scale: Scale, opts: &ReplicationOptions) -> Table {
    let mut cfg = SimConfig::disk_base();
    cfg.workload.db_size = 60; // room for 20-item branching types
    cfg.run.num_transactions = scale.txns(300);
    let reps = scale.reps(20);

    let mut t = Table::new(
        "ext-branching",
        &[
            "arrival_tps",
            "edf_miss",
            "cca_pessim_miss",
            "cca_narrow_miss",
        ],
    );
    for rate in [3.0, 5.0, 7.0] {
        cfg.run.arrival_rate_tps = rate;
        let per_seed = run_seeds(reps, opts, |rep| {
            let seed = rep as u64;
            (
                run_branching(&cfg, &EdfHp, seed, false).miss_percent,
                run_branching(&cfg, &Cca::base(), seed, false).miss_percent,
                run_branching(&cfg, &Cca::base(), seed, true).miss_percent,
            )
        });
        let mut edf = Replications::new();
        let mut pessim = Replications::new();
        let mut narrow = Replications::new();
        for (e, p, n) in per_seed {
            edf.record(e);
            pessim.record(p);
            narrow.record(n);
        }
        t.push_numeric_row(&[
            rate,
            edf.estimate().mean,
            pessim.estimate().mean,
            narrow.estimate().mean,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branching_txns_well_formed() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 60;
        cfg.run.num_transactions = 20;
        let txns = branching_workload_txns(&cfg, 1, true);
        assert!(txns.iter().all(|t| t.io_pattern.is_empty()), "mm: no io");
        assert_eq!(txns.len(), 20);
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i);
            assert_eq!(t.items.len(), 12, "prefix 4 + suffix 8");
            let d = t.decision.as_ref().unwrap();
            assert_eq!(d.after_update, 4);
            // narrowed ⊆ full, and the concrete items are the narrowed set.
            assert!(d.narrowed.is_subset(&d.full));
            let concrete: DataSet = t.items.iter().copied().collect();
            assert_eq!(concrete, d.narrowed);
            assert_eq!(t.might_access, d.full, "pessimistic at start");
        }
    }

    #[test]
    fn branching_disk_instances_have_io() {
        let mut cfg = SimConfig::disk_base();
        cfg.workload.db_size = 60;
        cfg.run.num_transactions = 50;
        let txns = branching_workload_txns(&cfg, 1, true);
        assert!(txns.iter().all(|t| t.io_pattern.len() == t.items.len()));
        let io: usize = txns
            .iter()
            .map(|t| t.io_pattern.iter().filter(|&&b| b).count())
            .sum();
        assert!(io > 0, "some updates need the disk");
    }

    #[test]
    fn branching_deterministic_per_seed() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 60;
        cfg.run.num_transactions = 30;
        cfg.run.arrival_rate_tps = 8.0;
        let a = run_branching(&cfg, &EdfHp, 3, true);
        let b = run_branching(&cfg, &EdfHp, 3, true);
        assert_eq!(a, b);
        assert_eq!(a.committed, 30);
    }

    #[test]
    fn narrowing_runs_complete() {
        let mut cfg = SimConfig::mm_base();
        cfg.workload.db_size = 60;
        cfg.run.num_transactions = 40;
        cfg.run.arrival_rate_tps = 10.0;
        let s = run_branching(&cfg, &Cca::base(), 5, true);
        assert_eq!(s.committed, 40);
        assert_eq!(s.lock_waits, 0, "CCA never lock-waits, even branching");
    }
}
