//! Chaos experiments: graceful degradation when overload, disk faults,
//! CPU faults and engine crashes all land at once (extension).
//!
//! Two deterministic tables join the committed-CSV byte gate:
//!
//! * **`chaos`** replays IO-bearing trading-day traces through the
//!   virtual-clock serving front-end at escalating load under a combined
//!   disk + CPU fault plan, comparing *static* admission against the
//!   *adaptive* miss-ratio controller. The windowed miss columns (mean
//!   and worst window over the run) are the headline: under overload the
//!   adaptive controller trades rejections for a bounded miss ratio,
//!   while the static door lets the miss ratio run away.
//! * **`chaos-crash`** injects an engine panic at a pinned
//!   event-sequence position and records what the supervisor guarantees:
//!   every submitted ticket resolves (`hung` is asserted zero before the
//!   row is emitted), the crash is counted, and the restarted engine
//!   finishes the trace. Only chunk-independent quantities appear in the
//!   row — the committed/poisoned split around a crash depends on how
//!   drain batches raced the panic, so it is reported nowhere.
//!
//! The wall-clock counterpart (`experiments -- chaos`) is
//! [`wall_chaos`]: a machine-dependent smoke of the same failure modes
//! against real time, written to `BENCH_chaos.json` and never byte-gated
//! — the same split as `serve-vt` vs `serve`.

use std::sync::Arc;
use std::time::Duration;

use rtx_core::Cca;
use rtx_rtdb::runner::ReplicationOptions;
use rtx_rtdb::{AdmissionConfig, SimConfig};
use rtx_serve::{Outcome, ServeConfig, ServeReport, Server, Ticket, TraceSpec};
use rtx_sim::fault::CpuFaultPlan;

use crate::table::Table;
use crate::Scale;

/// How long a ticket may take to resolve before the harness declares it
/// hung. Generous: resolution is driven by the engine thread, not the
/// wall clock, so anything near this bound is a supervision bug.
const HANG_BUDGET: Duration = Duration::from_secs(60);

/// The engine configuration the chaos sweeps run on: the disk-resident
/// resource model re-pointed at the trace generator's 10 000-record
/// table with a fast disk, plus a combined disk + CPU fault plan
/// (moderate transient errors and latency spikes on the disk, stalls and
/// slowdowns on the CPU).
fn chaos_cfg(admission: AdmissionConfig) -> SimConfig {
    let mut cfg = SimConfig::disk_base();
    cfg.workload.db_size = 10_000;
    cfg.system.abort_cost_ms = 2.0;
    cfg.system
        .disk
        .as_mut()
        .expect("disk_base has a disk")
        .access_time_ms = 5.0;
    cfg.system.admission = Some(admission);
    cfg.system.faults = super::faults::plan_at(0.25);
    cfg.system.faults.cpu = Some(CpuFaultPlan {
        stall_prob: 0.04,
        slow_prob: 0.08,
        slow_factor: 2.0,
        retry_budget: 2,
        backoff_base_ms: 2.0,
        backoff_cap_ms: 16.0,
        brownout: None,
    });
    cfg
}

/// An IO-bearing trading-day trace at an average `rate_tps`: half the
/// updates carry a disk access.
fn chaos_trace(txns: usize, rate_tps: f64, seed: u64) -> TraceSpec {
    let mut spec = TraceSpec::trading_day(txns, seed);
    spec.day_secs = txns as f64 / rate_tps;
    spec.io_prob = 0.5;
    spec
}

/// Replay `spec` through a virtual-clock server under CCA with the given
/// serving knobs.
fn replay(spec: TraceSpec, admission: AdmissionConfig, serve: ServeConfig) -> ServeReport {
    let server = Server::start(serve, Arc::new(chaos_cfg(admission)), Arc::new(Cca::base()))
        .expect("chaos config is valid");
    for req in spec.stream() {
        server.submit(req).expect("server open");
    }
    server.shutdown()
}

/// The windowed miss percentage the adaptive controller steers toward;
/// windows at or below it count as meeting the SLO.
const WINDOW_SLO_MISS_PERCENT: f64 = 5.0;

/// Mean windowed miss percentage and the percentage of windows meeting
/// the [`WINDOW_SLO_MISS_PERCENT`] SLO over a run. (The worst window is
/// useless as a column: one thin window with a single missing commit
/// saturates it at 100% for every mode.)
fn windowed_miss(report: &ServeReport) -> (f64, f64) {
    let windows = &report.windows;
    if windows.is_empty() {
        return (0.0, 0.0);
    }
    let mean = windows.iter().map(|w| w.miss_percent).sum::<f64>() / windows.len() as f64;
    let ok = windows
        .iter()
        .filter(|w| w.miss_percent <= WINDOW_SLO_MISS_PERCENT)
        .count();
    (mean, 100.0 * ok as f64 / windows.len() as f64)
}

/// `chaos`: static vs adaptive admission across an overload sweep under
/// combined disk + CPU faults, reporting the cumulative outcome split
/// and the windowed miss-ratio profile.
pub fn overload_sweep(scale: Scale, _opts: &ReplicationOptions) -> Table {
    let (txns, rates): (usize, &[f64]) = match scale {
        Scale::Quick => (1_500, &[30.0, 90.0]),
        Scale::Full => (6_000, &[30.0, 60.0, 90.0]),
    };
    let modes: [(&str, AdmissionConfig); 2] = [
        ("static", AdmissionConfig::lenient()),
        ("adaptive", AdmissionConfig::adaptive()),
    ];
    let mut t = Table::new(
        "chaos",
        &[
            "rate_tps",
            "admission",
            "committed",
            "rejected",
            "miss_percent",
            "win_miss_mean",
            "win_slo_pct",
            "p99_ms",
        ],
    );
    for &rate in rates {
        for (name, admission) in &modes {
            let report = replay(
                chaos_trace(txns, rate, 0),
                *admission,
                ServeConfig::virtual_mode(),
            );
            let s = &report.summary;
            let (win_mean, win_slo) = windowed_miss(&report);
            t.push_row(vec![
                format!("{rate:.0}"),
                (*name).to_string(),
                s.committed.to_string(),
                s.rejected.to_string(),
                format!("{:.3}", s.miss_percent),
                format!("{win_mean:.3}"),
                format!("{win_slo:.3}"),
                format!("{:.3}", report.metrics.p99_ms),
            ]);
        }
    }
    t
}

/// Wait out every ticket and count how many resolved, finished
/// (committed or rejected), were poisoned — and how many hung past
/// [`HANG_BUDGET`] (a supervision bug).
fn tally(tickets: &[Ticket]) -> (u64, u64, u64, u64) {
    let (mut resolved, mut finished, mut poisoned, mut hung) = (0u64, 0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait_timeout(HANG_BUDGET) {
            Some(Outcome::Poisoned) => {
                resolved += 1;
                poisoned += 1;
            }
            Some(_) => {
                resolved += 1;
                finished += 1;
            }
            None => hung += 1,
        }
    }
    (resolved, finished, poisoned, hung)
}

/// `chaos-crash`: panic the engine at a pinned arrival count and record
/// the supervision contract. The committed/poisoned split around a crash
/// depends on drain batching (a thread-timing artifact), so the row
/// carries only chunk-independent quantities; the split itself is
/// asserted to *tally* (`resolved = submitted`, `hung = 0`) rather than
/// reported.
pub fn crash_supervision(scale: Scale, _opts: &ReplicationOptions) -> Table {
    let txns = match scale {
        Scale::Quick => 600,
        Scale::Full => 2_000,
    };
    let panic_at = (txns / 4) as u64;
    let mut serve = ServeConfig::virtual_mode();
    serve.panic_at_arrival = Some(panic_at);
    serve.max_restarts = 1;

    let server = Server::start(
        serve,
        Arc::new(chaos_cfg(AdmissionConfig::lenient())),
        Arc::new(Cca::base()),
    )
    .expect("chaos config is valid");
    let tickets: Vec<Ticket> = chaos_trace(txns, 60.0, 0)
        .stream()
        .map(|req| {
            server
                .submit(req)
                .expect("restart budget keeps the server open")
        })
        .collect();
    let report = server.shutdown();
    let (resolved, finished, poisoned, hung) = tally(&tickets);

    assert_eq!(hung, 0, "a ticket hung past the supervision guarantee");
    assert_eq!(resolved, txns as u64, "every submission must resolve");
    assert_eq!(finished + poisoned, resolved);
    assert!(poisoned > 0, "the crash must have held work in flight");
    assert_eq!(
        poisoned, report.metrics.poisoned,
        "ticket/metrics poison tally"
    );

    let mut t = Table::new(
        "chaos-crash",
        &[
            "txns",
            "panic_at_arrival",
            "max_restarts",
            "submitted",
            "resolved",
            "hung",
            "crashes",
        ],
    );
    t.push_row(vec![
        txns.to_string(),
        panic_at.to_string(),
        "1".to_string(),
        txns.to_string(),
        resolved.to_string(),
        hung.to_string(),
        report.crashes.to_string(),
    ]);
    t
}

/// Knobs for the wall-clock chaos smoke.
#[derive(Debug, Clone)]
pub struct WallChaos {
    /// Trace length (transactions).
    pub txns: usize,
    /// Sim microseconds per wall microsecond.
    pub sim_scale: f64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for WallChaos {
    /// A short, hostile run: enough transactions to cross the injected
    /// panic and several metric windows in ~10 s of wall time. The scale
    /// is kept moderate on purpose — at aggressive scales a microsecond
    /// of wall jitter is simulated milliseconds, and the shedder
    /// (correctly) drops the whole trace before the panic point is
    /// reached.
    fn default() -> Self {
        WallChaos {
            txns: 20_000,
            sim_scale: 10.0,
            seed: 42,
        }
    }
}

/// The wall-clock chaos smoke behind `experiments -- chaos`: a
/// trading-day trace paced at double the sweep's overload rate against
/// real time with shedding, adaptive admission, combined faults and an
/// injected engine panic (restart budget 1) all enabled. Returns the
/// `BENCH_chaos.json` body; panics if any supervision guarantee breaks
/// (a hung ticket, an unaccounted submission, a missing crash).
pub fn wall_chaos(opts: &WallChaos) -> String {
    let mut spec = chaos_trace(opts.txns, 180.0, opts.seed);
    spec.seed = opts.seed;
    let sim_scale = opts.sim_scale;
    let mut serve = ServeConfig::wall(sim_scale);
    serve.queue_capacity = 4096;
    serve.shed_infeasible = true;
    // Early enough that the engine reliably reaches it before sustained
    // queueing diverts the tail of the trace to the shedder (shed
    // requests never become engine arrivals).
    serve.panic_at_arrival = Some((opts.txns / 10) as u64);
    serve.max_restarts = 1;
    let server = Server::start(
        serve,
        Arc::new(chaos_cfg(AdmissionConfig::adaptive())),
        Arc::new(Cca::base()),
    )
    .expect("chaos config is valid");

    let started = std::time::Instant::now();
    for req in spec.stream() {
        let target = Duration::from_secs_f64(
            req.arrival.since(rtx_sim::SimTime::ZERO).as_secs() / sim_scale,
        );
        let elapsed = started.elapsed();
        if target > elapsed + Duration::from_millis(1) {
            std::thread::sleep(target - elapsed);
        }
        // Under a terminal crash submit would start failing Closed; the
        // restart budget covers the one injected panic, so any error
        // here is a real bug.
        server.submit(req).expect("server open");
    }
    // Tickets are deliberately dropped above: the hang check rides on
    // shutdown itself, which resolves everything before returning.
    let report = server.shutdown();
    let wall = started.elapsed().as_secs_f64();

    let m = &report.metrics;
    let accounted = m.committed + m.rejected + m.shed + m.poisoned;
    assert_eq!(report.crashes, 1, "the injected panic must be recorded");
    assert_eq!(
        accounted, m.submitted,
        "every submission must reach exactly one terminal outcome"
    );
    assert!(m.committed > 0, "the restarted engine must make progress");
    let (win_mean, win_slo) = windowed_miss(&report);

    println!(
        "chaos: {} txns in {:.1}s wall — committed {} rejected {} shed {} poisoned {} (crashes {})",
        opts.txns, wall, m.committed, m.rejected, m.shed, m.poisoned, report.crashes
    );
    println!(
        "       miss {:.3}%  windowed miss mean {:.3}% (SLO windows {:.1}%)  p99 {:.3} ms",
        m.miss_percent, win_mean, win_slo, m.p99_ms
    );

    format!(
        "{{\n  \"benchmark\": \"chaos-smoke\",\n  \"policy\": \"CCA\",\n  \
         \"txns\": {},\n  \"sim_scale\": {:.1},\n  \"seed\": {},\n  \
         \"wall_seconds\": {:.3},\n  \"crashes\": {},\n  \"hung_tickets\": 0,\n  \
         \"committed\": {},\n  \"rejected\": {},\n  \"shed\": {},\n  \
         \"poisoned\": {},\n  \"miss_percent\": {:.4},\n  \
         \"win_miss_mean\": {:.4},\n  \"win_slo_pct\": {:.4},\n  \
         \"p99_ms\": {:.4}\n}}\n",
        opts.txns,
        sim_scale,
        opts.seed,
        wall,
        report.crashes,
        m.committed,
        m.rejected,
        m.shed,
        m.poisoned,
        m.miss_percent,
        win_mean,
        win_slo,
        m.p99_ms
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_sweep_quick_is_deterministic() {
        let a = overload_sweep(Scale::Quick, &ReplicationOptions::serial());
        let b = overload_sweep(Scale::Quick, &ReplicationOptions::serial());
        assert_eq!(a.to_csv(), b.to_csv(), "chaos replay must be bit-stable");
        assert_eq!(a.rows().len(), 2 * 2, "2 rates x 2 admission modes");
    }

    #[test]
    fn adaptive_admission_bounds_windowed_misses_under_overload() {
        let t = overload_sweep(Scale::Quick, &ReplicationOptions::serial());
        // The last two rows are the overload rate: static first,
        // adaptive second.
        let rows = t.rows();
        let stat: f64 = rows[rows.len() - 2][5].parse().unwrap();
        let adap: f64 = rows[rows.len() - 1][5].parse().unwrap();
        assert!(
            adap < stat,
            "adaptive mean windowed miss {adap}% must undercut static {stat}%"
        );
    }

    #[test]
    fn crash_supervision_quick_is_deterministic() {
        let a = crash_supervision(Scale::Quick, &ReplicationOptions::serial());
        let b = crash_supervision(Scale::Quick, &ReplicationOptions::serial());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn wall_chaos_smoke() {
        let json = wall_chaos(&WallChaos {
            txns: 2_000,
            sim_scale: 10.0,
            seed: 1,
        });
        for key in ["\"crashes\": 1", "\"hung_tickets\": 0", "win_slo_pct"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
