//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--plot] [--jobs N] [--out DIR]
//!             [--faults] [--admission] [--bench-profile]
//!             [--serve-txns N] [--serve-scale S] <id>... | all | serve | chaos-smoke | list
//! ```
//!
//! Ids: table1 fig4a fig4b fig4c fig4d fig4e fig4f fig5a table2 fig5b
//! fig5c fig5d fig5e fig5f ablate-recovery ablate-iowait ablate-policies
//! ablate-disk-sched ext-shared-locks ext-criticality ext-branching
//! faults faults-admission serve-vt
//!
//! `--faults` and `--admission` are shorthands that enqueue the
//! fault-injection robustness sweeps (`faults` and `faults-admission`
//! respectively) alongside any ids given.
//!
//! `--bench-profile` runs the scheduler-overhead profile (incremental
//! engine vs the always-recompute oracle, wall-clock timed) and writes
//! `<out>/BENCH_scheduling.json`. Both JSON documents are stamped with
//! the current git commit, and every run appends one row per scenario
//! to `<out>/bench-history.csv` (epoch seconds + commit + headline
//! counters), so regressions can be traced across commits. It may be
//! given alone or alongside experiment ids; with `--quick` it profiles
//! only the small CI regression-smoke bursts instead of the full
//! policy × MPL sweep.
//!
//! `serve` is the wall-clock serving benchmark (not an experiment id —
//! its numbers are machine-dependent, so it never joins `all`): it
//! replays a `--serve-txns`-transaction trading-day trace (default 1M)
//! through the serving front-end at `--serve-scale`× real time (default
//! 600), prints sustained requests/sec and p50/p95/p99 wall latency,
//! and writes `<out>/BENCH_serving.json` plus the repo-root headline
//! `BENCH_serve.json`. The deterministic counterpart is the `serve-vt`
//! experiment id, whose CSV is committed and byte-gated.
//!
//! `chaos-smoke` is the wall-clock chaos smoke (also a benchmark mode,
//! also excluded from `all`): overload pacing, deadline shedding,
//! adaptive admission, disk + CPU fault injection and an injected
//! engine panic in one short run, asserting the supervision guarantees
//! (no hung tickets, every submission accounted, the crash recorded)
//! and writing `<out>/BENCH_chaos.json`. Its deterministic counterparts
//! are the `chaos` and `chaos-crash` experiment ids.
//!
//! Replications fan out across worker threads (`--jobs N`; default: all
//! available hardware threads; `--jobs 1` forces serial). The merge is
//! deterministic — output tables and CSVs are byte-identical for every
//! jobs count. Per-experiment timing goes to stderr and, machine
//! readable, to `<out>/timing.json` — merged per experiment, so a run
//! of one sweep never clobbers the recorded timings of the others.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rtx_bench::experiments::{run_group_with, GroupReport, ALL_IDS};
use rtx_bench::plot::render_chart;
use rtx_bench::Scale;
use rtx_rtdb::runner::{Parallelism, ReplicationOptions};

/// The current git revision (short), or `"unknown"` outside a checkout
/// — the bench documents are stamped with it so numbers stay traceable
/// to the code that produced them.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Append one row per profiled scenario to the bench history CSV,
/// writing the header first when the file does not exist yet.
fn append_bench_history(
    path: &std::path::Path,
    commit: &str,
    rows: &[rtx_bench::ScenarioSummary],
) -> std::io::Result<()> {
    use std::io::Write as _;
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    if fresh {
        writeln!(
            f,
            "epoch_s,commit,scenario,policy,mpl,cached_pick_ns,sched_speedup,\
             heap_stale_pops,index_migrations,migrations_batched,\
             pair_cache_evictions,pair_cache_probes,frozen_compactions"
        )?;
    }
    for r in rows {
        writeln!(
            f,
            "{epoch},{commit},{},{},{},{:.1},{:.2},{},{},{},{},{},{}",
            r.name,
            r.policy,
            r.mpl,
            r.cached_pick_ns,
            r.sched_speedup,
            r.heap_stale_pops,
            r.index_migrations,
            r.migrations_batched,
            r.pair_cache_evictions,
            r.pair_cache_probes,
            r.frozen_compactions,
        )?;
    }
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [--quick] [--plot] [--jobs N] [--shards N] [--out DIR] \
         [--faults] [--admission] [--bench-profile] \
         [--serve-txns N] [--serve-scale S] <id>... | all | serve | chaos-smoke | list"
    );
    eprintln!("ids: {}", ALL_IDS.join(" "));
    ExitCode::FAILURE
}

/// One `timing.json` record.
struct TimingRecord {
    ids: Vec<&'static str>,
    runs: u64,
    wall_seconds: f64,
    busy_seconds: f64,
    speedup_estimate: f64,
}

/// One rendered timing entry: its merge key (the joined id list) and its
/// single-line JSON object.
fn timing_entry(r: &TimingRecord) -> (String, String) {
    let ids: Vec<String> = r.ids.iter().map(|id| format!("\"{id}\"")).collect();
    let key = ids.join(", ");
    let line = format!(
        "{{\"ids\": [{key}], \"runs\": {}, \"wall_seconds\": {:.3}, \
         \"busy_seconds\": {:.3}, \"speedup_estimate\": {:.2}}}",
        r.runs, r.wall_seconds, r.busy_seconds, r.speedup_estimate,
    );
    (key, line)
}

/// The merge key of an entry line previously written by
/// [`timing_json`], if the line is one (`{"ids": [...], ...}`).
fn timing_entry_key(line: &str) -> Option<String> {
    let rest = line.trim().strip_prefix("{\"ids\": [")?;
    Some(rest.split(']').next()?.to_string())
}

/// Render `timing.json`, merging this run's records into `existing`
/// (the file's previous contents, if any). Entries are keyed by their id
/// list: re-run sweeps replace their old timing, sweeps not in this run
/// keep theirs — a lone `experiments fig4a` no longer clobbers the
/// timings of the other 20 sweeps. `jobs`/`scale` describe the latest
/// run (hand-rolled JSON: the workspace carries no serialization
/// dependency).
fn timing_json(
    existing: Option<&str>,
    jobs: &str,
    scale: Scale,
    records: &[TimingRecord],
) -> String {
    // Preserved entries, in original order.
    let mut entries: Vec<(String, String)> = existing
        .into_iter()
        .flat_map(str::lines)
        .filter_map(|l| {
            let key = timing_entry_key(l)?;
            let line = l.trim().trim_end_matches(',').to_string();
            Some((key, line))
        })
        .collect();
    for r in records {
        let (key, line) = timing_entry(r);
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = line,
            None => entries.push((key, line)),
        }
    }
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": \"{jobs}\",\n"));
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (_, line)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        out.push_str(&format!("    {line}{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut plot = false;
    let mut parallelism = Parallelism::Auto;
    let mut shards: Option<usize> = None;
    let mut bench_profile = false;
    let mut serve_bench = rtx_bench::experiments::serve::WallBench::default();
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--faults" => ids.push("faults".to_string()),
            "--admission" => ids.push("faults-admission".to_string()),
            "--bench-profile" => bench_profile = true,
            "--serve-txns" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => serve_bench.txns = n,
                _ => return usage(),
            },
            "--serve-scale" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(s) if s > 0.0 && s.is_finite() => serve_bench.sim_scale = s,
                _ => return usage(),
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--jobs" | "-j" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => parallelism = Parallelism::Threads(n),
                None => return usage(),
            },
            "--shards" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if (1..=8).contains(&n) => shards = Some(n),
                _ => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    // `serve` and `chaos-smoke` are benchmark modes, not experiment ids
    // (their output is machine-dependent and never joins `all`).
    let serve_requested = ids.iter().any(|id| id == "serve");
    ids.retain(|id| id != "serve");
    let chaos_requested = ids.iter().any(|id| id == "chaos-smoke");
    ids.retain(|id| id != "chaos-smoke");
    if ids.is_empty() && !bench_profile && !serve_requested && !chaos_requested {
        return usage();
    }
    for id in &ids {
        if id != "all" && !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id}");
            return usage();
        }
    }

    if serve_requested {
        let (full, headline) = rtx_bench::experiments::serve::wall_bench(&serve_bench);
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("failed to create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        let full_path = out_dir.join("BENCH_serving.json");
        if let Err(e) = std::fs::write(&full_path, full) {
            eprintln!("failed to write {}: {e}", full_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("serve bench -> {}", full_path.display());
        // Headline at the repo root, next to BENCH_sched.json.
        let headline_path = PathBuf::from("BENCH_serve.json");
        if let Err(e) = std::fs::write(&headline_path, headline) {
            eprintln!("failed to write {}: {e}", headline_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("serve headline -> {}", headline_path.display());
        if ids.is_empty() && !bench_profile && !chaos_requested {
            return ExitCode::SUCCESS;
        }
    }

    if chaos_requested {
        let json = rtx_bench::experiments::chaos::wall_chaos(
            &rtx_bench::experiments::chaos::WallChaos::default(),
        );
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("failed to create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        let path = out_dir.join("BENCH_chaos.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("chaos smoke -> {}", path.display());
        if ids.is_empty() && !bench_profile {
            return ExitCode::SUCCESS;
        }
    }

    if bench_profile {
        let commit = git_commit();
        let (json, summary, rows) =
            rtx_bench::bench_profile_docs(matches!(scale, Scale::Quick), &commit);
        let path = out_dir.join("BENCH_scheduling.json");
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("failed to create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench profile -> {}", path.display());
        // The per-policy pick-latency summary lives at the repo root so
        // a reviewer sees the headline numbers without digging through
        // the full per-mode counter dump.
        let summary_path = PathBuf::from("BENCH_sched.json");
        if let Err(e) = std::fs::write(&summary_path, summary) {
            eprintln!("failed to write {}: {e}", summary_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench summary -> {}", summary_path.display());
        let history_path = out_dir.join("bench-history.csv");
        if let Err(e) = append_bench_history(&history_path, &commit, &rows) {
            eprintln!("failed to append {}: {e}", history_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench history -> {}", history_path.display());
        if ids.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let jobs_label = match parallelism {
        Parallelism::Threads(n) => n.to_string(),
        _ => "auto".to_string(),
    };
    let opts = ReplicationOptions {
        parallelism,
        timer: None,
        shards,
    };
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let started = Instant::now();
    let mut count = 0usize;
    let mut failed = false;
    let mut timings: Vec<TimingRecord> = Vec::new();
    run_group_with(&id_refs, scale, &opts, |report: GroupReport| {
        eprintln!(
            "[{:7.1}s] {}: {} run(s) in {:.1}s (~{:.1}x vs serial est.)",
            started.elapsed().as_secs_f64(),
            report.ids.join("+"),
            report.runs,
            report.wall_seconds,
            report.speedup_estimate(),
        );
        for table in &report.tables {
            println!("{}", table.render());
            if plot {
                if let Some(chart) = render_chart(table, 64, 16) {
                    println!("{chart}");
                }
            }
            match table.write_csv(&out_dir) {
                Ok(path) => println!("   -> {}\n", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", table.title);
                    failed = true;
                }
            }
            count += 1;
        }
        timings.push(TimingRecord {
            ids: report.ids.clone(),
            runs: report.runs,
            wall_seconds: report.wall_seconds,
            busy_seconds: report.busy_seconds,
            speedup_estimate: report.speedup_estimate(),
        });
    });
    if failed {
        return ExitCode::FAILURE;
    }
    if count == 0 {
        eprintln!("nothing to run");
        return ExitCode::FAILURE;
    }
    let timing_path = out_dir.join("timing.json");
    let existing = std::fs::read_to_string(&timing_path).ok();
    if let Err(e) = std::fs::write(
        &timing_path,
        timing_json(existing.as_deref(), &jobs_label, scale, &timings),
    ) {
        eprintln!("failed to write {}: {e}", timing_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("timing -> {}", timing_path.display());
    eprintln!(
        "completed {count} table(s) in {:.1}s ({scale:?} scale, jobs={jobs_label})",
        started.elapsed().as_secs_f64(),
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ids: &[&'static str], wall: f64) -> TimingRecord {
        TimingRecord {
            ids: ids.to_vec(),
            runs: 10,
            wall_seconds: wall,
            busy_seconds: wall * 2.0,
            speedup_estimate: 2.0,
        }
    }

    #[test]
    fn timing_merge_preserves_other_experiments() {
        // First run: two sweeps.
        let first = timing_json(
            None,
            "auto",
            Scale::Full,
            &[
                rec(&["fig4a", "fig4b", "fig4c"], 10.0),
                rec(&["fig4f"], 5.0),
            ],
        );
        assert!(first.contains("\"fig4f\""));
        // Second run re-times only fig4f: the fig4a group must survive,
        // fig4f's entry must be replaced, and a new sweep appends.
        let second = timing_json(
            Some(&first),
            "1",
            Scale::Quick,
            &[rec(&["fig4f"], 7.0), rec(&["serve-vt"], 3.0)],
        );
        assert!(
            second.contains("\"fig4a\", \"fig4b\", \"fig4c\""),
            "{second}"
        );
        assert!(second.contains("\"wall_seconds\": 7.000"), "{second}");
        assert!(!second.contains("\"wall_seconds\": 5.000"), "{second}");
        assert!(second.contains("\"serve-vt\""), "{second}");
        assert!(second.contains("\"jobs\": \"1\""), "latest run labels win");
        assert_eq!(
            second.matches("{\"ids\":").count(),
            3,
            "one entry per distinct id group:\n{second}"
        );
    }

    #[test]
    fn timing_merge_tolerates_garbage_existing_file() {
        let out = timing_json(
            Some("not json at all"),
            "auto",
            Scale::Full,
            &[rec(&["table1"], 1.0)],
        );
        assert!(out.contains("\"table1\""));
        assert!(out.starts_with("{\n"));
    }
}
