//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--plot] [--jobs N] [--out DIR]
//!             [--faults] [--admission] [--bench-profile] <id>... | all | list
//! ```
//!
//! Ids: table1 fig4a fig4b fig4c fig4d fig4e fig4f fig5a table2 fig5b
//! fig5c fig5d fig5e fig5f ablate-recovery ablate-iowait ablate-policies
//! ablate-disk-sched ext-shared-locks ext-criticality ext-branching
//! faults faults-admission
//!
//! `--faults` and `--admission` are shorthands that enqueue the
//! fault-injection robustness sweeps (`faults` and `faults-admission`
//! respectively) alongside any ids given.
//!
//! `--bench-profile` runs the scheduler-overhead profile (incremental
//! engine vs the always-recompute oracle, wall-clock timed) and writes
//! `<out>/BENCH_scheduling.json`. It may be given alone or alongside
//! experiment ids; with `--quick` it profiles only a small MPL-64 burst
//! (the CI regression smoke) instead of the full policy × MPL sweep.
//!
//! Replications fan out across worker threads (`--jobs N`; default: all
//! available hardware threads; `--jobs 1` forces serial). The merge is
//! deterministic — output tables and CSVs are byte-identical for every
//! jobs count. Per-experiment timing goes to stderr and, machine
//! readable, to `<out>/timing.json`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rtx_bench::experiments::{run_group_with, GroupReport, ALL_IDS};
use rtx_bench::plot::render_chart;
use rtx_bench::Scale;
use rtx_rtdb::runner::{Parallelism, ReplicationOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [--quick] [--plot] [--jobs N] [--out DIR] \
         [--faults] [--admission] [--bench-profile] <id>... | all | list"
    );
    eprintln!("ids: {}", ALL_IDS.join(" "));
    ExitCode::FAILURE
}

/// One `timing.json` record.
struct TimingRecord {
    ids: Vec<&'static str>,
    runs: u64,
    wall_seconds: f64,
    busy_seconds: f64,
    speedup_estimate: f64,
}

/// Render the timing records as a JSON array (hand-rolled: the workspace
/// carries no serialization dependency).
fn timing_json(jobs: &str, scale: Scale, records: &[TimingRecord]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"jobs\": \"{jobs}\",\n"));
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        let ids: Vec<String> = r.ids.iter().map(|id| format!("\"{id}\"")).collect();
        out.push_str(&format!(
            "    {{\"ids\": [{}], \"runs\": {}, \"wall_seconds\": {:.3}, \
             \"busy_seconds\": {:.3}, \"speedup_estimate\": {:.2}}}{}\n",
            ids.join(", "),
            r.runs,
            r.wall_seconds,
            r.busy_seconds,
            r.speedup_estimate,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut plot = false;
    let mut parallelism = Parallelism::Auto;
    let mut bench_profile = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--faults" => ids.push("faults".to_string()),
            "--admission" => ids.push("faults-admission".to_string()),
            "--bench-profile" => bench_profile = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--jobs" | "-j" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => parallelism = Parallelism::Threads(n),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() && !bench_profile {
        return usage();
    }
    for id in &ids {
        if id != "all" && !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id}");
            return usage();
        }
    }

    if bench_profile {
        let (json, summary) = rtx_bench::bench_profile_docs(matches!(scale, Scale::Quick));
        let path = out_dir.join("BENCH_scheduling.json");
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("failed to create {}: {e}", out_dir.display());
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench profile -> {}", path.display());
        // The per-policy pick-latency summary lives at the repo root so
        // a reviewer sees the headline numbers without digging through
        // the full per-mode counter dump.
        let summary_path = PathBuf::from("BENCH_sched.json");
        if let Err(e) = std::fs::write(&summary_path, summary) {
            eprintln!("failed to write {}: {e}", summary_path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("bench summary -> {}", summary_path.display());
        if ids.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let jobs_label = match parallelism {
        Parallelism::Threads(n) => n.to_string(),
        _ => "auto".to_string(),
    };
    let opts = ReplicationOptions {
        parallelism,
        timer: None,
    };
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let started = Instant::now();
    let mut count = 0usize;
    let mut failed = false;
    let mut timings: Vec<TimingRecord> = Vec::new();
    run_group_with(&id_refs, scale, &opts, |report: GroupReport| {
        eprintln!(
            "[{:7.1}s] {}: {} run(s) in {:.1}s (~{:.1}x vs serial est.)",
            started.elapsed().as_secs_f64(),
            report.ids.join("+"),
            report.runs,
            report.wall_seconds,
            report.speedup_estimate(),
        );
        for table in &report.tables {
            println!("{}", table.render());
            if plot {
                if let Some(chart) = render_chart(table, 64, 16) {
                    println!("{chart}");
                }
            }
            match table.write_csv(&out_dir) {
                Ok(path) => println!("   -> {}\n", path.display()),
                Err(e) => {
                    eprintln!("failed to write {}: {e}", table.title);
                    failed = true;
                }
            }
            count += 1;
        }
        timings.push(TimingRecord {
            ids: report.ids.clone(),
            runs: report.runs,
            wall_seconds: report.wall_seconds,
            busy_seconds: report.busy_seconds,
            speedup_estimate: report.speedup_estimate(),
        });
    });
    if failed {
        return ExitCode::FAILURE;
    }
    if count == 0 {
        eprintln!("nothing to run");
        return ExitCode::FAILURE;
    }
    let timing_path = out_dir.join("timing.json");
    if let Err(e) = std::fs::write(&timing_path, timing_json(&jobs_label, scale, &timings)) {
        eprintln!("failed to write {}: {e}", timing_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("timing -> {}", timing_path.display());
    eprintln!(
        "completed {count} table(s) in {:.1}s ({scale:?} scale, jobs={jobs_label})",
        started.elapsed().as_secs_f64(),
    );
    ExitCode::SUCCESS
}
