//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--out DIR] <id>... | all | list
//! ```
//!
//! Ids: table1 fig4a fig4b fig4c fig4d fig4e fig4f fig5a table2 fig5b
//! fig5c fig5d fig5e fig5f ablate-recovery ablate-iowait ablate-policies
//! ablate-disk-sched ext-shared-locks ext-criticality ext-branching

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rtx_bench::experiments::{run_group_with, ALL_IDS};
use rtx_bench::plot::render_chart;
use rtx_bench::Scale;

fn usage() -> ExitCode {
    eprintln!("usage: experiments [--quick] [--plot] [--out DIR] <id>... | all | list");
    eprintln!("ids: {}", ALL_IDS.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("results");
    let mut plot = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }
    for id in &ids {
        if id != "all" && !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id}");
            return usage();
        }
    }

    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let started = Instant::now();
    let mut count = 0usize;
    let mut failed = false;
    run_group_with(&id_refs, scale, |table| {
        eprintln!("[{:7.1}s] {} done", started.elapsed().as_secs_f64(), table.title);
        println!("{}", table.render());
        if plot {
            if let Some(chart) = render_chart(&table, 64, 16) {
                println!("{chart}");
            }
        }
        match table.write_csv(&out_dir) {
            Ok(path) => println!("   -> {}\n", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", table.title);
                failed = true;
            }
        }
        count += 1;
    });
    if failed {
        return ExitCode::FAILURE;
    }
    if count == 0 {
        eprintln!("nothing to run");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "completed {count} table(s) in {:.1}s ({:?} scale)",
        started.elapsed().as_secs_f64(),
        scale
    );
    ExitCode::SUCCESS
}
