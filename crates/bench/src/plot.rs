//! Terminal line charts, so `experiments --plot` can render each figure
//! in the shape the paper prints it without leaving the console.
//!
//! Minimal but honest plotting: linear axes, one glyph per series,
//! nearest-cell rasterization, axis labels with the data ranges.

use crate::table::Table;

/// Glyphs assigned to series, in column order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render `table` (first column = x, remaining numeric columns = series)
/// as an ASCII chart of the given size. Non-numeric cells are skipped.
///
/// Returns `None` if fewer than two rows or no numeric series exist.
pub fn render_chart(table: &Table, width: usize, height: usize) -> Option<String> {
    let rows = table.rows();
    if rows.len() < 2 || table.header.len() < 2 {
        return None;
    }
    let parse = |s: &str| s.parse::<f64>().ok();
    let xs: Vec<f64> = rows.iter().filter_map(|r| parse(&r[0])).collect();
    if xs.len() != rows.len() {
        return None;
    }
    let series_count = table.header.len() - 1;
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); series_count];
    for row in rows {
        let x = parse(&row[0])?;
        for (si, cell) in row[1..].iter().enumerate() {
            if let Some(y) = parse(cell) {
                series[si].push((x, y));
            }
        }
    }
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &series {
        for &(x, y) in s {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() || x_min == x_max {
        return None;
    }
    if y_min == y_max {
        y_min -= 1.0;
        y_max += 1.0;
    }
    // A little headroom so the top point isn't clipped visually.
    let y_span = y_max - y_min;
    let y_max = y_max + 0.05 * y_span;
    let y_min = (y_min - 0.05 * y_span).min(if y_min >= 0.0 { 0.0 } else { y_min });

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Plot line segments between consecutive points.
        for pair in s.windows(2) {
            let (x0, y0) = pair[0];
            let (x1, y1) = pair[1];
            let steps = width * 2;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let x = x0 + (x1 - x0) * t;
                let y = y0 + (y1 - y0) * t;
                let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
                let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = glyph;
            }
        }
        // Ensure the actual data points are visible over the segments.
        for &(x, y) in s {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} (y: {:.2}..{:.2})\n",
        table.title, y_min, y_max
    ));
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:8.1} |")
        } else if i == height - 1 {
            format!("{y_min:8.1} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "         +{}\n          {:<10.2}{:>width$.2}\n",
        "-".repeat(width),
        x_min,
        x_max,
        width = width - 10
    ));
    // Legend.
    for (si, name) in table.header[1..].iter().enumerate() {
        out.push_str(&format!(
            "          {} {}\n",
            GLYPHS[si % GLYPHS.len()],
            name
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig_demo", &["x", "edf", "cca"]);
        for i in 1..=10 {
            t.push_numeric_row(&[i as f64, (i * i) as f64, (i * i) as f64 * 0.8]);
        }
        t
    }

    #[test]
    fn renders_chart_with_legend_and_axes() {
        let chart = render_chart(&sample(), 40, 12).expect("chart");
        assert!(chart.contains("fig_demo"));
        assert!(chart.contains('*'), "first series plotted");
        assert!(chart.contains('o'), "second series plotted");
        assert!(chart.contains("* edf"));
        assert!(chart.contains("o cca"));
        assert!(chart.contains("1.00"), "x axis start");
        // 12 grid rows + header + axis + labels + legend
        assert!(chart.lines().count() >= 16);
    }

    #[test]
    fn rejects_degenerate_tables() {
        let mut t = Table::new("one_row", &["x", "y"]);
        t.push_numeric_row(&[1.0, 2.0]);
        assert!(render_chart(&t, 40, 10).is_none());

        let mut t = Table::new("non_numeric", &["x", "y"]);
        t.push_row(vec!["a".into(), "b".into()]);
        t.push_row(vec!["c".into(), "d".into()]);
        assert!(render_chart(&t, 40, 10).is_none());
    }

    #[test]
    fn constant_series_handled() {
        let mut t = Table::new("flat", &["x", "y"]);
        for i in 0..5 {
            t.push_numeric_row(&[i as f64, 7.0]);
        }
        let chart = render_chart(&t, 30, 8).expect("chart");
        assert!(chart.contains('*'));
    }

    #[test]
    fn parameter_tables_skip_gracefully() {
        // table1-style: text cells → None, callers fall back to the table.
        let mut t = Table::new("params", &["Parameter", "Value"]);
        t.push_row(vec!["Transaction type".into(), "50".into()]);
        t.push_row(vec!["Database size".into(), "30".into()]);
        assert!(render_chart(&t, 40, 10).is_none());
    }
}
