//! Scheduler-overhead profiling: the `--bench-profile` mode.
//!
//! Runs matched pairs of simulations — the production incremental engine
//! ([`CacheMode::Incremental`], whose ConflictState/Static policies pick
//! through the lazy priority heap) against the always-recompute oracle
//! ([`CacheMode::AlwaysRecompute`], the pre-incremental hot loop kept
//! verbatim) — with wall-clock timing of `pick_next` enabled, checks the
//! two trajectories agree bit-for-bit, and renders the counters plus the
//! measured speedup as `BENCH_scheduling.json`. Scenarios cover both
//! ConflictState policies (CCA and EDF-Wait) across MPL so the JSON
//! shows the heap-vs-scan ratio per policy and per MPL.
//!
//! The scheduler wall time is a *profiling artifact*: it varies by
//! machine and run, unlike every other field the simulator emits. The
//! committed JSON is a baseline snapshot, not a byte-reproducible
//! output; the counters and the `identical` flags are the deterministic
//! part.

use rtx_core::{Cca, EdfWait, Lsf};
use rtx_rtdb::{
    run_simulation_profiled_with_mode, CacheMode, Policy, RunSummary, SchedStats, SimConfig,
};

/// One scenario of the profile: a config and a policy, run `reps` times
/// (distinct seeds) under both cache modes.
struct Scenario {
    name: &'static str,
    policy: Box<dyn Policy>,
    cfg: SimConfig,
    reps: u64,
}

/// Accumulated counters for one (scenario, mode) cell.
#[derive(Default)]
struct Cell {
    sched: SchedStats,
    committed: u64,
}

impl Cell {
    /// Mean wall nanoseconds per `pick_next` call — the headline
    /// heap-vs-scan number (machine-dependent, like `sched_wall_ns`).
    fn pick_ns(&self) -> f64 {
        self.sched.sched_wall_ns as f64 / self.sched.pick_next_calls.max(1) as f64
    }
}

/// A high-MPL burst: arrivals far faster than service, so ~all
/// transactions are simultaneously active and every reschedule pass
/// works over an n-deep system. This is where the pick path's
/// complexity matters most.
fn burst(mpl: usize) -> SimConfig {
    let mut cfg = SimConfig::mm_base();
    cfg.run.num_transactions = mpl;
    cfg.run.arrival_rate_tps = 2_000.0;
    cfg
}

/// The same burst with the lock table and conflict epochs sharded:
/// conflict epochs above the fan-out threshold are evaluated by
/// per-shard worker threads (outcome bit-identical to `shards = 1`;
/// only the wall clock and the `shard_barriers`/`cross_shard_conflicts`
/// counters move).
fn burst_sharded(mpl: usize, shards: usize) -> SimConfig {
    let mut cfg = burst(mpl);
    cfg.system.shards = shards;
    cfg
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    if quick {
        // CI smoke: small, mid-size and deep bursts — enough to catch a
        // pick-path regression (cached slower than the oracle, stale-pop
        // blowup, migration or eviction volume creeping back up) in
        // seconds. The MPL-256 and MPL-1024 cells are what the CI
        // regression gate compares against its checked-in baselines.
        return vec![
            Scenario {
                name: "mm_cca_burst_mpl64",
                policy: Box::new(Cca::base()),
                cfg: burst(64),
                reps: 2,
            },
            Scenario {
                name: "mm_cca_burst_mpl256",
                policy: Box::new(Cca::base()),
                cfg: burst(256),
                reps: 2,
            },
            Scenario {
                name: "mm_cca_burst_mpl1024",
                policy: Box::new(Cca::base()),
                cfg: burst(1024),
                reps: 1,
            },
            Scenario {
                name: "mm_cca_burst_mpl1024_shards4",
                policy: Box::new(Cca::base()),
                cfg: burst_sharded(1024, 4),
                reps: 1,
            },
        ];
    }
    // Split-index-vs-scan across MPL for both ConflictState policies,
    // plus the slack-ordered index for LSF (TimeAndSelf).
    let mut out = vec![
        Scenario {
            name: "mm_cca_burst_mpl64",
            policy: Box::new(Cca::base()),
            cfg: burst(64),
            reps: 5,
        },
        Scenario {
            name: "mm_cca_burst_mpl256",
            policy: Box::new(Cca::base()),
            cfg: burst(256),
            reps: 5,
        },
        Scenario {
            name: "mm_cca_burst_mpl1024",
            policy: Box::new(Cca::base()),
            cfg: burst(1024),
            reps: 2,
        },
        Scenario {
            name: "mm_cca_burst_mpl1024_shards4",
            policy: Box::new(Cca::base()),
            cfg: burst_sharded(1024, 4),
            reps: 2,
        },
        Scenario {
            name: "mm_edfwait_burst_mpl64",
            policy: Box::new(EdfWait),
            cfg: burst(64),
            reps: 5,
        },
        Scenario {
            name: "mm_edfwait_burst_mpl256",
            policy: Box::new(EdfWait),
            cfg: burst(256),
            reps: 5,
        },
        Scenario {
            name: "mm_edfwait_burst_mpl1024",
            policy: Box::new(EdfWait),
            cfg: burst(1024),
            reps: 2,
        },
        Scenario {
            name: "mm_lsf_burst_mpl64",
            policy: Box::new(Lsf),
            cfg: burst(64),
            reps: 5,
        },
        Scenario {
            name: "mm_lsf_burst_mpl256",
            policy: Box::new(Lsf),
            cfg: burst(256),
            reps: 5,
        },
    ];
    // Paper-scale steady state on main memory and disk: the P-list stays
    // short here (§3.3), so this bounds the *overhead* of the
    // bookkeeping in the regime the paper argues is typical.
    let mut mm = SimConfig::mm_base();
    mm.run.num_transactions = 2_000;
    mm.run.arrival_rate_tps = 9.0;
    out.push(Scenario {
        name: "mm_cca_steady",
        policy: Box::new(Cca::base()),
        cfg: mm,
        reps: 3,
    });
    let mut disk = SimConfig::disk_base();
    disk.run.num_transactions = 1_000;
    disk.run.arrival_rate_tps = 4.0;
    out.push(Scenario {
        name: "disk_cca_steady",
        policy: Box::new(Cca::base()),
        cfg: disk,
        reps: 3,
    });
    out
}

fn run_cell(
    cfg: &SimConfig,
    policy: &dyn Policy,
    reps: u64,
    mode: CacheMode,
) -> (Cell, Vec<RunSummary>) {
    let mut cell = Cell::default();
    let mut outcomes = Vec::new();
    for rep in 0..reps {
        let mut c = cfg.clone();
        c.run.seed = rep;
        let s = run_simulation_profiled_with_mode(&c, policy, mode);
        cell.sched.pick_next_calls += s.sched.pick_next_calls;
        cell.sched.priority_evals += s.sched.priority_evals;
        cell.sched.priority_cache_hits += s.sched.priority_cache_hits;
        cell.sched.pair_checks += s.sched.pair_checks;
        cell.sched.pair_cache_hits += s.sched.pair_cache_hits;
        cell.sched.heap_pushes += s.sched.heap_pushes;
        cell.sched.heap_stale_pops += s.sched.heap_stale_pops;
        cell.sched.heap_validated_picks += s.sched.heap_validated_picks;
        cell.sched.pair_invalidations += s.sched.pair_invalidations;
        cell.sched.pair_cache_evictions += s.sched.pair_cache_evictions;
        cell.sched.clear_repair_clears += s.sched.clear_repair_clears;
        cell.sched.clear_repair_visits += s.sched.clear_repair_visits;
        cell.sched.index_migrations += s.sched.index_migrations;
        cell.sched.migrations_batched += s.sched.migrations_batched;
        cell.sched.pair_cache_probes += s.sched.pair_cache_probes;
        cell.sched.frozen_compactions += s.sched.frozen_compactions;
        cell.sched.shard_barriers += s.sched.shard_barriers;
        cell.sched.cross_shard_conflicts += s.sched.cross_shard_conflicts;
        cell.sched.verify_checks += s.sched.verify_checks;
        cell.sched.sched_wall_ns += s.sched.sched_wall_ns;
        cell.committed += s.committed;
        // Everything but the scheduler's own instrumentation must be
        // identical across modes.
        outcomes.push(s.sans_sched_stats());
    }
    (cell, outcomes)
}

fn cell_json(cell: &Cell, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"sched_wall_ns\": {},\n{indent}  \"pick_ns\": {:.1},\n\
         {indent}  \"pick_next_calls\": {},\n\
         {indent}  \"priority_evals\": {},\n{indent}  \"priority_cache_hits\": {},\n\
         {indent}  \"pair_checks\": {},\n{indent}  \"pair_cache_hits\": {},\n\
         {indent}  \"heap_pushes\": {},\n{indent}  \"heap_stale_pops\": {},\n\
         {indent}  \"heap_validated_picks\": {},\n{indent}  \"pair_invalidations\": {},\n\
         {indent}  \"pair_cache_evictions\": {},\n{indent}  \"pair_cache_probes\": {},\n\
         {indent}  \"clear_repair_clears\": {},\n\
         {indent}  \"clear_repair_visits\": {},\n{indent}  \"index_migrations\": {},\n\
         {indent}  \"migrations_batched\": {},\n{indent}  \"frozen_compactions\": {},\n\
         {indent}  \"shard_barriers\": {},\n{indent}  \"cross_shard_conflicts\": {},\n\
         {indent}  \"committed\": {}\n{indent}}}",
        cell.sched.sched_wall_ns,
        cell.pick_ns(),
        cell.sched.pick_next_calls,
        cell.sched.priority_evals,
        cell.sched.priority_cache_hits,
        cell.sched.pair_checks,
        cell.sched.pair_cache_hits,
        cell.sched.heap_pushes,
        cell.sched.heap_stale_pops,
        cell.sched.heap_validated_picks,
        cell.sched.pair_invalidations,
        cell.sched.pair_cache_evictions,
        cell.sched.pair_cache_probes,
        cell.sched.clear_repair_clears,
        cell.sched.clear_repair_visits,
        cell.sched.index_migrations,
        cell.sched.migrations_batched,
        cell.sched.frozen_compactions,
        cell.sched.shard_barriers,
        cell.sched.cross_shard_conflicts,
        cell.committed,
    )
}

/// One scenario's headline numbers, as they land in `BENCH_sched.json`
/// — handed back to the caller so `--bench-profile` can append the run
/// to `results/bench-history.csv` without re-parsing its own JSON.
pub struct ScenarioSummary {
    /// Scenario name (`mm_cca_burst_mpl1024`, …).
    pub name: String,
    /// Policy display name.
    pub policy: String,
    /// Transactions in the burst (the effective MPL).
    pub mpl: usize,
    /// Mean wall ns per `pick_next` under the incremental engine
    /// (machine-dependent).
    pub cached_pick_ns: f64,
    /// Oracle wall / incremental wall (machine-dependent).
    pub sched_speedup: f64,
    /// Deterministic counters from the incremental cell.
    pub heap_stale_pops: u64,
    /// Timed-half membership walks actually performed.
    pub index_migrations: u64,
    /// Compute bursts whose membership walk was skipped entirely.
    pub migrations_batched: u64,
    /// Pair-cache entries dropped to make room.
    pub pair_cache_evictions: u64,
    /// Pair-cache victim-way probes after a primary-way miss.
    pub pair_cache_probes: u64,
    /// Timed-half frozen-entry compaction passes.
    pub frozen_compactions: u64,
    /// Conflict epochs evaluated by per-shard workers (0 at shards = 1).
    pub shard_barriers: u64,
}

/// Run the scheduler-overhead profile and render both JSON documents:
/// the full per-mode counter dump (`BENCH_scheduling.json`) and the
/// per-scenario summary committed at the repo root (`BENCH_sched.json`),
/// plus the structured per-scenario rows for history appends. Both
/// documents carry `commit` verbatim (pass the current git revision, or
/// a placeholder when unknown).
///
/// `quick` restricts the profile to the CI regression smoke cells; the
/// full profile sweeps policy × MPL plus the steady states. Panics if
/// any scenario's incremental trajectory diverges from the recompute
/// oracle — the profile doubles as an end-to-end equivalence check at
/// realistic scales.
pub fn bench_profile_docs(quick: bool, commit: &str) -> (String, String, Vec<ScenarioSummary>) {
    let mut entries = Vec::new();
    let mut summaries = Vec::new();
    let mut rows = Vec::new();
    let mut walls: Vec<(&'static str, u64)> = Vec::new();
    for sc in scenarios(quick) {
        eprintln!("profiling {} ({} reps x 2 modes)…", sc.name, sc.reps);
        let policy = sc.policy.as_ref();
        let (cold, cold_outcomes) = run_cell(&sc.cfg, policy, sc.reps, CacheMode::AlwaysRecompute);
        let (cached, cached_outcomes) = run_cell(&sc.cfg, policy, sc.reps, CacheMode::Incremental);
        assert_eq!(
            cold_outcomes, cached_outcomes,
            "{}: incremental trajectory diverged from the recompute oracle",
            sc.name
        );
        let speedup = cold.sched.sched_wall_ns as f64 / cached.sched.sched_wall_ns.max(1) as f64;
        eprintln!(
            "  sched wall: cold {:.2} ms, cached {:.2} ms ({speedup:.2}x); \
             pick {:.0} ns -> {:.0} ns",
            cold.sched.sched_wall_ns as f64 / 1e6,
            cached.sched.sched_wall_ns as f64 / 1e6,
            cold.pick_ns(),
            cached.pick_ns(),
        );
        entries.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"policy\": \"{}\",\n      \
             \"num_transactions\": {},\n      \"arrival_rate_tps\": {:.1},\n      \
             \"reps\": {},\n      \"identical_trajectories\": true,\n      \
             \"recompute\": {},\n      \"incremental\": {},\n      \
             \"sched_speedup\": {:.2}\n    }}",
            sc.name,
            policy.name(),
            sc.cfg.run.num_transactions,
            sc.cfg.run.arrival_rate_tps,
            sc.reps,
            cell_json(&cold, "      "),
            cell_json(&cached, "      "),
            speedup,
        ));
        summaries.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"policy\": \"{}\",\n      \
             \"mpl\": {},\n      \"cached_pick_ns\": {:.1},\n      \
             \"oracle_pick_ns\": {:.1},\n      \"sched_speedup\": {:.2},\n      \
             \"heap_stale_pops\": {},\n      \"clear_repair_clears\": {},\n      \
             \"clear_repair_visits\": {},\n      \"index_migrations\": {},\n      \
             \"migrations_batched\": {},\n      \"pair_cache_evictions\": {},\n      \
             \"pair_cache_probes\": {},\n      \"frozen_compactions\": {},\n      \
             \"shard_barriers\": {},\n      \"cross_shard_conflicts\": {}\n    }}",
            sc.name,
            policy.name(),
            sc.cfg.run.num_transactions,
            cached.pick_ns(),
            cold.pick_ns(),
            speedup,
            cached.sched.heap_stale_pops,
            cached.sched.clear_repair_clears,
            cached.sched.clear_repair_visits,
            cached.sched.index_migrations,
            cached.sched.migrations_batched,
            cached.sched.pair_cache_evictions,
            cached.sched.pair_cache_probes,
            cached.sched.frozen_compactions,
            cached.sched.shard_barriers,
            cached.sched.cross_shard_conflicts,
        ));
        rows.push(ScenarioSummary {
            name: sc.name.to_string(),
            policy: policy.name().to_string(),
            mpl: sc.cfg.run.num_transactions,
            cached_pick_ns: cached.pick_ns(),
            sched_speedup: speedup,
            heap_stale_pops: cached.sched.heap_stale_pops,
            index_migrations: cached.sched.index_migrations,
            migrations_batched: cached.sched.migrations_batched,
            pair_cache_evictions: cached.sched.pair_cache_evictions,
            pair_cache_probes: cached.sched.pair_cache_probes,
            frozen_compactions: cached.sched.frozen_compactions,
            shard_barriers: cached.sched.shard_barriers,
        });
        walls.push((sc.name, cached.sched.sched_wall_ns));
    }
    let full = format!(
        "{{\n  \"generated_by\": \"experiments --bench-profile\",\n  \
         \"commit\": \"{commit}\",\n  \
         \"note\": \"sched_wall_ns/pick_ns are machine-dependent; counters and identity flags are deterministic\",\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Parallel-speedup headline: the MPL-1024 CCA burst at 4 shards vs
    // the serial run of the same burst. Wall clocks are machine-dependent
    // (a single-core host cannot show >1x), so the host's core count is
    // recorded alongside the ratio to keep the number honest.
    let wall_of = |name: &str| {
        walls
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, w)| w.max(1))
    };
    let parallel = match (
        wall_of("mm_cca_burst_mpl1024"),
        wall_of("mm_cca_burst_mpl1024_shards4"),
    ) {
        (Some(serial), Some(sharded)) => format!(
            ",\n  \"parallel\": {{\n    \"scenario\": \"mm_cca_burst_mpl1024\",\n    \
             \"shards\": 4,\n    \"host_cores\": {},\n    \
             \"serial_sched_wall_ns\": {serial},\n    \
             \"sharded_sched_wall_ns\": {sharded},\n    \
             \"parallel_speedup\": {:.2}\n  }}",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            serial as f64 / sharded as f64,
        ),
        _ => String::new(),
    };
    let summary = format!(
        "{{\n  \"generated_by\": \"experiments --bench-profile\",\n  \
         \"commit\": \"{commit}\",\n  \
         \"note\": \"pick latencies are machine-dependent; counters are deterministic\",\n  \
         \"scenarios\": [\n{}\n  ]{parallel}\n}}\n",
        summaries.join(",\n")
    );
    (full, summary, rows)
}

/// The full profile document alone — see [`bench_profile_docs`].
pub fn bench_profile_json(quick: bool, commit: &str) -> String {
    bench_profile_docs(quick, commit).0
}
