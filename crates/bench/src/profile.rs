//! Scheduler-overhead profiling: the `--bench-profile` mode.
//!
//! Runs matched pairs of simulations — the production incremental engine
//! ([`CacheMode::Incremental`]) against the always-recompute oracle
//! ([`CacheMode::AlwaysRecompute`], the pre-incremental hot loop kept
//! verbatim) — with wall-clock timing of `pick_next` enabled, checks the
//! two trajectories agree bit-for-bit, and renders the counters plus the
//! measured speedup as `BENCH_scheduling.json`.
//!
//! The scheduler wall time is a *profiling artifact*: it varies by
//! machine and run, unlike every other field the simulator emits. The
//! committed JSON is a baseline snapshot, not a byte-reproducible
//! output; the counters and the `identical` flags are the deterministic
//! part.

use rtx_core::Cca;
use rtx_rtdb::{
    run_simulation_profiled_with_mode, CacheMode, Policy, RunSummary, SchedStats, SimConfig,
};

/// One scenario of the profile: a config and a policy, run `reps` times
/// (distinct seeds) under both cache modes.
struct Scenario {
    name: &'static str,
    cfg: SimConfig,
    reps: u64,
}

/// Accumulated counters for one (scenario, mode) cell.
#[derive(Default)]
struct Cell {
    sched: SchedStats,
    committed: u64,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    // High-MPL burst: arrivals far faster than service, so ~all
    // transactions are simultaneously active and every reschedule pass
    // walks an n-deep system. This is where the caches matter most.
    for &mpl in &[64usize, 256] {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = mpl;
        cfg.run.arrival_rate_tps = 2_000.0;
        out.push(Scenario {
            name: if mpl == 64 {
                "mm_cca_burst_mpl64"
            } else {
                "mm_cca_burst_mpl256"
            },
            cfg,
            reps: 5,
        });
    }
    // Paper-scale steady state on main memory and disk: the P-list stays
    // short here (§3.3), so this bounds the *overhead* of the
    // bookkeeping in the regime the paper argues is typical.
    let mut mm = SimConfig::mm_base();
    mm.run.num_transactions = 2_000;
    mm.run.arrival_rate_tps = 9.0;
    out.push(Scenario {
        name: "mm_cca_steady",
        cfg: mm,
        reps: 3,
    });
    let mut disk = SimConfig::disk_base();
    disk.run.num_transactions = 1_000;
    disk.run.arrival_rate_tps = 4.0;
    out.push(Scenario {
        name: "disk_cca_steady",
        cfg: disk,
        reps: 3,
    });
    out
}

fn run_cell(
    cfg: &SimConfig,
    policy: &dyn Policy,
    reps: u64,
    mode: CacheMode,
) -> (Cell, Vec<RunSummary>) {
    let mut cell = Cell::default();
    let mut outcomes = Vec::new();
    for rep in 0..reps {
        let mut c = cfg.clone();
        c.run.seed = rep;
        let s = run_simulation_profiled_with_mode(&c, policy, mode);
        cell.sched.pick_next_calls += s.sched.pick_next_calls;
        cell.sched.priority_evals += s.sched.priority_evals;
        cell.sched.priority_cache_hits += s.sched.priority_cache_hits;
        cell.sched.pair_checks += s.sched.pair_checks;
        cell.sched.pair_cache_hits += s.sched.pair_cache_hits;
        cell.sched.sched_wall_ns += s.sched.sched_wall_ns;
        cell.committed += s.committed;
        // Everything but the scheduler's own instrumentation must be
        // identical across modes.
        outcomes.push(s.sans_sched_stats());
    }
    (cell, outcomes)
}

fn cell_json(cell: &Cell, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"sched_wall_ns\": {},\n{indent}  \"pick_next_calls\": {},\n\
         {indent}  \"priority_evals\": {},\n{indent}  \"priority_cache_hits\": {},\n\
         {indent}  \"pair_checks\": {},\n{indent}  \"pair_cache_hits\": {},\n\
         {indent}  \"committed\": {}\n{indent}}}",
        cell.sched.sched_wall_ns,
        cell.sched.pick_next_calls,
        cell.sched.priority_evals,
        cell.sched.priority_cache_hits,
        cell.sched.pair_checks,
        cell.sched.pair_cache_hits,
        cell.committed,
    )
}

/// Run the scheduler-overhead profile and render `BENCH_scheduling.json`.
///
/// Returns the JSON document. Panics if any scenario's incremental
/// trajectory diverges from the recompute oracle — the profile doubles
/// as an end-to-end equivalence check at realistic scales.
pub fn bench_profile_json() -> String {
    let policy = Cca::base();
    let mut entries = Vec::new();
    for sc in scenarios() {
        eprintln!("profiling {} ({} reps x 2 modes)…", sc.name, sc.reps);
        let (cold, cold_outcomes) = run_cell(&sc.cfg, &policy, sc.reps, CacheMode::AlwaysRecompute);
        let (cached, cached_outcomes) = run_cell(&sc.cfg, &policy, sc.reps, CacheMode::Incremental);
        assert_eq!(
            cold_outcomes, cached_outcomes,
            "{}: incremental trajectory diverged from the recompute oracle",
            sc.name
        );
        let speedup = cold.sched.sched_wall_ns as f64 / cached.sched.sched_wall_ns.max(1) as f64;
        eprintln!(
            "  sched wall: cold {:.2} ms, cached {:.2} ms ({speedup:.2}x)",
            cold.sched.sched_wall_ns as f64 / 1e6,
            cached.sched.sched_wall_ns as f64 / 1e6,
        );
        entries.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"policy\": \"{}\",\n      \
             \"num_transactions\": {},\n      \"arrival_rate_tps\": {:.1},\n      \
             \"reps\": {},\n      \"identical_trajectories\": true,\n      \
             \"recompute\": {},\n      \"incremental\": {},\n      \
             \"sched_speedup\": {:.2}\n    }}",
            sc.name,
            policy.name(),
            sc.cfg.run.num_transactions,
            sc.cfg.run.arrival_rate_tps,
            sc.reps,
            cell_json(&cold, "      "),
            cell_json(&cached, "      "),
            speedup,
        ));
    }
    format!(
        "{{\n  \"generated_by\": \"experiments --bench-profile\",\n  \
         \"note\": \"sched_wall_ns is machine-dependent; counters and identity flags are deterministic\",\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}
