//! Micro-benchmarks of the `DataSet` bitset kernels — `is_disjoint` is
//! the innermost operation of every conflict test (`is_unsafe_with`
//! evaluates two of them per transaction pair), so its per-call cost
//! bounds the scheduler's O(pairs) work at every conflict epoch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_preanalysis::sets::{DataSet, ItemId};

/// Deterministic splitmix-style stream for reproducible populations.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, below: u32) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as u32) % below
    }
}

/// A pseudo-random set of `n` items drawn from a `universe`-item space.
fn random_set(seed: u64, universe: u32, n: usize) -> DataSet {
    let mut rng = Lcg(seed);
    let mut s = DataSet::new();
    while s.len() < n {
        s.insert(ItemId(rng.next(universe)));
    }
    s
}

fn bench_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    // (universe, population) pairs: the paper's 30-item hot store, a
    // disk-resident 1 000-item store, and a wide synthetic store whose
    // word vectors exercise the 4-wide blocked path.
    for &(universe, pop) in &[(30u32, 10usize), (1_000, 20), (16_384, 64)] {
        let a = random_set(1, universe, pop);
        let b = random_set(2, universe, pop);
        let id = format!("u{universe}_n{pop}");
        group.bench_with_input(BenchmarkId::new("is_disjoint", &id), &id, |bch, _| {
            bch.iter(|| black_box(black_box(&a).is_disjoint(black_box(&b))));
        });
    }
    // Worst case for early exit: provably disjoint wide sets (odd vs even
    // word parity) force a full-length scan.
    let evens: DataSet = (0..256u32).map(|i| ItemId(i * 128)).collect();
    let odds: DataSet = (0..256u32).map(|i| ItemId(i * 128 + 64)).collect();
    group.bench_function("is_disjoint/full_scan_512w", |bch| {
        bch.iter(|| black_box(black_box(&evens).is_disjoint(black_box(&odds))));
    });
    group.finish();
}

fn bench_pairwise_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset_pairwise");
    // The conflict-epoch shape: one partial's written set probed against
    // many candidates' might_access sets (the parallel epoch splits this
    // very loop across shard workers).
    for &mpl in &[64usize, 1024] {
        let written = random_set(3, 30, 8);
        let candidates: Vec<DataSet> = (0..mpl)
            .map(|i| random_set(100 + i as u64, 30, 12))
            .collect();
        group.bench_with_input(BenchmarkId::new("probe_all", mpl), &mpl, |bch, _| {
            bch.iter(|| {
                let mut unsafe_count = 0usize;
                for cand in &candidates {
                    if !written.is_disjoint(cand) {
                        unsafe_count += 1;
                    }
                }
                black_box(unsafe_count)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_disjoint, bench_pairwise_conflict
}
criterion_main!(benches);
