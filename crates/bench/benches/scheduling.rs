//! Micro-benchmarks of the scheduling hot path: priority evaluation.
//!
//! §3.3 argues CCA's overhead is acceptable because the P-list stays
//! short (1–2 entries); these benches quantify the cost of one priority
//! evaluation as the P-list grows, for each policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_core::{Cca, EdfHp, EdfWait, Lsf};
use rtx_preanalysis::sets::DataSet;
use rtx_preanalysis::table::TypeId;
use rtx_preanalysis::ItemId;
use rtx_rtdb::policy::{Policy, SystemView};
use rtx_rtdb::txn::{Stage, Transaction, TxnId, TxnState};
use rtx_sim::time::{SimDuration, SimTime};

fn mk_txn(id: u32, items: &[u32], accessed: &[u32], service_ms: f64) -> Transaction {
    Transaction {
        id: TxnId(id),
        ty: TypeId(0),
        arrival: SimTime::from_ms(id as f64),
        deadline: SimTime::from_ms(1000.0 + id as f64 * 10.0),
        resource_time: SimDuration::from_ms(80.0),
        items: items.iter().map(|&i| ItemId(i)).collect(),
        io_pattern: vec![],
        modes: Vec::new(),
        update_time: SimDuration::from_ms(4.0),
        might_access: items.iter().map(|&i| ItemId(i)).collect(),
        state: TxnState::Ready,
        progress: 0,
        stage: Stage::Lock,
        cpu_left: SimDuration::ZERO,
        burst_start: SimTime::ZERO,
        accessed: accessed.iter().map(|&i| ItemId(i)).collect(),
        written: DataSet::new(),
        service: SimDuration::from_ms(service_ms),
        restarts: 0,
        waiting_for: None,
        decision: None,
        criticality: 0,
        doomed: false,
        doomed_at: SimTime::ZERO,
        io_retries: 0,
        retry_token: 0,
        finish: None,
    }
}

/// A system with `plist` partially executed transactions plus the
/// candidate, all conflicting on a 30-item database.
fn system(plist: usize) -> Vec<Transaction> {
    let mut txns: Vec<Transaction> = (0..plist as u32)
        .map(|i| {
            let items: Vec<u32> = (0..20).map(|k| (i * 3 + k) % 30).collect();
            let accessed: Vec<u32> = items[..10].to_vec();
            mk_txn(i, &items, &accessed, 40.0)
        })
        .collect();
    let cand_items: Vec<u32> = (0..20).collect();
    txns.push(mk_txn(plist as u32, &cand_items, &[], 0.0));
    txns
}

fn bench_priority_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_eval");
    let policies: Vec<(&str, Box<dyn Policy>)> = vec![
        ("edf_hp", Box::new(EdfHp)),
        ("lsf", Box::new(Lsf)),
        ("edf_wait", Box::new(EdfWait)),
        ("cca", Box::new(Cca::base())),
    ];
    for &plist in &[1usize, 2, 8, 32] {
        let txns = system(plist);
        let view = SystemView::new(SimTime::from_ms(500.0), &txns, SimDuration::from_ms(4.0));
        let candidate = &txns[plist];
        for (name, policy) in &policies {
            group.bench_with_input(BenchmarkId::new(*name, plist), &plist, |b, _| {
                b.iter(|| black_box(policy.priority(candidate, &view)));
            });
        }
    }
    group.finish();
}

fn bench_penalty(c: &mut Criterion) {
    let mut group = c.benchmark_group("penalty_of_conflict");
    for &plist in &[1usize, 2, 8, 32] {
        let txns = system(plist);
        let view = SystemView::new(SimTime::from_ms(500.0), &txns, SimDuration::from_ms(4.0));
        let candidate = &txns[plist];
        group.bench_with_input(BenchmarkId::from_parameter(plist), &plist, |b, _| {
            b.iter(|| black_box(rtx_core::penalty_of_conflict(candidate, &view)));
        });
    }
    group.finish();
}

fn bench_lock_table(c: &mut Criterion) {
    use rtx_rtdb::locks::{LockMode, LockTable};
    let mut group = c.benchmark_group("lock_table");
    group.bench_function("request_release_cycle", |b| {
        let mut lt = LockTable::new(30);
        b.iter(|| {
            for i in 0..20u32 {
                lt.request(TxnId(1), ItemId(i % 30), LockMode::Exclusive);
            }
            black_box(lt.release_all(TxnId(1)))
        });
    });
    group.bench_function("held_by_scan", |b| {
        let mut lt = LockTable::new(1000);
        for i in (0..1000u32).step_by(7) {
            lt.request(TxnId(1), ItemId(i), LockMode::Exclusive);
        }
        b.iter(|| black_box(lt.held_by(TxnId(1)).len()));
    });
    group.finish();
}

/// One scheduling decision over a frozen n-deep system: the lazy-heap
/// pick path ([`CacheMode::Incremental`]) against the verbatim full
/// scan ([`CacheMode::AlwaysRecompute`]), for both ConflictState
/// policies. `warm` measures the steady state (caches populated, heap
/// current — the amortized O(log n) claim); `cold` invalidates every
/// cached priority before each pick, so the pick pays a full recompute
/// plus heap rebuild (the worst case the laziness can produce).
fn bench_best_by_priority(c: &mut Criterion) {
    use rtx_rtdb::engine::PickHarness;
    use rtx_rtdb::{CacheMode, SimConfig};
    let mut group = c.benchmark_group("best_by_priority");
    let policies: Vec<(&str, Box<dyn Policy>)> = vec![
        ("cca", Box::new(Cca::base())),
        ("edf_wait", Box::new(EdfWait)),
    ];
    for &mpl in &[16usize, 64, 256] {
        // Half the system partially executed (P-list members), half
        // fresh candidates — a contended mid-burst snapshot.
        let txns: Vec<Transaction> = (0..mpl as u32)
            .map(|i| {
                let items: Vec<u32> = (0..8).map(|k| (i * 3 + k) % 30).collect();
                if i % 2 == 0 {
                    mk_txn(i, &items, &items[..4], 40.0)
                } else {
                    mk_txn(i, &items, &[], 0.0)
                }
            })
            .collect();
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = mpl;
        for (name, policy) in &policies {
            let heap_warm =
                PickHarness::new(&cfg, policy.as_ref(), txns.clone(), CacheMode::Incremental);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_heap_warm"), mpl),
                &mpl,
                |b, _| b.iter(|| black_box(heap_warm.pick())),
            );
            let mut heap_cold =
                PickHarness::new(&cfg, policy.as_ref(), txns.clone(), CacheMode::Incremental);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_heap_cold"), mpl),
                &mpl,
                |b, _| {
                    b.iter(|| {
                        heap_cold.invalidate_conflict_caches();
                        black_box(heap_cold.pick())
                    })
                },
            );
            let scan = PickHarness::new(
                &cfg,
                policy.as_ref(),
                txns.clone(),
                CacheMode::AlwaysRecompute,
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_scan"), mpl),
                &mpl,
                |b, _| b.iter(|| black_box(scan.pick())),
            );
        }
    }
    group.finish();
}

/// Whole-run scheduling cost at high multiprogramming levels: a burst
/// arrival pattern keeps ~all `n` transactions simultaneously active, so
/// every reschedule pass walks an `n`-deep system. `cached` is the
/// production incremental engine; `cold` is the always-recompute oracle
/// (the pre-incremental hot loop, preserved as [`CacheMode::AlwaysRecompute`]).
fn bench_high_mpl(c: &mut Criterion) {
    use rtx_rtdb::{run_simulation_with_mode, CacheMode, SimConfig};
    let mut group = c.benchmark_group("high_mpl_run");
    group.sample_size(10);
    for &mpl in &[64usize, 256] {
        let mut cfg = SimConfig::mm_base();
        cfg.run.num_transactions = mpl;
        // Arrivals far faster than service: the active set ramps to ~mpl.
        cfg.run.arrival_rate_tps = 2_000.0;
        for (name, mode) in [
            ("cca_cached", CacheMode::Incremental),
            ("cca_cold", CacheMode::AlwaysRecompute),
        ] {
            group.bench_with_input(BenchmarkId::new(name, mpl), &mpl, |b, _| {
                b.iter(|| black_box(run_simulation_with_mode(&cfg, &Cca::base(), mode)));
            });
        }
    }
    group.finish();
}

fn bench_unused(_: &mut Criterion) {
    // Keep DataSet in scope for the doc reference above.
    let _ = DataSet::new();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_priority_eval, bench_penalty, bench_lock_table, bench_best_by_priority, bench_high_mpl, bench_unused
}
criterion_main!(benches);
