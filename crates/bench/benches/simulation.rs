//! End-to-end simulation throughput: how many simulated transactions per
//! wall-clock second the engine processes under each policy and resource
//! model. These are the numbers that determine how long the paper-scale
//! experiment harness takes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_core::{Cca, EdfHp};
use rtx_rtdb::engine::run_simulation;
use rtx_rtdb::policy::Policy;
use rtx_rtdb::SimConfig;

fn bench_mm_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_mm");
    group.sample_size(10);
    let policies: Vec<(&str, Box<dyn Policy>)> =
        vec![("edf_hp", Box::new(EdfHp)), ("cca", Box::new(Cca::base()))];
    for (name, policy) in &policies {
        for &rate in &[5.0f64, 10.0] {
            let mut cfg = SimConfig::mm_base();
            cfg.run.num_transactions = 300;
            cfg.run.arrival_rate_tps = rate;
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{rate}tps")),
                &cfg,
                |b, cfg| {
                    b.iter(|| black_box(run_simulation(cfg, policy.as_ref())));
                },
            );
        }
    }
    group.finish();
}

fn bench_disk_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_disk");
    group.sample_size(10);
    let policies: Vec<(&str, Box<dyn Policy>)> =
        vec![("edf_hp", Box::new(EdfHp)), ("cca", Box::new(Cca::base()))];
    for (name, policy) in &policies {
        let mut cfg = SimConfig::disk_base();
        cfg.run.num_transactions = 150;
        cfg.run.arrival_rate_tps = 5.0;
        group.bench_with_input(BenchmarkId::new(*name, "5tps"), &cfg, |b, cfg| {
            b.iter(|| black_box(run_simulation(cfg, policy.as_ref())));
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use rtx_rtdb::workload::{ArrivalGenerator, TypeTable};
    use rtx_sim::rng::StreamSeeder;
    let mut group = c.benchmark_group("workload");
    let cfg = SimConfig::mm_base();
    group.bench_function("type_table_50", |b| {
        b.iter(|| black_box(TypeTable::generate(&cfg, &StreamSeeder::new(1))));
    });
    group.bench_function("generate_1000_arrivals", |b| {
        let seeder = StreamSeeder::new(1);
        let table = TypeTable::generate(&cfg, &seeder);
        b.iter(|| {
            let mut gen = ArrivalGenerator::new(&cfg, &table, &seeder);
            let mut count = 0;
            while gen.next_transaction().is_some() {
                count += 1;
            }
            black_box(count)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_mm_runs, bench_disk_runs, bench_workload_generation
}
criterion_main!(benches);
