//! Micro-benchmarks of the pre-analysis: tree construction is a per-type
//! one-off, but the set operations behind the conflict/safety relations
//! run at every scheduling point.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_preanalysis::program::{Program, ProgramBuilder};
use rtx_preanalysis::relations::{conflict, safety, Position};
use rtx_preanalysis::sets::{DataSet, ItemId};
use rtx_preanalysis::table::AnalysisSet;
use rtx_preanalysis::tree::TransactionTree;

/// A program with `depth` nested binary decision points (2^depth leaves).
fn deep_program(depth: u32) -> Program {
    fn build(
        b: rtx_preanalysis::program::BlockBuilder,
        depth: u32,
        base: u32,
    ) -> rtx_preanalysis::program::BlockBuilder {
        let b = b.access(ItemId(base));
        if depth == 0 {
            return b;
        }
        b.decision(move |d| {
            d.branch(move |b| build(b, depth - 1, base * 2 + 1))
                .branch(move |b| build(b, depth - 1, base * 2 + 2))
        })
    }
    // ProgramBuilder and BlockBuilder share the shape; wrap manually.
    let mut pb = ProgramBuilder::new("deep").access(ItemId(0));
    pb = pb.decision(|d| {
        d.branch(|b| build(b, depth - 1, 1))
            .branch(|b| build(b, depth - 1, 2))
    });
    pb.build()
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    for &depth in &[2u32, 5, 8] {
        let program = deep_program(depth);
        group.bench_with_input(
            BenchmarkId::from_parameter(depth),
            &program,
            |b, program| {
                b.iter(|| black_box(TransactionTree::from_program(program)));
            },
        );
    }
    group.finish();
}

fn bench_relations(c: &mut Criterion) {
    let mut group = c.benchmark_group("relations");
    let a = TransactionTree::from_program(&deep_program(6));
    let bt = TransactionTree::from_program(&deep_program(6));
    group.bench_function("conflict_deep_roots", |bch| {
        bch.iter(|| black_box(conflict(Position::at_root(&a), Position::at_root(&bt))));
    });
    group.bench_function("safety_deep_roots", |bch| {
        bch.iter(|| black_box(safety(Position::at_root(&a), Position::at_root(&bt))));
    });

    // The paper's 50-type straight-line workload: full table precompute.
    let programs: Vec<Program> = (0..50)
        .map(|k| {
            Program::straight_line(
                format!("T{k}"),
                (0..20u32).map(move |i| ItemId((k * 7 + i * 3) % 30)),
            )
        })
        .collect();
    group.bench_function("analysis_set_50_types", |bch| {
        bch.iter(|| black_box(AnalysisSet::new(&programs)));
    });
    group.finish();
}

fn bench_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_sets");
    let a: DataSet = (0..30u32).step_by(2).collect();
    let b: DataSet = (1..30u32).step_by(2).collect();
    let overlap: DataSet = (0..30u32).step_by(3).collect();
    group.bench_function("disjoint_test_hit", |bch| {
        bch.iter(|| black_box(a.is_disjoint(&overlap)));
    });
    group.bench_function("disjoint_test_miss", |bch| {
        bch.iter(|| black_box(a.is_disjoint(&b)));
    });
    group.bench_function("union", |bch| {
        bch.iter(|| black_box(a.union(&b)));
    });
    group.bench_function("build_from_20_items", |bch| {
        bch.iter(|| {
            let s: DataSet = (0..20u32).collect();
            black_box(s)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tree_build, bench_relations, bench_sets
}
criterion_main!(benches);
