//! Micro-benchmarks of the simulation kernel: the event calendar and the
//! RNG/distribution layer are on the hot path of every simulated event.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rtx_sim::calendar::Calendar;
use rtx_sim::dist::{exponential, sample_distinct, uniform_below, NormalSampler};
use rtx_sim::rng::{StreamSeeder, Xoshiro256};
use rtx_sim::time::SimTime;

fn bench_calendar(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    for &n in &[64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("schedule_pop_churn", n), &n, |b, &n| {
            b.iter(|| {
                let mut cal = Calendar::new();
                // Seed with n events, then steady-state churn: pop one,
                // schedule one — the simulator's dominant pattern.
                for i in 0..n {
                    cal.schedule(SimTime::from_micros((i * 37 % 997) as u64), i);
                }
                for i in 0..n {
                    let fired = cal.pop().expect("non-empty");
                    cal.schedule(fired.time + rtx_sim::SimDuration::from_micros(1_000), i);
                }
                while cal.pop().is_some() {}
                black_box(cal.scheduled_total())
            });
        });
        group.bench_with_input(BenchmarkId::new("cancel_heavy", n), &n, |b, &n| {
            b.iter(|| {
                let mut cal = Calendar::new();
                let handles: Vec<_> = (0..n)
                    .map(|i| cal.schedule(SimTime::from_micros((i * 13 % 509) as u64), i))
                    .collect();
                // Cancel half — the preemption-heavy regime.
                for h in handles.iter().step_by(2) {
                    cal.cancel(*h);
                }
                while cal.pop().is_some() {}
                black_box(cal.len())
            });
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("xoshiro_next", |b| {
        let mut rng = Xoshiro256::seed_from_u64(1);
        b.iter(|| black_box(rng.next_raw()));
    });
    group.bench_function("exponential_draw", |b| {
        let mut rng = Xoshiro256::seed_from_u64(2);
        b.iter(|| black_box(exponential(&mut rng, 125.0)));
    });
    group.bench_function("normal_draw", |b| {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut normal = NormalSampler::new();
        b.iter(|| black_box(normal.sample(&mut rng, 20.0, 10.0)));
    });
    group.bench_function("uniform_below_draw", |b| {
        let mut rng = Xoshiro256::seed_from_u64(4);
        b.iter(|| black_box(uniform_below(&mut rng, 50)));
    });
    group.bench_function("sample_20_of_30", |b| {
        // The per-type item draw of the paper's workload generator.
        let mut rng = Xoshiro256::seed_from_u64(5);
        b.iter(|| black_box(sample_distinct(&mut rng, 30, 20)));
    });
    group.bench_function("stream_derivation", |b| {
        let seeder = StreamSeeder::new(42);
        b.iter(|| black_box(seeder.stream("arrivals").next_raw()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_calendar, bench_rng
}
criterion_main!(benches);
