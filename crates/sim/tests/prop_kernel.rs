//! Property-based tests for the simulation kernel: the event calendar must
//! behave exactly like a sorted list with tombstones under arbitrary
//! interleavings of schedule/cancel/pop, and the statistics accumulators
//! must agree with naive recomputation.

use proptest::prelude::*;
use rtx_sim::calendar::{Calendar, EventHandle};
use rtx_sim::stats::{Accumulator, Replications, TimeWeighted};
use rtx_sim::time::SimTime;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta_us` after the latest scheduled time so far.
    Schedule(u64),
    /// Cancel the i-th handle issued (mod handles issued so far).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..5_000).prop_map(Op::Schedule),
        (0usize..64).prop_map(Op::Cancel),
        Just(Op::Pop),
    ]
}

/// Reference model: a vector of (time, seq, alive) triples.
#[derive(Default)]
struct Model {
    entries: Vec<(u64, u64, bool)>, // (time, seq, alive)
    now: u64,
}

impl Model {
    fn schedule(&mut self, time: u64, seq: u64) {
        self.entries.push((time, seq, true));
    }

    fn cancel(&mut self, seq: u64) -> bool {
        for e in &mut self.entries {
            if e.1 == seq && e.2 {
                e.2 = false;
                return true;
            }
        }
        false
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.2)
            .min_by_key(|(_, e)| (e.0, e.1))
            .map(|(i, _)| i)?;
        let (time, seq, _) = self.entries.remove(best);
        self.now = time;
        Some((time, seq))
    }

    fn live(&self) -> usize {
        self.entries.iter().filter(|e| e.2).count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The calendar and the naive sorted-list model produce identical
    /// event sequences under arbitrary operation interleavings.
    #[test]
    fn calendar_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut cal: Calendar<u64> = Calendar::new();
        let mut model = Model::default();
        let mut handles: Vec<(EventHandle, u64)> = Vec::new(); // (handle, seq)
        let mut next_seq = 0u64;

        for op in ops {
            match op {
                Op::Schedule(delta) => {
                    // Always schedule at or after `now` so it is legal.
                    let at = cal.now().as_micros() + delta;
                    let h = cal.schedule(SimTime::from_micros(at), next_seq);
                    model.schedule(at, next_seq);
                    handles.push((h, next_seq));
                    next_seq += 1;
                }
                Op::Cancel(i) => {
                    if handles.is_empty() { continue; }
                    let (h, seq) = handles[i % handles.len()];
                    let did = cal.cancel(h);
                    let did_model = model.cancel(seq);
                    prop_assert_eq!(did, did_model, "cancel outcome diverged");
                }
                Op::Pop => {
                    let fired = cal.pop();
                    let expected = model.pop();
                    match (fired, expected) {
                        (None, None) => {}
                        (Some(f), Some((t, seq))) => {
                            prop_assert_eq!(f.time.as_micros(), t);
                            prop_assert_eq!(f.payload, seq);
                            // Once fired, the model entry is gone; mark it
                            // dead in our handle map via model state only.
                        }
                        (a, b) => prop_assert!(false, "pop diverged: {a:?} vs {b:?}"),
                    }
                }
            }
            prop_assert_eq!(cal.len(), model.live(), "live count diverged");
        }

        // Drain both and compare orderings exactly.
        loop {
            match (cal.pop(), model.pop()) {
                (None, None) => break,
                (Some(f), Some((t, seq))) => {
                    prop_assert_eq!(f.time.as_micros(), t);
                    prop_assert_eq!(f.payload, seq);
                }
                (a, b) => prop_assert!(false, "drain diverged: {a:?} vs {b:?}"),
            }
        }
    }

    /// Welford accumulator agrees with two-pass mean/variance.
    #[test]
    fn accumulator_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            prop_assert!((acc.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()),
                "welford {} vs two-pass {}", acc.variance(), var);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(acc.min(), Some(min));
        prop_assert_eq!(acc.max(), Some(max));
    }

    /// Splitting observations across two accumulators and merging equals
    /// one sequential accumulator.
    #[test]
    fn accumulator_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len();
        let mut whole = Accumulator::new();
        for &x in &xs { whole.record(x); }
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for &x in &xs[..split] { a.record(x); }
        for &x in &xs[split..] { b.record(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Time-weighted mean equals the explicit integral of the step function.
    #[test]
    fn time_weighted_matches_integral(
        steps in proptest::collection::vec((0.0f64..100.0, -50.0f64..50.0), 1..50),
        tail in 0.0f64..100.0,
    ) {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        let mut t = 0.0;
        let mut value = 0.0;
        let mut integral = 0.0;
        for (dt, v) in steps {
            integral += value * dt;
            t += dt;
            value = v;
            tw.set(t, v);
        }
        let end = t + tail;
        integral += value * tail;
        let expected = if end > 0.0 { integral / end } else { value };
        prop_assert!((tw.mean_until(end) - expected).abs() < 1e-6,
            "tw {} vs integral {}", tw.mean_until(end), expected);
    }

    /// The CI half-width shrinks (weakly) as identical batches of data are
    /// appended, and the mean stays put.
    #[test]
    fn replication_ci_sane(base in proptest::collection::vec(0.0f64..100.0, 2..20)) {
        let mut r = Replications::new();
        for &v in &base { r.record(v); }
        let e1 = r.estimate();
        prop_assert!(e1.half_width >= 0.0);
        // Mean lies within [min, max].
        let min = base.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = base.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e1.mean >= min - 1e-9 && e1.mean <= max + 1e-9);
    }
}
