//! Log-bucketed histograms for long-tailed simulation outputs.
//!
//! Deadline-miss analysis cares about the lateness *tail*, not just the
//! mean: a scheduler can improve the mean while wrecking p99. This is an
//! HDR-style histogram — geometric buckets with a configurable precision —
//! giving bounded relative error on quantiles with O(1) recording and a
//! few KB of memory, deterministic across platforms.

/// A histogram over non-negative `f64` values with geometric buckets.
///
/// Values are bucketed as `floor(log_gamma(value / min))` where
/// `gamma = 1 + precision`; quantiles are reported as the geometric
/// midpoint of their bucket, so the relative error is at most
/// `precision / 2`.
#[derive(Debug, Clone)]
pub struct Histogram {
    min_value: f64,
    log_gamma: f64,
    gamma: f64,
    counts: Vec<u64>,
    /// Values in `[0, min_value)` (including exact zeros, which dominate
    /// tardiness data: most transactions are on time).
    underflow: u64,
    total: u64,
    max_seen: f64,
    sum: f64,
}

impl Histogram {
    /// Histogram tracking values down to `min_value` with the given
    /// relative `precision` (e.g. `0.01` = 1% buckets).
    ///
    /// # Panics
    /// Panics unless `min_value > 0` and `0 < precision < 1`.
    pub fn new(min_value: f64, precision: f64) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(
            precision > 0.0 && precision < 1.0,
            "precision must be in (0,1)"
        );
        let gamma = 1.0 + precision;
        Histogram {
            min_value,
            log_gamma: gamma.ln(),
            gamma,
            counts: Vec::new(),
            underflow: 0,
            total: 0,
            max_seen: 0.0,
            sum: 0.0,
        }
    }

    /// A histogram suited to millisecond latencies: 10 µs floor, 1%
    /// relative precision.
    pub fn for_latency_ms() -> Self {
        Histogram::new(0.01, 0.01)
    }

    /// Record one value (negative values are clamped to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.total += 1;
        self.sum += v;
        if v > self.max_seen {
            self.max_seen = v;
        }
        if v < self.min_value {
            self.underflow += 1;
            return;
        }
        let bucket = ((v / self.min_value).ln() / self.log_gamma) as usize;
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`), approximated to the bucket
    /// precision. Returns 0 for an empty histogram.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        // Rank of the target observation (1-based), clamped into range.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if rank <= self.underflow {
            // Within the underflow mass; report 0 (on-time transactions).
            return 0.0;
        }
        let mut cum = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Geometric midpoint of bucket i.
                let lo = self.min_value * self.gamma.powi(i as i32);
                return lo * self.gamma.sqrt();
            }
        }
        self.max_seen
    }

    /// Fraction of values that are (effectively) zero — below the
    /// histogram floor.
    pub fn zero_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.underflow as f64 / self.total as f64
        }
    }

    /// Merge another histogram (same parameters) into this one.
    ///
    /// # Panics
    /// Panics if the histograms were built with different parameters.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.min_value, other.min_value, "parameter mismatch");
        assert_eq!(self.gamma, other.gamma, "parameter mismatch");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::for_latency_ms();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = Histogram::new(0.01, 0.01);
        // Uniform 1..=10000 (ms).
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        for (q, expect) in [(0.5, 5000.0), (0.9, 9000.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.02, "q={q}: got {got}, expect {expect}");
        }
        assert_eq!(h.max(), 10_000.0);
        assert!((h.mean() - 5000.5).abs() < 1e-9);
    }

    #[test]
    fn zeros_dominate_like_tardiness_data() {
        let mut h = Histogram::for_latency_ms();
        for _ in 0..90 {
            h.record(0.0);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        assert!((h.zero_fraction() - 0.9).abs() < 1e-12);
        assert_eq!(h.quantile(0.5), 0.0, "median transaction is on time");
        assert_eq!(h.quantile(0.9), 0.0);
        let p95 = h.quantile(0.95);
        assert!((p95 - 100.0).abs() / 100.0 < 0.02, "p95 {p95}");
    }

    #[test]
    fn negative_values_clamped() {
        let mut h = Histogram::for_latency_ms();
        h.record(-5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_extremes() {
        let mut h = Histogram::for_latency_ms();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let q0 = h.quantile(0.0);
        assert!((q0 - 1.0).abs() / 1.0 < 0.02, "q0 {q0}");
        let q1 = h.quantile(1.0);
        assert!((q1 - 3.0).abs() / 3.0 < 0.02, "q1 {q1}");
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let mut h = Histogram::for_latency_ms();
        h.record(42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.max(), 42.0);
        // With one observation, every quantile names the same bucket —
        // reported to bucket precision.
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let got = h.quantile(q);
            assert!((got - 42.0).abs() / 42.0 < 0.02, "q={q}: got {got}");
        }
    }

    #[test]
    fn saturated_bucket_keeps_quantiles_flat() {
        // Heavy identical load: a single bucket holds all the mass, so
        // the whole quantile curve is flat at that bucket's midpoint and
        // none of the cumulative walks overflow or fall off the end.
        let mut h = Histogram::for_latency_ms();
        for _ in 0..1_000_000 {
            h.record(7.5);
        }
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(h.max(), 7.5);
        let median = h.quantile(0.5);
        assert!((median - 7.5).abs() / 7.5 < 0.02, "median {median}");
        for q in [0.0, 0.1, 0.9, 0.999, 1.0] {
            assert_eq!(h.quantile(q), median, "flat curve at q={q}");
        }
        assert_eq!(h.zero_fraction(), 0.0);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = Histogram::for_latency_ms();
        let mut b = Histogram::for_latency_ms();
        let mut whole = Histogram::for_latency_ms();
        for i in 1..=100 {
            let v = (i * 7 % 97) as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "parameter mismatch")]
    fn merge_rejects_mismatched_parameters() {
        let mut a = Histogram::new(0.01, 0.01);
        let b = Histogram::new(0.02, 0.01);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_range_checked() {
        Histogram::for_latency_ms().quantile(1.5);
    }
}
