//! Deterministic, splittable random-number streams.
//!
//! The paper averages each configuration over several independent runs
//! ("10 different random number seeds", §4). Reproducing that faithfully
//! requires RNG streams that are (a) deterministic across platforms and
//! crate versions, and (b) independently derivable per simulation component
//! (arrivals, type table, slack draws, IO draws, …) so that changing how
//! one component consumes randomness does not perturb the others.
//!
//! We therefore implement our own generator rather than relying on
//! `StdRng`'s unspecified algorithm: **xoshiro256++** seeded through
//! **SplitMix64**, the construction recommended by the xoshiro authors.
//! The generator implements [`rand::RngCore`] so it composes with the
//! `rand` API surface.

use rand::RngCore;

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// Used both for seeding xoshiro and for deriving labelled sub-streams.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random generator.
///
/// Period 2^256 − 1; passes BigCrush; 4×u64 of state. Deterministic given
/// the seed, independent of the `rand` crate's internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed, expanding it with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // The all-zero state is invalid for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            Xoshiro256 { s: [1, 2, 3, 4] }
        } else {
            Xoshiro256 { s }
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A master seed from which independent component streams are derived by
/// label.
///
/// `StreamSeeder::new(run_seed).stream("arrivals")` always yields the same
/// generator for the same `(run_seed, label)` pair, and streams with
/// different labels are statistically independent (the label is hashed
/// into the SplitMix64 chain with FNV-1a).
#[derive(Debug, Clone, Copy)]
pub struct StreamSeeder {
    master: u64,
}

impl StreamSeeder {
    /// Create a seeder for one simulation run.
    pub fn new(master: u64) -> Self {
        StreamSeeder { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the deterministic stream for `label`.
    pub fn stream(&self, label: &str) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.master ^ fnv1a(label.as_bytes()))
    }

    /// Derive an indexed stream, e.g. one per transaction type.
    pub fn indexed_stream(&self, label: &str, index: u64) -> Xoshiro256 {
        let mut state = self.master ^ fnv1a(label.as_bytes());
        // Mix the index through one SplitMix64 round so that consecutive
        // indices land far apart in seed space.
        state = state.wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
        Xoshiro256::seed_from_u64(splitmix64(&mut state))
    }
}

/// FNV-1a hash of a byte string (stable across platforms and versions).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 0.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn fill_bytes_matches_raw_stream() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_raw().to_le_bytes();
        let w1 = b.next_raw().to_le_bytes();
        let w2 = b.next_raw().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }

    #[test]
    fn labelled_streams_are_stable_and_distinct() {
        let seeder = StreamSeeder::new(123);
        let mut s1 = seeder.stream("arrivals");
        let mut s1b = seeder.stream("arrivals");
        let mut s2 = seeder.stream("slack");
        assert_eq!(s1.next_raw(), s1b.next_raw());
        // Distinct labels must give distinct streams.
        let mut s1c = seeder.stream("arrivals");
        assert_ne!(s1c.next_raw(), s2.next_raw());
    }

    #[test]
    fn indexed_streams_distinct() {
        let seeder = StreamSeeder::new(9);
        let mut a = seeder.indexed_stream("type", 0);
        let mut b = seeder.indexed_stream("type", 1);
        assert_ne!(a.next_raw(), b.next_raw());
        let mut a2 = seeder.indexed_stream("type", 0);
        assert!(Xoshiro256::seed_from_u64(0).next_raw() != 0, "sanity");
        let mut a3 = seeder.indexed_stream("type", 0);
        assert_eq!(a2.next_raw(), a3.next_raw());
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut a = Xoshiro256::seed_from_u64(5);
        let mut b = Xoshiro256::seed_from_u64(5);
        assert_eq!(a.next_u32() as u64, b.next_raw() >> 32);
    }
}
