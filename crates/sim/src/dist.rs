//! Random variates used by the paper's workload model.
//!
//! The workload needs exponential inter-arrival times (Poisson process),
//! normal update counts, uniform slack percentages, uniform item draws and
//! Bernoulli IO draws (§4, §5). `rand` ships only the uniform/Bernoulli
//! primitives in its core crate, so the exponential and normal samplers are
//! implemented here (inversion and Marsaglia polar method respectively) on
//! top of [`rand::RngCore`]. Keeping the samplers in-repo also pins the
//! exact variate sequences, which the determinism tests rely on.

use rand::RngCore;

/// Draw a `f64` uniformly from `[0, 1)` using 53 random mantissa bits.
#[inline]
pub fn uniform_unit<R: RngCore>(rng: &mut R) -> f64 {
    // 53 high bits → uniform double in [0,1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw uniformly from `[lo, hi)`. `lo == hi` returns `lo`.
#[inline]
pub fn uniform_range<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "uniform_range requires lo <= hi");
    lo + (hi - lo) * uniform_unit(rng)
}

/// Draw a `u64` uniformly from `[0, n)` without modulo bias
/// (Lemire's rejection method). Panics if `n == 0`.
#[inline]
pub fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "uniform_below requires n > 0");
    // Widening-multiply rejection sampling.
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
#[inline]
pub fn bernoulli<R: RngCore>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        uniform_unit(rng) < p
    }
}

/// Exponentially distributed variate with the given `mean` (= 1/λ), via
/// inversion. Panics if `mean` is not positive and finite.
#[inline]
pub fn exponential<R: RngCore>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean > 0.0 && mean.is_finite(),
        "exponential mean must be positive and finite"
    );
    let mut u = uniform_unit(rng);
    // ln(0) would be -inf; nudge to the smallest representable positive.
    if u == 0.0 {
        u = f64::MIN_POSITIVE;
    }
    -mean * u.ln()
}

/// Normal sampler (Marsaglia polar method) that caches the spare variate.
///
/// Stateful so that both variates of each polar round are consumed, halving
/// the RNG draws; the state also keeps variate sequences deterministic.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Fresh sampler with no cached spare.
    pub fn new() -> Self {
        NormalSampler { spare: None }
    }

    /// Draw one N(mean, std²) variate.
    pub fn sample<R: RngCore>(&mut self, rng: &mut R, mean: f64, std: f64) -> f64 {
        debug_assert!(std >= 0.0, "standard deviation cannot be negative");
        if let Some(z) = self.spare.take() {
            return mean + std * z;
        }
        loop {
            let u = 2.0 * uniform_unit(rng) - 1.0;
            let v = 2.0 * uniform_unit(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return mean + std * u * factor;
            }
        }
    }
}

/// Sample `k` **distinct** values from `0..n` uniformly (partial
/// Fisher–Yates). Panics if `k > n`.
///
/// The paper draws each transaction type's item set this way: "the actual
/// database items are chosen uniformly from the range of database size".
pub fn sample_distinct<R: RngCore>(rng: &mut R, n: u64, k: usize) -> Vec<u64> {
    assert!(
        (k as u64) <= n,
        "cannot sample {k} distinct values from 0..{n}"
    );
    // For small k relative to n a hash-based approach would do, but n is at
    // most a few thousand in every experiment, so a partial shuffle of the
    // full index vector is simpler and still cheap.
    let mut pool: Vec<u64> = (0..n).collect();
    for i in 0..k {
        let j = i as u64 + uniform_below(rng, n - i as u64);
        pool.swap(i, j as usize);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(2024)
    }

    #[test]
    fn uniform_unit_in_range() {
        let mut r = rng();
        for _ in 0..10_000 {
            let u = uniform_unit(&mut r);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_range_mean() {
        let mut r = rng();
        let mean: f64 = (0..50_000)
            .map(|_| uniform_range(&mut r, 2.0, 8.0))
            .sum::<f64>()
            / 50_000.0;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_below_unbiased_small_range() {
        let mut r = rng();
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[uniform_below(&mut r, 7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "uniform_below requires n > 0")]
    fn uniform_below_zero_panics() {
        let mut r = rng();
        uniform_below(&mut r, 0);
    }

    #[test]
    fn bernoulli_edges_and_rate() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.1)).count();
        assert!((hits as i64 - 10_000).abs() < 600, "hits {hits}");
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exponential(&mut r, 125.0);
            assert!(x >= 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 125.0).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut s = NormalSampler::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut r, 20.0, 10.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 20.0).abs() < 0.15, "mean {mean}");
        assert!((var - 100.0).abs() < 2.5, "var {var}");
    }

    #[test]
    fn normal_spare_is_consumed() {
        // Two consecutive samples should use one polar round in the common
        // case: the RNG position after two samples equals the position
        // after generating only the first (plus possibly rejected rounds).
        let mut r1 = rng();
        let mut s1 = NormalSampler::new();
        let a = s1.sample(&mut r1, 0.0, 1.0);
        let b = s1.sample(&mut r1, 0.0, 1.0);
        assert_ne!(a, b);
        assert!(s1.spare.is_none());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng();
        for _ in 0..200 {
            let k = 1 + (uniform_below(&mut r, 20) as usize);
            let items = sample_distinct(&mut r, 30, k);
            assert_eq!(items.len(), k);
            let mut sorted = items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "items must be distinct: {items:?}");
            assert!(items.iter().all(|&i| i < 30));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut r = rng();
        let mut items = sample_distinct(&mut r, 10, 10);
        items.sort_unstable();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_overflow_panics() {
        let mut r = rng();
        sample_distinct(&mut r, 5, 6);
    }
}
