//! `rtx-sim` — a small, deterministic discrete-event simulation kernel.
//!
//! This crate replaces the C + SIMPACK substrate the paper's evaluation was
//! built on. It provides:
//!
//! * [`time`] — integer-microsecond simulation clock types;
//! * [`calendar`] — the future event list with O(log n) schedule/cancel and
//!   deterministic FIFO ordering of simultaneous events;
//! * [`component`] — the Component model: actors with `next_tick`/`tick`
//!   on a global min-heap keyed `(next_tick, ComponentId)`, the
//!   generalization the RTDB's lane calendar is built on;
//! * [`clock`] — virtual vs wall-clock time sources, so a serving loop can
//!   pace the same event machinery against real time;
//! * [`rng`] — self-contained xoshiro256++ generators with labelled,
//!   independently derivable streams per simulation component;
//! * [`dist`] — the exact variate families the workload model needs
//!   (exponential, normal, uniform, Bernoulli, distinct sampling);
//! * [`fault`] — deterministic disk-fault injection plans (transient IO
//!   errors, latency spikes, brownout windows) on a dedicated RNG stream;
//! * [`stats`] — within-run accumulators, time-weighted state averages and
//!   across-replication confidence intervals;
//! * [`hist`] — log-bucketed histograms for tail quantiles.
//!
//! Everything is single-threaded and allocation-light by design: runs must
//! be bit-reproducible given a seed, which is what the cross-crate
//! determinism tests assert.
//!
//! # Example
//!
//! ```
//! use rtx_sim::calendar::Calendar;
//! use rtx_sim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrival(u32), Done(u32) }
//!
//! let mut cal = Calendar::new();
//! cal.schedule(SimTime::from_ms(1.0), Ev::Arrival(0));
//! while let Some(fired) = cal.pop() {
//!     match fired.payload {
//!         Ev::Arrival(id) => {
//!             // serve for 4 ms
//!             cal.schedule(fired.time + SimDuration::from_ms(4.0), Ev::Done(id));
//!         }
//!         Ev::Done(id) => assert_eq!(id, 0),
//!     }
//! }
//! assert_eq!(cal.now(), SimTime::from_ms(5.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calendar;
pub mod clock;
pub mod component;
pub mod dist;
pub mod fault;
pub mod hist;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::{Calendar, EventHandle, Fired};
pub use clock::Clock;
pub use component::{Component, ComponentHeap, ComponentId};
pub use fault::{Attempt, Brownout, CpuFaultInjector, CpuFaultPlan, FaultInjector, FaultPlan};
pub use hist::Histogram;
pub use rng::{StreamSeeder, Xoshiro256};
pub use stats::{Accumulator, Estimate, Replications, TimeWeighted};
pub use time::{SimDuration, SimTime};
