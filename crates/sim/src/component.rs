//! The component scheduling model: everything that evolves over time —
//! CPUs, disks, the scheduler itself — is a [`Component`] with a notion
//! of when it next wants to run (`next_tick`) and a method to advance
//! (`tick`). A [`ComponentHeap`] keyed by `(next_tick, ComponentId)`
//! picks the globally earliest component, which is exactly the
//! discrete-event main loop generalized from "events" to "actors".
//!
//! The RTDB engine uses this through its `ComponentCalendar`: each lane
//! (scheduler, CPU, disk) is a component whose key is the `(time, seq)`
//! of its earliest pending event, so the merged pop order reproduces the
//! single-calendar order bit for bit while keeping per-device state
//! separable — the precondition for sharded parallel advancement.

use std::cmp::Ordering;

use crate::time::SimTime;

/// Identifies one component registered with a [`ComponentHeap`].
///
/// Ids double as the deterministic tie-break: two components wanting the
/// same tick time fire in id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

/// An actor in the simulation: a CPU, a disk, a scheduler — anything
/// with its own timeline.
///
/// `next_tick` returning `None` means the component is idle (nothing
/// pending); the driving loop skips it until some interaction re-arms
/// it. `tick` advances the component to `now` and performs whatever
/// work fires there.
pub trait Component {
    /// The next simulation time this component wants control, or `None`
    /// if it is idle.
    fn next_tick(&self) -> Option<SimTime>;
    /// Advance to `now`, performing the work that fires at that instant.
    fn tick(&mut self, now: SimTime);
}

/// One heap entry: a component and the key it is currently scheduled
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot<K> {
    key: K,
    id: ComponentId,
}

impl<K: Ord> PartialOrd for Slot<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// Min-heap by (key, id): BinaryHeap is a max-heap, so invert.
impl<K: Ord> Ord for Slot<K> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// A min-heap of components keyed by when each next wants to run.
///
/// Keys are generic (`(SimTime, u64)` event keys, plain times, base
/// cycles…) so the same structure drives both the RTDB lane calendar and
/// plain tick loops. Updates are lazy: `set_key` pushes a fresh entry and
/// stale ones are discarded on pop against the `current` table, keeping
/// every operation `O(log n)` without a decrease-key primitive.
///
/// ```
/// use rtx_sim::component::{ComponentHeap, ComponentId};
///
/// let mut heap: ComponentHeap<u64> = ComponentHeap::new(3);
/// heap.set_key(ComponentId(0), 40);
/// heap.set_key(ComponentId(1), 25);
/// heap.set_key(ComponentId(2), 25);
/// assert_eq!(heap.peek_min(), Some((25, ComponentId(1)))); // id breaks ties
/// heap.set_key(ComponentId(1), 60);
/// assert_eq!(heap.peek_min(), Some((25, ComponentId(2))));
/// heap.clear_key(ComponentId(2));
/// assert_eq!(heap.peek_min(), Some((40, ComponentId(0))));
/// ```
#[derive(Debug, Clone)]
pub struct ComponentHeap<K> {
    heap: std::collections::BinaryHeap<Slot<K>>,
    /// The authoritative key per component; heap entries that disagree
    /// are stale and skipped on pop. `None` = idle (not scheduled).
    current: Vec<Option<K>>,
}

impl<K: Ord + Copy> ComponentHeap<K> {
    /// A heap for components `0..n`, all initially idle.
    pub fn new(n: usize) -> Self {
        ComponentHeap {
            heap: std::collections::BinaryHeap::new(),
            current: vec![None; n],
        }
    }

    /// Number of components registered (idle or not).
    pub fn components(&self) -> usize {
        self.current.len()
    }

    /// Schedule (or reschedule) component `id` at `key`.
    pub fn set_key(&mut self, id: ComponentId, key: K) {
        let slot = &mut self.current[id.0 as usize];
        if *slot == Some(key) {
            return; // already scheduled there; avoid heap churn
        }
        *slot = Some(key);
        self.heap.push(Slot { key, id });
    }

    /// Mark component `id` idle; its pending heap entries become stale.
    pub fn clear_key(&mut self, id: ComponentId) {
        self.current[id.0 as usize] = None;
    }

    /// The component's current key, or `None` if idle.
    pub fn key_of(&self, id: ComponentId) -> Option<K> {
        self.current[id.0 as usize]
    }

    /// The `(key, id)` of the earliest scheduled component, draining
    /// stale entries from the top. `None` iff every component is idle.
    pub fn peek_min(&mut self) -> Option<(K, ComponentId)> {
        while let Some(top) = self.heap.peek() {
            if self.current[top.id.0 as usize] == Some(top.key) {
                return Some((top.key, top.id));
            }
            self.heap.pop(); // stale: superseded or idled
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_min_key_with_id_tiebreak() {
        let mut h: ComponentHeap<u64> = ComponentHeap::new(4);
        h.set_key(ComponentId(3), 10);
        h.set_key(ComponentId(1), 10);
        h.set_key(ComponentId(0), 20);
        assert_eq!(h.peek_min(), Some((10, ComponentId(1))));
    }

    #[test]
    fn reschedule_supersedes_old_entry() {
        let mut h: ComponentHeap<u64> = ComponentHeap::new(2);
        h.set_key(ComponentId(0), 5);
        h.set_key(ComponentId(1), 8);
        h.set_key(ComponentId(0), 12); // CPU got new, later work
        assert_eq!(h.peek_min(), Some((8, ComponentId(1))));
        h.clear_key(ComponentId(1));
        assert_eq!(h.peek_min(), Some((12, ComponentId(0))));
    }

    #[test]
    fn clear_key_idles_component() {
        let mut h: ComponentHeap<u64> = ComponentHeap::new(1);
        h.set_key(ComponentId(0), 7);
        h.clear_key(ComponentId(0));
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.key_of(ComponentId(0)), None);
    }

    #[test]
    fn redundant_set_key_is_noop() {
        let mut h: ComponentHeap<u64> = ComponentHeap::new(1);
        h.set_key(ComponentId(0), 3);
        h.set_key(ComponentId(0), 3);
        assert_eq!(h.peek_min(), Some((3, ComponentId(0))));
        assert_eq!(h.key_of(ComponentId(0)), Some(3));
    }

    #[test]
    fn tuple_keys_order_lexicographically() {
        // The RTDB lane calendar keys lanes by (head time, head seq):
        // equal times must resolve by sequence, reproducing the single
        // global calendar's FIFO-of-simultaneous-events order.
        let mut h: ComponentHeap<(u64, u64)> = ComponentHeap::new(3);
        h.set_key(ComponentId(0), (50, 9));
        h.set_key(ComponentId(1), (50, 2));
        h.set_key(ComponentId(2), (60, 0));
        assert_eq!(h.peek_min(), Some(((50, 2), ComponentId(1))));
    }

    #[test]
    fn interleaved_stress_matches_linear_scan() {
        let mut h: ComponentHeap<u64> = ComponentHeap::new(8);
        let mut model: Vec<Option<u64>> = vec![None; 8];
        // Deterministic pseudo-random walk over set/clear operations.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (x >> 33) as usize % 8;
            if x.is_multiple_of(5) {
                model[id] = None;
                h.clear_key(ComponentId(id as u32));
            } else {
                let key = (x >> 7) % 1000;
                model[id] = Some(key);
                h.set_key(ComponentId(id as u32), key);
            }
            let want = model
                .iter()
                .enumerate()
                .filter_map(|(i, k)| k.map(|k| (k, ComponentId(i as u32))))
                .min();
            assert_eq!(h.peek_min(), want);
        }
    }
}
