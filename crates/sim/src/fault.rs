//! Deterministic disk-fault injection plans.
//!
//! The paper evaluates scheduling policies under clean overload only; a
//! robust reproduction must also survive *misbehaving* hardware. A
//! [`FaultPlan`] describes, per run, how the simulated disk misbehaves:
//!
//! * **transient IO errors** — an attempt occupies the disk for its full
//!   service time and then fails; the issuing transaction retries with
//!   exponential backoff until a retry budget is exhausted;
//! * **latency spikes** — an attempt takes `spike_factor ×` its nominal
//!   service time;
//! * **brownout windows** — recurring bounded windows of simulated time
//!   during which the error probability is elevated and every transfer is
//!   slowed by a latency factor.
//!
//! Faults are drawn from a dedicated RNG stream (label `"faults"`) owned
//! by a [`FaultInjector`], so enabling injection never perturbs the
//! workload streams — and a plan of [`FaultPlan::none()`] performs **no
//! draws at all**, keeping fault-free runs byte-identical to runs built
//! before this subsystem existed.
//!
//! The same model extends to the CPU: an optional [`CpuFaultPlan`]
//! describes transient **stalls** (a compute burst runs to completion
//! and then must be retried with backoff), **slowdowns** (a burst takes
//! `slow_factor ×` its nominal time) and brownout windows. CPU verdicts
//! come from a [`CpuFaultInjector`] on its own `"cpu-faults"` stream, so
//! disk and CPU injection never perturb each other — and a plan without
//! a CPU section draws nothing.

use crate::dist::uniform_unit;
use crate::rng::{StreamSeeder, Xoshiro256};
use crate::time::{SimDuration, SimTime};

/// A recurring bounded window of degraded disk service ("brownout").
///
/// The window is active whenever `now mod period_ms < duration_ms`, so the
/// first window starts at time zero and recurs every `period_ms`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// Window recurrence period, ms (must be positive).
    pub period_ms: f64,
    /// Length of each window, ms (`0 ≤ duration ≤ period`).
    pub duration_ms: f64,
    /// Transient-error probability inside the window (replaces the plan's
    /// base probability when larger).
    pub error_prob: f64,
    /// Service-time multiplier inside the window (`≥ 1`).
    pub latency_factor: f64,
}

impl Brownout {
    /// Is the brownout window active at `now`?
    pub fn active_at(&self, now: SimTime) -> bool {
        self.period_ms > 0.0 && now.as_ms() % self.period_ms < self.duration_ms
    }
}

/// The deterministic fault-injection plan for one run.
///
/// All probabilities are per disk-transfer *attempt*. The default plan is
/// [`FaultPlan::none()`]: no errors, no spikes, no brownouts.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Base probability that an attempt fails with a transient error.
    pub error_prob: f64,
    /// Probability that an attempt suffers a latency spike.
    pub spike_prob: f64,
    /// Service-time multiplier of a spiked attempt (`≥ 1`).
    pub spike_factor: f64,
    /// Maximum number of *retries* after the first failed attempt before
    /// the transaction is aborted-and-restarted like an HP victim.
    pub retry_budget: u32,
    /// Backoff before the first retry, ms; doubles on every further retry.
    pub backoff_base_ms: f64,
    /// Upper bound on any single backoff delay, ms.
    pub backoff_cap_ms: f64,
    /// Optional recurring degraded-service window.
    pub brownout: Option<Brownout>,
    /// Optional CPU-side fault section. `None` means the CPU never
    /// misbehaves and no `"cpu-faults"` randomness is consumed.
    pub cpu: Option<CpuFaultPlan>,
}

impl FaultPlan {
    /// The empty plan: no faults are ever injected and no randomness is
    /// consumed. Runs under this plan are byte-identical to runs of a
    /// build without fault injection.
    pub fn none() -> Self {
        FaultPlan {
            error_prob: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
            retry_budget: 3,
            backoff_base_ms: 1.0,
            backoff_cap_ms: 8.0,
            brownout: None,
            cpu: None,
        }
    }

    /// True iff this plan can never inject any fault — disk or CPU (the
    /// engine skips both injectors entirely, consuming no randomness).
    pub fn is_none(&self) -> bool {
        self.disk_is_none() && self.cpu_is_none()
    }

    /// True iff the *disk* section can never inject a fault (the engine
    /// skips the disk injector, consuming no `"faults"` randomness).
    pub fn disk_is_none(&self) -> bool {
        self.error_prob == 0.0 && self.spike_prob == 0.0 && self.brownout.is_none()
    }

    /// True iff the *CPU* section can never inject a fault (the engine
    /// skips the CPU injector, consuming no `"cpu-faults"` randomness).
    pub fn cpu_is_none(&self) -> bool {
        match &self.cpu {
            None => true,
            Some(c) => c.stall_prob == 0.0 && c.slow_prob == 0.0 && c.brownout.is_none(),
        }
    }

    /// The backoff delay before retry number `retries + 1`, i.e. after
    /// `retries` prior failures: `base × 2^retries`, capped.
    pub fn backoff_after(&self, retries: u32) -> SimDuration {
        let exp = retries.min(20); // 2^20 × base already dwarfs any cap
        let raw = self.backoff_base_ms * f64::powi(2.0, exp as i32);
        SimDuration::from_ms(raw.min(self.backoff_cap_ms))
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.error_prob) {
            return Err(format!("error_prob {} outside [0,1]", self.error_prob));
        }
        if !(0.0..=1.0).contains(&self.spike_prob) {
            return Err(format!("spike_prob {} outside [0,1]", self.spike_prob));
        }
        if !self.spike_factor.is_finite() || self.spike_factor < 1.0 {
            return Err(format!("spike_factor {} must be ≥ 1", self.spike_factor));
        }
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms < 0.0 {
            return Err(format!(
                "backoff_base_ms {} must be ≥ 0",
                self.backoff_base_ms
            ));
        }
        if !self.backoff_cap_ms.is_finite() || self.backoff_cap_ms < self.backoff_base_ms {
            return Err(format!(
                "backoff_cap_ms {} must be ≥ backoff_base_ms {}",
                self.backoff_cap_ms, self.backoff_base_ms
            ));
        }
        if let Some(b) = &self.brownout {
            validate_brownout(b)?;
        }
        if let Some(c) = &self.cpu {
            c.validate()?;
        }
        Ok(())
    }
}

fn validate_brownout(b: &Brownout) -> Result<(), String> {
    if !b.period_ms.is_finite() || b.period_ms <= 0.0 {
        return Err(format!("brownout period {} must be positive", b.period_ms));
    }
    if !b.duration_ms.is_finite() || b.duration_ms < 0.0 || b.duration_ms > b.period_ms {
        return Err(format!(
            "brownout duration {} outside [0, period {}]",
            b.duration_ms, b.period_ms
        ));
    }
    if !(0.0..=1.0).contains(&b.error_prob) {
        return Err(format!(
            "brownout error_prob {} outside [0,1]",
            b.error_prob
        ));
    }
    if !b.latency_factor.is_finite() || b.latency_factor < 1.0 {
        return Err(format!(
            "brownout latency_factor {} must be ≥ 1",
            b.latency_factor
        ));
    }
    Ok(())
}

/// The CPU section of a [`FaultPlan`]: transient stalls and slowdowns of
/// compute bursts, mirroring the disk model attempt-for-attempt.
///
/// All probabilities are per compute-burst *attempt*. A stalled burst
/// occupies the CPU for its full (possibly slowed) service time and then
/// fails: the work is wasted and the transaction backs off and retries
/// the burst, aborting-and-restarting once the retry budget is spent.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuFaultPlan {
    /// Base probability that a compute burst stalls (completes without
    /// making progress and must be retried).
    pub stall_prob: f64,
    /// Probability that a burst runs slowed.
    pub slow_prob: f64,
    /// Service-time multiplier of a slowed burst (`≥ 1`).
    pub slow_factor: f64,
    /// Maximum number of *retries* after the first stalled burst before
    /// the transaction is aborted-and-restarted like an HP victim.
    pub retry_budget: u32,
    /// Backoff before the first retry, ms; doubles on every further retry.
    pub backoff_base_ms: f64,
    /// Upper bound on any single backoff delay, ms.
    pub backoff_cap_ms: f64,
    /// Optional recurring degraded-service window (`error_prob` is the
    /// in-window stall probability, `latency_factor` slows bursts).
    pub brownout: Option<Brownout>,
}

impl CpuFaultPlan {
    /// The backoff delay before retry number `retries + 1`, i.e. after
    /// `retries` prior stalls: `base × 2^retries`, capped.
    pub fn backoff_after(&self, retries: u32) -> SimDuration {
        let exp = retries.min(20); // 2^20 × base already dwarfs any cap
        let raw = self.backoff_base_ms * f64::powi(2.0, exp as i32);
        SimDuration::from_ms(raw.min(self.backoff_cap_ms))
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.stall_prob) {
            return Err(format!("cpu stall_prob {} outside [0,1]", self.stall_prob));
        }
        if !(0.0..=1.0).contains(&self.slow_prob) {
            return Err(format!("cpu slow_prob {} outside [0,1]", self.slow_prob));
        }
        if !self.slow_factor.is_finite() || self.slow_factor < 1.0 {
            return Err(format!("cpu slow_factor {} must be ≥ 1", self.slow_factor));
        }
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms < 0.0 {
            return Err(format!(
                "cpu backoff_base_ms {} must be ≥ 0",
                self.backoff_base_ms
            ));
        }
        if !self.backoff_cap_ms.is_finite() || self.backoff_cap_ms < self.backoff_base_ms {
            return Err(format!(
                "cpu backoff_cap_ms {} must be ≥ backoff_base_ms {}",
                self.backoff_cap_ms, self.backoff_base_ms
            ));
        }
        if let Some(b) = &self.brownout {
            validate_brownout(b)?;
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The injector's verdict on one disk-transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempt {
    /// The attempt fails with a transient error after `service` elapses.
    pub failed: bool,
    /// The attempt drew a latency spike.
    pub spiked: bool,
    /// The attempt started inside a brownout window.
    pub brownout: bool,
    /// Time the attempt occupies the disk (spikes and brownouts applied).
    pub service: SimDuration,
}

/// Draws per-attempt fault verdicts from a [`FaultPlan`] using a dedicated
/// deterministic RNG stream.
///
/// Exactly two uniform draws are consumed per attempt regardless of the
/// outcome, so the stream stays aligned across plan-parameter changes that
/// keep the attempt sequence identical.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Xoshiro256,
}

impl FaultInjector {
    /// A new injector drawing from the seeder's `"faults"` stream.
    pub fn new(plan: FaultPlan, seeder: &StreamSeeder) -> Self {
        FaultInjector {
            plan,
            rng: seeder.stream("faults"),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one transfer attempt starting at `now` whose
    /// nominal service time is `nominal`.
    pub fn attempt(&mut self, now: SimTime, nominal: SimDuration) -> Attempt {
        let u_err = uniform_unit(&mut self.rng);
        let u_spike = uniform_unit(&mut self.rng);
        let brown = self.plan.brownout.filter(|b| b.active_at(now));
        let error_prob = match &brown {
            Some(b) => self.plan.error_prob.max(b.error_prob),
            None => self.plan.error_prob,
        };
        let failed = u_err < error_prob;
        let spiked = u_spike < self.plan.spike_prob;
        let mut service = nominal;
        if spiked {
            service = service.scale(self.plan.spike_factor);
        }
        if let Some(b) = &brown {
            service = service.scale(b.latency_factor);
        }
        Attempt {
            failed,
            spiked,
            brownout: brown.is_some(),
            service,
        }
    }
}

/// Draws per-burst fault verdicts from a [`CpuFaultPlan`] on the
/// dedicated `"cpu-faults"` stream.
///
/// In the returned [`Attempt`], `failed` means the burst *stalls* and
/// `spiked` means it runs slowed. Exactly two uniform draws are consumed
/// per burst regardless of the outcome, keeping the stream aligned
/// across plan-parameter changes that keep the burst sequence identical.
#[derive(Debug, Clone)]
pub struct CpuFaultInjector {
    plan: CpuFaultPlan,
    rng: Xoshiro256,
}

impl CpuFaultInjector {
    /// A new injector drawing from the seeder's `"cpu-faults"` stream.
    pub fn new(plan: CpuFaultPlan, seeder: &StreamSeeder) -> Self {
        CpuFaultInjector {
            plan,
            rng: seeder.stream("cpu-faults"),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &CpuFaultPlan {
        &self.plan
    }

    /// Decide the fate of one compute burst starting at `now` whose
    /// nominal service time is `nominal`.
    pub fn attempt(&mut self, now: SimTime, nominal: SimDuration) -> Attempt {
        let u_stall = uniform_unit(&mut self.rng);
        let u_slow = uniform_unit(&mut self.rng);
        let brown = self.plan.brownout.filter(|b| b.active_at(now));
        let stall_prob = match &brown {
            Some(b) => self.plan.stall_prob.max(b.error_prob),
            None => self.plan.stall_prob,
        };
        let failed = u_stall < stall_prob;
        let spiked = u_slow < self.plan.slow_prob;
        let mut service = nominal;
        if spiked {
            service = service.scale(self.plan.slow_factor);
        }
        if let Some(b) = &brown {
            service = service.scale(b.latency_factor);
        }
        Attempt {
            failed,
            spiked,
            brownout: brown.is_some(),
            service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(error: f64, spike: f64) -> FaultPlan {
        FaultPlan {
            error_prob: error,
            spike_prob: spike,
            spike_factor: 4.0,
            retry_budget: 3,
            backoff_base_ms: 2.0,
            backoff_cap_ms: 16.0,
            brownout: None,
            cpu: None,
        }
    }

    fn cpu_plan(stall: f64, slow: f64) -> CpuFaultPlan {
        CpuFaultPlan {
            stall_prob: stall,
            slow_prob: slow,
            slow_factor: 3.0,
            retry_budget: 2,
            backoff_base_ms: 1.0,
            backoff_cap_ms: 4.0,
            brownout: None,
        }
    }

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert!(!plan(0.1, 0.0).is_none());
        assert!(!plan(0.0, 0.1).is_none());
        let mut p = FaultPlan::none();
        p.brownout = Some(Brownout {
            period_ms: 100.0,
            duration_ms: 10.0,
            error_prob: 0.5,
            latency_factor: 2.0,
        });
        assert!(!p.is_none());
    }

    #[test]
    fn disk_and_cpu_sections_gate_independently() {
        let mut p = FaultPlan::none();
        assert!(p.disk_is_none() && p.cpu_is_none());
        p.cpu = Some(cpu_plan(0.1, 0.0));
        assert!(p.disk_is_none(), "cpu faults leave the disk section empty");
        assert!(!p.cpu_is_none());
        assert!(!p.is_none());
        // A present-but-inert CPU section still counts as none: no draws.
        p.cpu = Some(cpu_plan(0.0, 0.0));
        assert!(p.cpu_is_none() && p.is_none());
        p = plan(0.1, 0.0);
        assert!(!p.disk_is_none());
        assert!(p.cpu_is_none());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = plan(0.1, 0.0);
        assert_eq!(p.backoff_after(0), SimDuration::from_ms(2.0));
        assert_eq!(p.backoff_after(1), SimDuration::from_ms(4.0));
        assert_eq!(p.backoff_after(2), SimDuration::from_ms(8.0));
        assert_eq!(p.backoff_after(3), SimDuration::from_ms(16.0));
        assert_eq!(p.backoff_after(4), SimDuration::from_ms(16.0), "capped");
        assert_eq!(
            p.backoff_after(40),
            SimDuration::from_ms(16.0),
            "no overflow"
        );
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::none().validate().is_ok());
        let mut p = plan(1.5, 0.0);
        assert!(p.validate().is_err());
        p = plan(0.1, 0.0);
        p.spike_factor = 0.5;
        assert!(p.validate().is_err());
        p = plan(0.1, 0.0);
        p.backoff_cap_ms = 0.5; // below base
        assert!(p.validate().is_err());
        p = plan(0.1, 0.0);
        p.brownout = Some(Brownout {
            period_ms: 0.0,
            duration_ms: 0.0,
            error_prob: 0.1,
            latency_factor: 1.0,
        });
        assert!(p.validate().is_err());
        p = plan(0.1, 0.0);
        p.brownout = Some(Brownout {
            period_ms: 100.0,
            duration_ms: 200.0,
            error_prob: 0.1,
            latency_factor: 1.0,
        });
        assert!(p.validate().is_err(), "duration exceeds period");
        p = plan(0.0, 0.0);
        p.cpu = Some(cpu_plan(1.5, 0.0));
        assert!(p.validate().is_err(), "cpu section validated too");
        let mut c = cpu_plan(0.1, 0.0);
        c.slow_factor = 0.5;
        assert!(c.validate().is_err());
        c = cpu_plan(0.1, 0.0);
        c.backoff_cap_ms = 0.1; // below base
        assert!(c.validate().is_err());
    }

    #[test]
    fn brownout_window_schedule() {
        let b = Brownout {
            period_ms: 100.0,
            duration_ms: 10.0,
            error_prob: 1.0,
            latency_factor: 2.0,
        };
        assert!(b.active_at(SimTime::from_ms(0.0)));
        assert!(b.active_at(SimTime::from_ms(9.9)));
        assert!(!b.active_at(SimTime::from_ms(10.0)));
        assert!(!b.active_at(SimTime::from_ms(99.0)));
        assert!(b.active_at(SimTime::from_ms(105.0)));
    }

    #[test]
    fn injector_is_deterministic() {
        let seeder = StreamSeeder::new(7);
        let mut a = FaultInjector::new(plan(0.3, 0.3), &seeder);
        let mut b = FaultInjector::new(plan(0.3, 0.3), &seeder);
        for i in 0..200 {
            let now = SimTime::from_ms(i as f64 * 13.0);
            let nominal = SimDuration::from_ms(25.0);
            assert_eq!(a.attempt(now, nominal), b.attempt(now, nominal));
        }
    }

    #[test]
    fn certain_error_always_fails() {
        let seeder = StreamSeeder::new(1);
        let mut inj = FaultInjector::new(plan(1.0, 0.0), &seeder);
        for _ in 0..50 {
            let a = inj.attempt(SimTime::ZERO, SimDuration::from_ms(25.0));
            assert!(a.failed);
            assert!(!a.spiked);
            assert_eq!(a.service, SimDuration::from_ms(25.0));
        }
    }

    #[test]
    fn spike_scales_service() {
        let seeder = StreamSeeder::new(2);
        let mut inj = FaultInjector::new(plan(0.0, 1.0), &seeder);
        let a = inj.attempt(SimTime::ZERO, SimDuration::from_ms(25.0));
        assert!(a.spiked && !a.failed);
        assert_eq!(a.service, SimDuration::from_ms(100.0));
    }

    #[test]
    fn brownout_elevates_error_and_latency() {
        let mut p = plan(0.0, 0.0);
        p.brownout = Some(Brownout {
            period_ms: 1000.0,
            duration_ms: 100.0,
            error_prob: 1.0,
            latency_factor: 3.0,
        });
        let seeder = StreamSeeder::new(3);
        let mut inj = FaultInjector::new(p, &seeder);
        let inside = inj.attempt(SimTime::from_ms(50.0), SimDuration::from_ms(10.0));
        assert!(inside.failed && inside.brownout);
        assert_eq!(inside.service, SimDuration::from_ms(30.0));
        let outside = inj.attempt(SimTime::from_ms(500.0), SimDuration::from_ms(10.0));
        assert!(!outside.failed && !outside.brownout);
        assert_eq!(outside.service, SimDuration::from_ms(10.0));
    }

    #[test]
    fn cpu_injector_mirrors_disk_model() {
        let seeder = StreamSeeder::new(9);
        let mut a = CpuFaultInjector::new(cpu_plan(0.3, 0.3), &seeder);
        let mut b = CpuFaultInjector::new(cpu_plan(0.3, 0.3), &seeder);
        for i in 0..200 {
            let now = SimTime::from_ms(i as f64 * 7.0);
            let nominal = SimDuration::from_ms(2.0);
            assert_eq!(a.attempt(now, nominal), b.attempt(now, nominal));
        }
        // Certain stall, certain slowdown.
        let mut inj = CpuFaultInjector::new(cpu_plan(1.0, 1.0), &seeder);
        let att = inj.attempt(SimTime::ZERO, SimDuration::from_ms(2.0));
        assert!(att.failed && att.spiked);
        assert_eq!(att.service, SimDuration::from_ms(6.0));
        // Backoff doubles and caps like the disk plan's.
        let c = cpu_plan(0.1, 0.0);
        assert_eq!(c.backoff_after(0), SimDuration::from_ms(1.0));
        assert_eq!(c.backoff_after(1), SimDuration::from_ms(2.0));
        assert_eq!(c.backoff_after(2), SimDuration::from_ms(4.0));
        assert_eq!(c.backoff_after(9), SimDuration::from_ms(4.0), "capped");
    }

    #[test]
    fn cpu_stream_is_independent_of_disk_stream() {
        // Disk and CPU injectors over the same seeder draw from different
        // labelled streams: interleaving draws on one never changes the
        // other's verdicts.
        let seeder = StreamSeeder::new(21);
        let mut cpu_alone = CpuFaultInjector::new(cpu_plan(0.5, 0.5), &seeder);
        let mut cpu_mixed = CpuFaultInjector::new(cpu_plan(0.5, 0.5), &seeder);
        let mut disk = FaultInjector::new(plan(0.5, 0.5), &seeder);
        for i in 0..100 {
            let now = SimTime::from_ms(i as f64);
            let d = SimDuration::from_ms(5.0);
            let _ = disk.attempt(now, d);
            assert_eq!(cpu_alone.attempt(now, d), cpu_mixed.attempt(now, d));
        }
    }

    #[test]
    fn fixed_draw_count_keeps_stream_aligned() {
        // Two injectors with different spike probabilities see the same
        // error draws: outcome of the error coin must not depend on
        // whether spikes are enabled.
        let seeder = StreamSeeder::new(11);
        let mut with_spikes = FaultInjector::new(plan(0.5, 0.9), &seeder);
        let mut without = FaultInjector::new(plan(0.5, 0.0), &seeder);
        for i in 0..100 {
            let now = SimTime::from_ms(i as f64);
            let d = SimDuration::from_ms(25.0);
            assert_eq!(
                with_spikes.attempt(now, d).failed,
                without.attempt(now, d).failed
            );
        }
    }
}
