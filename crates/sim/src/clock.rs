//! Virtual vs wall-clock time sources.
//!
//! The simulation kernel keeps all of its own time in [`SimTime`]
//! (integer microseconds) and advances it by popping calendar events —
//! *virtual* time, decoupled from the machine. A serving front-end wants
//! the opposite: events may only fire once the real world has caught up
//! with them. [`Clock`] abstracts over the two regimes so one event loop
//! can drive both:
//!
//! * [`Clock::virtual_clock`] — time is wherever the calendar says it is.
//!   [`Clock::due`] is always `true` and [`Clock::wall_wait`] never asks
//!   for a sleep, so a virtual-clock loop degenerates to the classic
//!   pop-and-process loop, **bit-identical** to the batch simulator.
//! * [`Clock::wall`] — anchors `SimTime::ZERO` to the construction
//!   [`Instant`] and maps sim time to real time through a configurable
//!   `scale` (sim microseconds per wall microsecond). `scale = 1.0` runs
//!   the simulation in real time; `scale = 1000.0` runs it 1000× faster
//!   than real time (one wall millisecond ticks one sim second).
//!
//! The mapping is the whole abstraction: everything else (sleeping,
//! waking on submissions) belongs to the serving loop, which only needs
//! "what sim time is it now" ([`Clock::now`]) and "how long until this
//! sim instant" ([`Clock::wall_wait`]).
//!
//! # Examples
//!
//! Constructing the two clock modes:
//!
//! ```
//! use rtx_sim::clock::Clock;
//! use rtx_sim::time::SimTime;
//!
//! // Virtual: time never advances on its own; events are always due.
//! let virt = Clock::virtual_clock();
//! assert!(virt.is_virtual());
//! assert!(virt.due(SimTime::from_ms(1e12)));
//!
//! // Wall, 1000x: a sim instant 1000 ms out is ~1 wall ms away.
//! let wall = Clock::wall(1000.0);
//! assert!(!wall.is_virtual());
//! let wait = wall.wall_wait(SimTime::from_ms(1000.0)).unwrap();
//! assert!(wait.as_millis() <= 1);
//! ```

use std::time::{Duration, Instant};

use crate::time::{SimDuration, SimTime, MICROS_PER_SEC};

/// A time source for the serving event loop: virtual (calendar-driven,
/// deterministic) or wall (anchored to a real [`Instant`] through a rate
/// scale).
#[derive(Debug, Clone)]
pub enum Clock {
    /// Calendar time *is* the time. Deterministic; the batch simulator's
    /// regime.
    Virtual,
    /// Real time, scaled: `sim_micros = wall_micros × scale` since the
    /// anchor.
    Wall {
        /// The wall instant that corresponds to `SimTime::ZERO`.
        start: Instant,
        /// Sim microseconds per wall microsecond (`> 0`).
        scale: f64,
    },
}

impl Clock {
    /// The virtual (deterministic, calendar-driven) clock.
    pub fn virtual_clock() -> Self {
        Clock::Virtual
    }

    /// A wall clock anchored at *now*, running `scale` sim microseconds
    /// per wall microsecond. `scale = 1.0` is real time.
    ///
    /// # Panics
    /// Panics unless `scale` is positive and finite.
    pub fn wall(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "clock scale must be positive and finite"
        );
        Clock::Wall {
            start: Instant::now(),
            scale,
        }
    }

    /// True iff this is the virtual clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual)
    }

    /// The current sim time. The virtual clock has no intrinsic "now" —
    /// time lives in the calendar — so callers pass the calendar's time
    /// as `sim_now` and get it back unchanged; the wall clock reports
    /// scaled elapsed real time (never earlier than `sim_now`, so a loop
    /// that already popped an event at `sim_now` cannot observe time
    /// running backwards).
    pub fn now(&self, sim_now: SimTime) -> SimTime {
        match self {
            Clock::Virtual => sim_now,
            Clock::Wall { start, scale } => {
                let wall_us = start.elapsed().as_micros() as f64;
                let sim_us = (wall_us * scale) as u64;
                SimTime::from_micros(sim_us.max(sim_now.as_micros()))
            }
        }
    }

    /// Is an event scheduled at sim time `at` allowed to fire yet?
    /// Virtual: always. Wall: once scaled real time has reached `at`.
    pub fn due(&self, at: SimTime) -> bool {
        match self {
            Clock::Virtual => true,
            Clock::Wall { .. } => self.now(SimTime::ZERO) >= at,
        }
    }

    /// How long to sleep (in real time) before an event at sim time `at`
    /// becomes due. `None` means "no waiting in this regime" (virtual
    /// clock); `Some(Duration::ZERO)` means it is already due.
    pub fn wall_wait(&self, at: SimTime) -> Option<Duration> {
        match self {
            Clock::Virtual => None,
            Clock::Wall { start, scale } => {
                let target_wall_us = at.as_micros() as f64 / scale;
                let elapsed_us = start.elapsed().as_micros() as f64;
                let remaining = target_wall_us - elapsed_us;
                if remaining <= 0.0 {
                    Some(Duration::ZERO)
                } else {
                    Some(Duration::from_micros(remaining.ceil() as u64))
                }
            }
        }
    }

    /// Convert a sim-time span to real milliseconds under this clock's
    /// rate: identity for the virtual clock (sim milliseconds *are* the
    /// reporting unit there), divided by `scale` for the wall clock.
    ///
    /// This is how serving metrics report latencies: the engine measures
    /// response times in sim time, and the clock says what that cost in
    /// the real world.
    pub fn to_wall_ms(&self, span: SimDuration) -> f64 {
        match self {
            Clock::Virtual => span.as_ms(),
            Clock::Wall { scale, .. } => span.as_ms() / scale,
        }
    }

    /// Total real seconds a sim span occupies under this clock (virtual:
    /// the sim seconds themselves).
    pub fn to_wall_secs(&self, span: SimDuration) -> f64 {
        match self {
            Clock::Virtual => span.as_secs(),
            Clock::Wall { scale, .. } => span.as_secs() / scale,
        }
    }

    /// The sim-time rate of this clock: sim microseconds per wall
    /// microsecond (1.0 for the virtual clock, where the distinction is
    /// vacuous).
    pub fn scale(&self) -> f64 {
        match self {
            Clock::Virtual => 1.0,
            Clock::Wall { scale, .. } => *scale,
        }
    }

    /// Real seconds elapsed since the clock's anchor (0 for the virtual
    /// clock, which has no anchor).
    pub fn elapsed_wall_secs(&self) -> f64 {
        match self {
            Clock::Virtual => 0.0,
            Clock::Wall { start, .. } => start.elapsed().as_secs_f64(),
        }
    }
}

/// Sim microseconds corresponding to `d` real time under `scale`.
pub fn wall_to_sim(d: Duration, scale: f64) -> SimDuration {
    SimDuration::from_micros((d.as_secs_f64() * MICROS_PER_SEC as f64 * scale) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_transparent() {
        let c = Clock::virtual_clock();
        assert!(c.is_virtual());
        let t = SimTime::from_ms(123.0);
        assert_eq!(c.now(t), t);
        assert!(c.due(SimTime::MAX));
        assert_eq!(c.wall_wait(SimTime::from_ms(5.0)), None);
        assert_eq!(c.to_wall_ms(SimDuration::from_ms(7.5)), 7.5);
        assert_eq!(c.scale(), 1.0);
        assert_eq!(c.elapsed_wall_secs(), 0.0);
    }

    #[test]
    fn wall_clock_advances_with_real_time() {
        let c = Clock::wall(1_000_000.0); // 1 wall µs = 1 sim s
        std::thread::sleep(Duration::from_millis(2));
        let now = c.now(SimTime::ZERO);
        assert!(now > SimTime::from_secs(1.0), "scaled time advanced: {now}");
        assert!(c.due(SimTime::from_ms(1.0)));
        assert!(c.elapsed_wall_secs() > 0.0);
    }

    #[test]
    fn wall_now_never_behind_sim_now() {
        let c = Clock::wall(1.0);
        let far = SimTime::from_secs(3600.0);
        assert_eq!(c.now(far), far, "clamped up to the calendar's time");
    }

    #[test]
    fn wall_wait_scales() {
        let c = Clock::wall(100.0);
        // An event 10 sim seconds out is ~100 wall ms away at 100x.
        let wait = c.wall_wait(SimTime::from_secs(10.0)).unwrap();
        assert!(wait <= Duration::from_millis(101), "wait {wait:?}");
        assert!(wait >= Duration::from_millis(50), "wait {wait:?}");
        // The past is immediately due.
        assert_eq!(c.wall_wait(SimTime::ZERO), Some(Duration::ZERO));
    }

    #[test]
    fn unit_conversions() {
        let c = Clock::wall(1000.0);
        assert!((c.to_wall_ms(SimDuration::from_ms(500.0)) - 0.5).abs() < 1e-12);
        assert!((c.to_wall_secs(SimDuration::from_secs(10.0)) - 0.01).abs() < 1e-12);
        assert_eq!(
            wall_to_sim(Duration::from_millis(1), 1000.0),
            SimDuration::from_secs(1.0)
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_scale_rejected() {
        Clock::wall(0.0);
    }
}
