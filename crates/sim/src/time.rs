//! Simulation clock types.
//!
//! All simulation time is kept in **integer microseconds** so that event
//! ordering is exact and runs are bit-reproducible across platforms. The
//! paper quotes every parameter in milliseconds; [`SimTime::from_ms`] /
//! [`SimDuration::from_ms`] do the conversion at the edges.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds per millisecond.
pub const MICROS_PER_MS: u64 = 1_000;
/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute point in simulated time, in microseconds since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds (fractional ms are truncated to µs).
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "SimTime cannot be negative");
        SimTime((ms * MICROS_PER_MS as f64).round() as u64)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as (fractional) milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / MICROS_PER_MS as f64
    }

    /// Time as (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span from `earlier` to `self`. Saturates to zero if `earlier` is
    /// later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Signed difference `self - other` in milliseconds. This is the natural
    /// unit for *lateness* (positive = tardy, negative = early).
    #[inline]
    pub fn signed_ms_since(self, other: SimTime) -> f64 {
        if self.0 >= other.0 {
            (self.0 - other.0) as f64 / MICROS_PER_MS as f64
        } else {
            -((other.0 - self.0) as f64 / MICROS_PER_MS as f64)
        }
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        debug_assert!(ms >= 0.0, "SimDuration cannot be negative");
        SimDuration((ms * MICROS_PER_MS as f64).round() as u64)
    }

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span as (fractional) milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / MICROS_PER_MS as f64
    }

    /// Span as (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True iff this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply the span by a non-negative factor.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "scale factor cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(4.0);
        assert_eq!(t.as_micros(), 4_000);
        assert!((t.as_ms() - 4.0).abs() < 1e-12);
        assert!((SimTime::from_secs(1.5).as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(5.0);
        assert_eq!(t, SimTime::from_ms(15.0));
        assert_eq!(t.since(SimTime::from_ms(3.0)), SimDuration::from_ms(12.0));
        // `since` saturates.
        assert_eq!(
            SimTime::from_ms(3.0).since(SimTime::from_ms(10.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn signed_difference() {
        let d = SimTime::from_ms(7.0);
        let f = SimTime::from_ms(10.0);
        assert!((f.signed_ms_since(d) - 3.0).abs() < 1e-12);
        assert!((d.signed_ms_since(f) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_ms(4.0);
        let b = SimDuration::from_ms(1.5);
        assert_eq!(a + b, SimDuration::from_ms(5.5));
        assert_eq!(a - b, SimDuration::from_ms(2.5));
        assert_eq!(a * 3, SimDuration::from_ms(12.0));
        assert_eq!(a / 2, SimDuration::from_ms(2.0));
        assert_eq!(a.scale(0.5), SimDuration::from_ms(2.0));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_ms(i as f64)).sum();
        assert_eq!(total, SimDuration::from_ms(10.0));
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(format!("{}", SimTime::from_ms(1.5)), "1.500ms");
        assert_eq!(format!("{}", SimDuration::from_ms(0.25)), "0.250ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_ms(2.0), SimTime::ZERO, SimTime::from_ms(1.0)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_ms(1.0), SimTime::from_ms(2.0)]
        );
    }
}
