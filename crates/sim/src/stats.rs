//! Statistics collection for simulation output analysis.
//!
//! Three layers, mirroring how the paper reports results:
//!
//! * [`Accumulator`] — within-run online mean/variance (Welford) for
//!   per-transaction observations (lateness, restarts, …);
//! * [`TimeWeighted`] — within-run time-integrated averages for state
//!   variables (P-list length, disk utilization, queue lengths);
//! * [`Replications`] — across-run aggregation with Student-t confidence
//!   intervals ("the result were collected and averaged over the 10 runs").

use std::fmt;

/// Online accumulator for scalar observations (Welford's algorithm).
///
/// Numerically stable single-pass mean and variance; also tracks extrema
/// and sum so callers can derive rates.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty, so ratios of empty runs stay finite).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4}",
            self.n,
            self.mean(),
            self.std_dev()
        )
    }
}

/// Time-weighted average of a piecewise-constant state variable.
///
/// Feed it `(time, new_value)` transitions; it integrates the previous
/// value over the elapsed span. Used for P-list length ("the average
/// number of partially executed transactions is 1 to 2", §4.1) and disk
/// utilization (§5).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: f64,
    value: f64,
    integral: f64,
    start: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start integrating at `start_time` with initial value `initial`.
    pub fn new(start_time: f64, initial: f64) -> Self {
        TimeWeighted {
            last_time: start_time,
            value: initial,
            integral: 0.0,
            start: start_time,
            max: initial,
        }
    }

    /// Record that the variable changed to `value` at time `time`.
    ///
    /// # Panics
    /// Panics (debug) if `time` moves backwards.
    pub fn set(&mut self, time: f64, value: f64) {
        debug_assert!(time >= self.last_time, "TimeWeighted time went backwards");
        self.integral += self.value * (time - self.last_time);
        self.last_time = time;
        self.value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Add `delta` to the current value at `time` (convenience for
    /// counters like queue lengths).
    pub fn add(&mut self, time: f64, delta: f64) {
        let v = self.value + delta;
        self.set(time, v);
    }

    /// Current value of the state variable.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start_time, end]`.
    pub fn mean_until(&self, end: f64) -> f64 {
        let span = end - self.start;
        if span <= 0.0 {
            return self.value;
        }
        (self.integral + self.value * (end - self.last_time)) / span
    }
}

/// Across-replication aggregation of one output metric.
///
/// Each replication contributes a single number (e.g. that run's miss
/// percentage); the summary is mean ± half-width of a 95% Student-t
/// confidence interval.
#[derive(Debug, Clone, Default)]
pub struct Replications {
    values: Vec<f64>,
}

/// Point estimate with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean across replications.
    pub mean: f64,
    /// Half-width of the 95% CI (0 for a single replication).
    pub half_width: f64,
    /// Number of replications.
    pub n: usize,
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

/// Two-sided 97.5% quantiles of the Student-t distribution for
/// `df = 1..=30`; beyond 30 the normal approximation 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

impl Replications {
    /// Empty set of replications.
    pub fn new() -> Self {
        Replications { values: Vec::new() }
    }

    /// Record one replication's value.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Record every value from `values`, in iteration order.
    ///
    /// Equivalent to calling [`record`](Self::record) once per value;
    /// useful when a batch of replications was collected elsewhere (e.g.
    /// on worker threads) and is being folded back in a fixed order.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.values.extend(values);
    }

    /// Append all of `other`'s values after this set's, preserving order
    /// within each.
    ///
    /// Merging partitions of a value sequence in partition order yields
    /// exactly the state produced by recording the original sequence
    /// serially, so estimates are bit-identical.
    pub fn merge(&mut self, other: &Replications) {
        self.values.extend_from_slice(&other.values);
    }

    /// Number of replications recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Raw per-replication values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mean with 95% Student-t confidence half-width.
    pub fn estimate(&self) -> Estimate {
        let n = self.values.len();
        if n == 0 {
            return Estimate {
                mean: 0.0,
                half_width: 0.0,
                n: 0,
            };
        }
        let mean = self.values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                half_width: 0.0,
                n,
            };
        }
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        let df = n - 1;
        let t = if df <= 30 { T_975[df - 1] } else { 1.96 };
        Estimate {
            mean,
            half_width: t * (var / n as f64).sqrt(),
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.sum() - 40.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((a.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn accumulator_empty_is_safe() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn accumulator_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.record(3.0);
        let empty = Accumulator::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut b = Accumulator::new();
        b.merge(&a);
        assert_eq!(b.count(), 1);
        assert_eq!(b.mean(), 3.0);
    }

    #[test]
    fn time_weighted_step_function() {
        // value 0 on [0,10), 2 on [10,30), 1 on [30,40]
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.set(10.0, 2.0);
        tw.set(30.0, 1.0);
        let mean = tw.mean_until(40.0);
        // integral = 0*10 + 2*20 + 1*10 = 50 over 40
        assert!((mean - 1.25).abs() < 1e-12);
        assert_eq!(tw.max(), 2.0);
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_add_counter() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.add(5.0, 1.0);
        tw.add(10.0, 1.0);
        tw.add(15.0, -2.0);
        // integral = 0*5 + 1*5 + 2*5 = 15 over 20
        assert!((tw.mean_until(20.0) - 0.75).abs() < 1e-12);
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(5.0, 3.0);
        assert_eq!(tw.mean_until(5.0), 3.0);
    }

    #[test]
    fn replications_single_run() {
        let mut r = Replications::new();
        r.record(12.5);
        let e = r.estimate();
        assert_eq!(e.mean, 12.5);
        assert_eq!(e.half_width, 0.0);
        assert_eq!(e.n, 1);
    }

    #[test]
    fn replications_known_ci() {
        // n=10, values 1..=10: mean 5.5, sample std ≈ 3.0277.
        let mut r = Replications::new();
        for i in 1..=10 {
            r.record(i as f64);
        }
        let e = r.estimate();
        assert!((e.mean - 5.5).abs() < 1e-12);
        // t(9, .975) = 2.262; hw = 2.262 * 3.0277 / sqrt(10) ≈ 2.1659
        assert!((e.half_width - 2.1659).abs() < 1e-3, "hw {}", e.half_width);
    }

    #[test]
    fn replications_empty() {
        let r = Replications::new();
        let e = r.estimate();
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn replications_large_n_uses_normal() {
        let mut r = Replications::new();
        for i in 0..100 {
            r.record((i % 2) as f64);
        }
        let e = r.estimate();
        assert!((e.mean - 0.5).abs() < 1e-12);
        assert!(e.half_width > 0.09 && e.half_width < 0.11);
    }

    #[test]
    fn replications_merge_equals_serial_recording() {
        // Recording a sequence serially and merging ordered partitions of
        // it must produce bit-identical estimates (same fp operand order).
        let values = [3.25, -1.5, 0.125, 7.75, 2.0, -0.0625, 4.5];
        let mut serial = Replications::new();
        serial.record_all(values);

        for split in 0..=values.len() {
            let mut left = Replications::new();
            left.record_all(values[..split].iter().copied());
            let mut right = Replications::new();
            right.record_all(values[split..].iter().copied());
            left.merge(&right);
            assert_eq!(left.values(), serial.values());
            let (a, b) = (left.estimate(), serial.estimate());
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.half_width, b.half_width);
            assert_eq!(a.n, b.n);
        }
    }

    #[test]
    fn record_all_matches_repeated_record() {
        let mut a = Replications::new();
        a.record_all([1.0, 2.0, 3.0]);
        let mut b = Replications::new();
        for v in [1.0, 2.0, 3.0] {
            b.record(v);
        }
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn estimate_display() {
        let e = Estimate {
            mean: 1.23456,
            half_width: 0.5,
            n: 3,
        };
        assert_eq!(format!("{e}"), "1.235 ± 0.500");
    }
}
