//! The future event list (event calendar).
//!
//! This is the core of the discrete-event kernel — the equivalent of
//! SIMPACK's event list used by the paper's simulator. Events are opaque
//! payloads of type `E` ordered by `(time, sequence)`: simultaneous events
//! fire in the order they were scheduled, which keeps runs deterministic.
//!
//! Cancellation is first-class because the RTDB engine must revoke pending
//! completions whenever a transaction is preempted or aborted: `schedule`
//! returns an [`EventHandle`] and `cancel` lazily tombstones the entry, so
//! both operations stay `O(log n)` amortized. Every event's lifecycle
//! (pending → fired | cancelled) is tracked explicitly, so cancelling an
//! already-fired or already-cancelled handle is a detectable no-op.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifies a scheduled event so it can be cancelled later.
///
/// Handles are unique for the lifetime of a [`Calendar`]; cancelling a
/// handle that already fired or was already cancelled is a harmless no-op
/// (and reports `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    /// A handle that never corresponds to a live event. Useful as an
    /// initializer before the first real schedule.
    pub const NULL: EventHandle = EventHandle(u64::MAX);

    /// True iff this is the null sentinel.
    pub fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// Build a handle from a raw sequence number. For alternative event
    /// list implementations (e.g. the RTDB's lane calendar) that issue
    /// [`Calendar`]-compatible handles; `u64::MAX` is the null sentinel.
    pub fn from_raw(raw: u64) -> EventHandle {
        EventHandle(raw)
    }

    /// The raw sequence number this handle wraps (`u64::MAX` for null).
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventState {
    Pending,
    Cancelled,
    Fired,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A fired event, as returned by [`Calendar::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// The simulation time at which the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub handle: EventHandle,
    /// The event payload.
    pub payload: E,
}

/// The future event list.
///
/// ```
/// use rtx_sim::calendar::Calendar;
/// use rtx_sim::time::SimTime;
///
/// let mut cal: Calendar<&str> = Calendar::new();
/// cal.schedule(SimTime::from_ms(5.0), "b");
/// let h = cal.schedule(SimTime::from_ms(1.0), "a");
/// cal.schedule(SimTime::from_ms(1.0), "a2");
/// assert!(cal.cancel(h));
/// assert_eq!(cal.pop().unwrap().payload, "a2"); // "a" was cancelled
/// assert_eq!(cal.pop().unwrap().payload, "b");
/// assert!(cal.pop().is_none());
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Lifecycle state indexed by sequence number. One byte per event ever
    /// scheduled; simulation runs schedule at most a few hundred thousand
    /// events, so this stays small and makes every state query O(1).
    states: Vec<EventState>,
    live: usize,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// An empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            states: Vec::new(),
            live: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the firing time of the last popped
    /// event (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (fired, cancelled or pending).
    pub fn scheduled_total(&self) -> u64 {
        self.states.len() as u64
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current simulation time — scheduling
    /// into the past is always an engine bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.states.len() as u64;
        self.states.push(EventState::Pending);
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` iff the event
    /// was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.is_null() {
            return false;
        }
        match self.states.get(handle.0 as usize) {
            Some(EventState::Pending) => {
                self.states[handle.0 as usize] = EventState::Cancelled;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// True iff `handle` refers to an event that has not yet fired nor been
    /// cancelled.
    pub fn is_pending(&self, handle: EventHandle) -> bool {
        !handle.is_null()
            && matches!(
                self.states.get(handle.0 as usize),
                Some(EventState::Pending)
            )
    }

    /// Pop the earliest pending event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        while let Some(entry) = self.heap.pop() {
            match self.states[entry.seq as usize] {
                EventState::Cancelled => continue, // tombstoned
                EventState::Fired => unreachable!("event fired twice"),
                EventState::Pending => {
                    self.states[entry.seq as usize] = EventState::Fired;
                    self.live -= 1;
                    debug_assert!(entry.time >= self.now, "event calendar went backwards");
                    self.now = entry.time;
                    return Some(Fired {
                        time: entry.time,
                        handle: EventHandle(entry.seq),
                        payload: entry.payload,
                    });
                }
            }
        }
        debug_assert!(self.live == 0);
        None
    }

    /// Peek at the time of the next pending event without firing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstoned entries from the top so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.states[entry.seq as usize] == EventState::Cancelled {
                self.heap.pop();
            } else {
                return Some(entry.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ms(x: f64) -> SimTime {
        SimTime::from_ms(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(ms(3.0), 3);
        cal.schedule(ms(1.0), 1);
        cal.schedule(ms(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut cal = Calendar::new();
        for i in 0..10 {
            cal.schedule(ms(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = Calendar::new();
        cal.schedule(ms(4.0), ());
        cal.schedule(ms(4.0), ());
        cal.schedule(ms(9.0), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), ms(4.0));
        cal.pop();
        assert_eq!(cal.now(), ms(4.0));
        cal.pop();
        assert_eq!(cal.now(), ms(9.0));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut cal = Calendar::new();
        let a = cal.schedule(ms(1.0), "a");
        cal.schedule(ms(2.0), "b");
        assert_eq!(cal.len(), 2);
        assert!(cal.is_pending(a));
        assert!(cal.cancel(a));
        assert!(!cal.is_pending(a));
        assert_eq!(cal.len(), 1);
        assert!(!cal.cancel(a), "double cancel is a no-op");
        assert_eq!(cal.pop().unwrap().payload, "b");
        assert!(cal.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut cal = Calendar::new();
        let a = cal.schedule(ms(1.0), "a");
        assert_eq!(cal.pop().unwrap().payload, "a");
        assert!(!cal.cancel(a));
        assert_eq!(cal.len(), 0);
    }

    #[test]
    fn null_handle_cancel_is_noop() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(!cal.cancel(EventHandle::NULL));
        assert!(EventHandle::NULL.is_null());
        assert!(!cal.is_pending(EventHandle::NULL));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut cal = Calendar::new();
        cal.schedule(ms(5.0), ());
        cal.pop();
        cal.schedule(ms(1.0), ());
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut cal = Calendar::new();
        cal.schedule(ms(5.0), 1);
        cal.pop();
        cal.schedule(cal.now(), 2);
        assert_eq!(cal.pop().unwrap().time, ms(5.0));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(ms(1.0), "a");
        cal.schedule(ms(2.0), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(ms(2.0)));
        assert_eq!(cal.pop().unwrap().payload, "b");
        assert_eq!(cal.peek_time(), None);
    }

    #[test]
    fn relative_scheduling_pattern() {
        // The typical engine pattern: schedule "now + burst".
        let mut cal = Calendar::new();
        cal.schedule(ms(10.0), "start");
        let fired = cal.pop().unwrap();
        cal.schedule(fired.time + SimDuration::from_ms(4.0), "done");
        let next = cal.pop().unwrap();
        assert_eq!(next.time, ms(14.0));
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut cal = Calendar::new();
        let a = cal.schedule(ms(1.0), ());
        cal.schedule(ms(2.0), ());
        cal.cancel(a);
        cal.pop();
        assert_eq!(cal.scheduled_total(), 2);
    }

    #[test]
    fn stress_interleaved_schedule_cancel() {
        let mut cal = Calendar::new();
        let mut handles = Vec::new();
        for i in 0..1000u64 {
            handles.push(cal.schedule(SimTime::from_micros(i * 7 % 500 + 1000), i));
        }
        // Cancel every third.
        let mut cancelled = 0;
        for (i, &h) in handles.iter().enumerate() {
            if i % 3 == 0 {
                assert!(cal.cancel(h));
                cancelled += 1;
            }
        }
        assert_eq!(cal.len(), 1000 - cancelled);
        let mut popped = 0;
        let mut last = SimTime::ZERO;
        while let Some(f) = cal.pop() {
            assert!(f.time >= last);
            last = f.time;
            assert!(f.payload % 3 != 0, "cancelled event fired: {}", f.payload);
            popped += 1;
        }
        assert_eq!(popped, 1000 - cancelled);
    }
}
