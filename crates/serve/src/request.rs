//! Client-facing transaction requests and terminal outcomes.

use rtx_preanalysis::{DataSet, ItemId, TypeId};
use rtx_rtdb::{Completion, CompletionKind, Stage, Transaction, TxnId, TxnState};
use rtx_sim::{SimDuration, SimTime};

/// What a client asks the server to run: the transaction's shape, not
/// its engine-internal state.
///
/// The server turns a request into a full [`Transaction`] at submission
/// time, assigning the dense id and the arrival stamp (wall-clock mode
/// stamps "now"; virtual mode honours [`TxnRequest::arrival`]). The
/// deadline follows the paper's assignment:
/// `deadline = arrival + resource_time × (1 + slack)`.
#[derive(Debug, Clone)]
pub struct TxnRequest {
    /// Transaction type (indexes the pre-analysis tables; free-form for
    /// ad-hoc workloads).
    pub ty: TypeId,
    /// The records this transaction updates (write-locks, in order).
    pub items: Vec<ItemId>,
    /// CPU time per record update.
    pub update_time: SimDuration,
    /// Slack factor for the deadline assignment.
    pub slack: f64,
    /// Requested arrival stamp. Virtual-clock serving uses it verbatim
    /// (it is the replayed trace's arrival time); wall-clock serving
    /// ignores it and stamps real time.
    pub arrival: SimTime,
}

impl TxnRequest {
    /// Total CPU demand: one update burst per item.
    pub fn resource_time(&self) -> SimDuration {
        self.update_time * self.items.len() as u64
    }

    /// The absolute deadline this request would get if it arrived at
    /// `arrival`.
    pub fn deadline_from(&self, arrival: SimTime) -> SimTime {
        arrival + self.resource_time().scale(1.0 + self.slack)
    }

    /// Materialize the engine-side [`Transaction`], exactly as the batch
    /// workload generator would build it. The serving bit-identity test
    /// leans on this: replaying a trace through the server and through
    /// [`rtx_rtdb::run_simulation_from`] constructs identical values.
    pub fn into_transaction(self, id: TxnId, arrival: SimTime) -> Transaction {
        let deadline = self.deadline_from(arrival);
        let resource_time = self.resource_time();
        Transaction {
            id,
            ty: self.ty,
            arrival,
            deadline,
            resource_time,
            might_access: self.items.iter().copied().collect(),
            items: self.items,
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: self.update_time,
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }
}

/// The terminal outcome a [`crate::Ticket`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// The engine-side completion record (sim-time stamps).
    pub completion: Completion,
    /// Response time converted to wall milliseconds under the server's
    /// clock (identical to the sim response for virtual serving).
    pub response_wall_ms: f64,
}

impl Outcome {
    /// True iff the transaction committed (was not rejected at
    /// admission).
    pub fn accepted(&self) -> bool {
        matches!(self.completion.kind, CompletionKind::Committed { .. })
    }

    /// True iff it committed past its deadline.
    pub fn missed(&self) -> bool {
        matches!(
            self.completion.kind,
            CompletionKind::Committed { missed: true }
        )
    }
}
