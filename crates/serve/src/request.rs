//! Client-facing transaction requests and terminal outcomes.

use rtx_preanalysis::{DataSet, ItemId, TypeId};
use rtx_rtdb::{Completion, CompletionKind, Stage, Transaction, TxnId, TxnState};
use rtx_sim::{SimDuration, SimTime};

/// What a client asks the server to run: the transaction's shape, not
/// its engine-internal state.
///
/// The server turns a request into a full [`Transaction`] at submission
/// time, assigning the dense id and the arrival stamp (wall-clock mode
/// stamps "now"; virtual mode honours [`TxnRequest::arrival`]). The
/// deadline follows the paper's assignment:
/// `deadline = arrival + resource_time × (1 + slack)`.
#[derive(Debug, Clone)]
pub struct TxnRequest {
    /// Transaction type (indexes the pre-analysis tables; free-form for
    /// ad-hoc workloads).
    pub ty: TypeId,
    /// The records this transaction updates (write-locks, in order).
    pub items: Vec<ItemId>,
    /// CPU time per record update.
    pub update_time: SimDuration,
    /// Slack factor for the deadline assignment.
    pub slack: f64,
    /// Requested arrival stamp. Virtual-clock serving uses it verbatim
    /// (it is the replayed trace's arrival time); wall-clock serving
    /// stamps real time instead and treats this as the *intended*
    /// arrival — the anchor for the shedding check when
    /// [`crate::ServeConfig::shed_infeasible`] is on.
    pub arrival: SimTime,
    /// Which updates perform a disk access before their CPU burst,
    /// index-aligned with [`TxnRequest::items`]. A shorter pattern means
    /// "no IO" for the remaining updates; empty is the pure main-memory
    /// request. Any `true` entry requires the engine configuration to
    /// have a disk ([`rtx_rtdb::SimConfig::system`]`.disk`), exactly as
    /// a batch disk-resident workload would.
    pub io_pattern: Vec<bool>,
}

impl TxnRequest {
    /// Total CPU demand: one update burst per item. (Disk time from
    /// [`TxnRequest::io_pattern`] is *not* included — the request does
    /// not know the disk's access time; IO-bearing requests should
    /// carry correspondingly generous slack.)
    pub fn resource_time(&self) -> SimDuration {
        self.update_time * self.items.len() as u64
    }

    /// The absolute deadline this request would get if it arrived at
    /// `arrival`.
    pub fn deadline_from(&self, arrival: SimTime) -> SimTime {
        arrival + self.resource_time().scale(1.0 + self.slack)
    }

    /// Materialize the engine-side [`Transaction`], exactly as the batch
    /// workload generator would build it. The serving bit-identity test
    /// leans on this: replaying a trace through the server and through
    /// [`rtx_rtdb::run_simulation_from`] constructs identical values.
    pub fn into_transaction(self, id: TxnId, arrival: SimTime) -> Transaction {
        let deadline = self.deadline_from(arrival);
        let resource_time = self.resource_time();
        Transaction {
            id,
            ty: self.ty,
            arrival,
            deadline,
            resource_time,
            might_access: self.items.iter().copied().collect(),
            items: self.items,
            io_pattern: self.io_pattern,
            modes: Vec::new(),
            update_time: self.update_time,
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }
}

/// The terminal outcome a [`crate::Ticket`] resolves to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The engine drove the transaction to a terminal state: committed
    /// (deadline met or missed) or rejected at admission.
    Finished {
        /// The engine-side completion record (sim-time stamps).
        completion: Completion,
        /// Response time converted to wall milliseconds under the
        /// server's clock (identical to the sim response for virtual
        /// serving).
        response_wall_ms: f64,
    },
    /// Load shedding dropped the request at dequeue: by the time it
    /// left the submission queue, its intended deadline
    /// ([`TxnRequest::deadline_from`] of the *requested* arrival) was
    /// already infeasible even on an idle system. Only produced when
    /// [`crate::ServeConfig::shed_infeasible`] is on.
    Shed {
        /// Wall milliseconds the request spent queued (intended arrival
        /// to shed decision).
        response_wall_ms: f64,
    },
    /// The engine crashed while this request was in flight; the
    /// supervisor resolved the ticket so no submitter hangs. The
    /// transaction's effects are gone with the crashed engine state.
    Poisoned,
}

impl Outcome {
    /// True iff the transaction committed (was not rejected at
    /// admission, shed, or lost to a crash).
    pub fn accepted(&self) -> bool {
        matches!(
            self,
            Outcome::Finished {
                completion: Completion {
                    kind: CompletionKind::Committed { .. },
                    ..
                },
                ..
            }
        )
    }

    /// True iff it committed past its deadline.
    pub fn missed(&self) -> bool {
        matches!(
            self,
            Outcome::Finished {
                completion: Completion {
                    kind: CompletionKind::Committed { missed: true },
                    ..
                },
                ..
            }
        )
    }

    /// True iff load shedding dropped the request at dequeue.
    pub fn shed(&self) -> bool {
        matches!(self, Outcome::Shed { .. })
    }

    /// True iff the request was lost to an engine crash.
    pub fn poisoned(&self) -> bool {
        matches!(self, Outcome::Poisoned)
    }

    /// The engine-side completion record, when the engine finished the
    /// transaction.
    pub fn completion(&self) -> Option<&Completion> {
        match self {
            Outcome::Finished { completion, .. } => Some(completion),
            _ => None,
        }
    }

    /// The wall-clock response time, when one is defined (finished or
    /// shed; a poisoned request has none).
    pub fn response_wall_ms(&self) -> Option<f64> {
        match self {
            Outcome::Finished {
                response_wall_ms, ..
            }
            | Outcome::Shed { response_wall_ms } => Some(*response_wall_ms),
            Outcome::Poisoned => None,
        }
    }
}
