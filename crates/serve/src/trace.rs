//! The trading-day trace generator: `examples/trading_day.rs` scaled to
//! millions of transactions.
//!
//! Produces a deterministic, *streaming* sequence of [`TxnRequest`]s (a
//! million-transaction trace never materializes as a `Vec`) with the
//! stylized facts of an exchange's day:
//!
//! * **diurnal load** — a nonhomogeneous Poisson arrival process whose
//!   rate opens at a multiple of baseline (the opening auction), sags
//!   through a midday lull, and ramps back up into the close, generated
//!   by thinning;
//! * **hot-key skew** — a fraction of transactions touch only a small
//!   hot set of instruments, concentrating data contention;
//! * **class mix** — the example's three classes (quote updates, order
//!   matches, portfolio rebalances) with their update counts, CPU
//!   demands and slack ranges.
//!
//! Determinism: every random decision draws from an independently
//! labelled [`StreamSeeder`] stream, so a `(spec, seed)` pair names one
//! exact trace on every platform — the property the serving bit-identity
//! test and the committed `serve-vt` sweep rely on.
//!
//! # Examples
//!
//! ```
//! use rtx_serve::trace::TraceSpec;
//!
//! let spec = TraceSpec::trading_day(1000, 7);
//! let a: Vec<_> = spec.clone().stream().map(|r| r.arrival).collect();
//! let b: Vec<_> = spec.stream().map(|r| r.arrival).collect();
//! assert_eq!(a, b, "same spec + seed, same trace");
//! assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals non-decreasing");
//! ```

use rtx_preanalysis::{ItemId, TypeId};
use rtx_sim::dist::{bernoulli, exponential, sample_distinct, uniform_range, uniform_unit};
use rtx_sim::rng::{StreamSeeder, Xoshiro256};
use rtx_sim::{SimDuration, SimTime};

use crate::request::TxnRequest;

/// One transaction class of the trading mix.
struct Class {
    updates: usize,
    update_ms: f64,
    slack: (f64, f64),
    share: f64,
}

/// The example's mix: 60% quotes / 30% matches / 10% rebalances.
const CLASSES: [Class; 3] = [
    Class {
        updates: 2,
        update_ms: 1.0,
        slack: (0.5, 2.0),
        share: 0.6,
    }, // quote update
    Class {
        updates: 8,
        update_ms: 2.0,
        slack: (1.0, 4.0),
        share: 0.3,
    }, // order match
    Class {
        updates: 25,
        update_ms: 4.0,
        slack: (3.0, 10.0),
        share: 0.1,
    }, // portfolio rebalance
];

/// Load multiplier at the open (and, mirrored, at the close).
const BURST_MULT: f64 = 4.0;
/// Fraction of the day the open/close bursts each span (30 min of 6.5 h).
const BURST_FRAC: f64 = 30.0 / 390.0;
/// Load multiplier at the bottom of the midday lull.
const LULL_MULT: f64 = 0.6;

/// Parameters naming one deterministic trading-day trace.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Total transactions to emit.
    pub txns: usize,
    /// Instrument-table size (records).
    pub db_size: u64,
    /// Size of the hot set (records `0..hot_keys`).
    pub hot_keys: u64,
    /// Probability a transaction touches only hot keys.
    pub hot_prob: f64,
    /// Simulated length of the trading day, seconds (shapes the diurnal
    /// profile; arrivals continue at baseline past it if `txns` haven't
    /// been exhausted).
    pub day_secs: f64,
    /// Probability each update performs a disk access before its CPU
    /// burst (`0.0` = pure main-memory trace; anything above zero needs
    /// a disk in the engine configuration). At exactly `0.0` the IO
    /// stream draws no randomness, so pre-existing traces are
    /// byte-identical.
    pub io_prob: f64,
    /// Master seed; independent labelled streams are derived from it.
    pub seed: u64,
}

impl TraceSpec {
    /// The standard preset: a 6.5-hour trading day over a 10 000-record
    /// instrument table with a 100-record hot set touched by 25% of
    /// transactions, calibrated so roughly `txns` arrivals span the day.
    pub fn trading_day(txns: usize, seed: u64) -> Self {
        TraceSpec {
            txns,
            db_size: 10_000,
            hot_keys: 100,
            hot_prob: 0.25,
            day_secs: 6.5 * 3600.0,
            io_prob: 0.0,
            seed,
        }
    }

    /// The baseline (midday, multiplier-1) arrival rate implied by
    /// fitting `txns` arrivals into the day under the diurnal profile.
    pub fn base_rate_tps(&self) -> f64 {
        // Trapezoid-integrate the profile once; deterministic.
        let steps = 10_000;
        let mut area = 0.0;
        for i in 0..steps {
            let a = profile(i as f64 / steps as f64);
            let b = profile((i + 1) as f64 / steps as f64);
            area += 0.5 * (a + b) / steps as f64;
        }
        self.txns as f64 / (self.day_secs * area)
    }

    /// The streaming request iterator for this spec.
    ///
    /// # Panics
    /// Panics if the spec is degenerate (no transactions, a day of zero
    /// length, a hot set at least as large as the table, or a cold set
    /// too small for the largest transaction class).
    pub fn stream(self) -> TradingDayTrace {
        assert!(self.txns > 0, "empty trace");
        assert!(self.day_secs > 0.0, "day must have positive length");
        assert!(
            self.hot_keys < self.db_size,
            "hot set must leave cold records"
        );
        assert!(
            (0.0..=1.0).contains(&self.io_prob),
            "io_prob must be a probability"
        );
        let largest = CLASSES.iter().map(|c| c.updates).max().unwrap() as u64;
        assert!(
            self.hot_keys >= largest && self.db_size - self.hot_keys >= largest,
            "both key ranges must fit the largest class ({largest} updates)"
        );
        let seeder = StreamSeeder::new(self.seed);
        let base_rate = self.base_rate_tps();
        TradingDayTrace {
            arr: seeder.stream("serve-arrivals"),
            accept: seeder.stream("serve-thinning"),
            class: seeder.stream("serve-class"),
            items: seeder.stream("serve-items"),
            slack: seeder.stream("serve-slack"),
            hot: seeder.stream("serve-hot"),
            io: seeder.stream("serve-io"),
            clock: SimTime::ZERO,
            emitted: 0,
            base_rate,
            spec: self,
        }
    }
}

/// Diurnal load multiplier at day-fraction `f` (clamped to `[0, 1]`):
/// linear open burst decay, midday lull, close ramp.
fn profile(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    if f < BURST_FRAC {
        // Opening auction: BURST_MULT decaying linearly to baseline.
        BURST_MULT + (1.0 - BURST_MULT) * (f / BURST_FRAC)
    } else if f > 1.0 - BURST_FRAC {
        // Closing auction: baseline ramping up to BURST_MULT.
        1.0 + (BURST_MULT - 1.0) * ((f - (1.0 - BURST_FRAC)) / BURST_FRAC)
    } else if (0.35..=0.65).contains(&f) {
        // Midday lull: triangular dip to LULL_MULT at mid-day.
        let d = 1.0 - (f - 0.5).abs() / 0.15;
        1.0 + (LULL_MULT - 1.0) * d
    } else {
        1.0
    }
}

/// The streaming iterator over a [`TraceSpec`]'s requests.
pub struct TradingDayTrace {
    spec: TraceSpec,
    arr: Xoshiro256,
    accept: Xoshiro256,
    class: Xoshiro256,
    items: Xoshiro256,
    slack: Xoshiro256,
    hot: Xoshiro256,
    io: Xoshiro256,
    clock: SimTime,
    emitted: usize,
    base_rate: f64,
}

impl TradingDayTrace {
    /// Transactions emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl Iterator for TradingDayTrace {
    type Item = TxnRequest;

    fn next(&mut self) -> Option<TxnRequest> {
        if self.emitted >= self.spec.txns {
            return None;
        }
        // Nonhomogeneous Poisson by thinning: candidates at the peak
        // rate, accepted with probability profile/peak.
        loop {
            let dt = exponential(&mut self.arr, 1.0 / (self.base_rate * BURST_MULT));
            self.clock += SimDuration::from_secs(dt);
            let f = self.clock.since(SimTime::ZERO).as_secs() / self.spec.day_secs;
            if uniform_unit(&mut self.accept) * BURST_MULT <= profile(f) {
                break;
            }
        }
        // Class by share.
        let u = uniform_unit(&mut self.class);
        let mut acc = 0.0;
        let mut ty = 0usize;
        for (i, c) in CLASSES.iter().enumerate() {
            acc += c.share;
            if u < acc {
                ty = i;
                break;
            }
        }
        let cls = &CLASSES[ty];
        // Hot transactions draw all items from the hot set; cold ones
        // from the disjoint cold range.
        let (lo, n) = if bernoulli(&mut self.hot, self.spec.hot_prob) {
            (0, self.spec.hot_keys)
        } else {
            (self.spec.hot_keys, self.spec.db_size - self.spec.hot_keys)
        };
        let items: Vec<ItemId> = sample_distinct(&mut self.items, n, cls.updates)
            .into_iter()
            .map(|x| ItemId((lo + x) as u32))
            .collect();
        // Per-update IO pattern; skipped entirely (zero draws) for pure
        // main-memory traces so their byte identity is untouched.
        let io_pattern = if self.spec.io_prob > 0.0 {
            (0..cls.updates)
                .map(|_| bernoulli(&mut self.io, self.spec.io_prob))
                .collect()
        } else {
            Vec::new()
        };
        self.emitted += 1;
        Some(TxnRequest {
            ty: TypeId(ty as u32),
            items,
            update_time: SimDuration::from_ms(cls.update_ms),
            slack: uniform_range(&mut self.slack, cls.slack.0, cls.slack.1),
            arrival: self.clock,
            io_pattern,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.spec.txns - self.emitted;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_n_monotone_arrivals() {
        let trace: Vec<_> = TraceSpec::trading_day(500, 1).stream().collect();
        assert_eq!(trace.len(), 500);
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a: Vec<_> = TraceSpec::trading_day(200, 3)
            .stream()
            .map(|r| (r.arrival, r.items.clone(), r.slack))
            .collect();
        let b: Vec<_> = TraceSpec::trading_day(200, 3)
            .stream()
            .map(|r| (r.arrival, r.items.clone(), r.slack))
            .collect();
        let c: Vec<_> = TraceSpec::trading_day(200, 4)
            .stream()
            .map(|r| (r.arrival, r.items.clone(), r.slack))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn open_is_busier_than_midday() {
        // Arrival density in the first day-tenth should clearly beat the
        // middle tenth: the open runs at up to 4x, midday dips to 0.6x.
        let spec = TraceSpec::trading_day(20_000, 9);
        let day = spec.day_secs;
        let mut first = 0;
        let mut mid = 0;
        for r in spec.stream() {
            let f = r.arrival.since(SimTime::ZERO).as_secs() / day;
            if f < 0.1 {
                first += 1;
            } else if (0.45..0.55).contains(&f) {
                mid += 1;
            }
        }
        assert!(
            first as f64 > 1.5 * mid as f64,
            "open {first} vs midday {mid}"
        );
    }

    #[test]
    fn hot_cold_key_ranges_respected() {
        let spec = TraceSpec::trading_day(2_000, 5);
        let hot_keys = spec.hot_keys as u32;
        let db = spec.db_size as u32;
        let mut saw_hot = false;
        let mut saw_cold = false;
        for r in spec.stream() {
            let hot = r.items.iter().all(|i| i.0 < hot_keys);
            let cold = r.items.iter().all(|i| i.0 >= hot_keys && i.0 < db);
            assert!(hot || cold, "a txn mixes ranges: {:?}", r.items);
            saw_hot |= hot;
            saw_cold |= cold;
        }
        assert!(saw_hot && saw_cold);
    }

    #[test]
    fn io_prob_is_an_independent_stream() {
        // Turning IO on must not perturb any other draw (labelled
        // streams), and at zero probability no pattern is materialized.
        let mm = TraceSpec::trading_day(300, 11);
        let mut io = mm.clone();
        io.io_prob = 0.4;
        let a: Vec<_> = mm
            .stream()
            .map(|r| (r.arrival, r.items.clone(), r.slack, r.io_pattern.clone()))
            .collect();
        let b: Vec<_> = io
            .stream()
            .map(|r| (r.arrival, r.items.clone(), r.slack, r.io_pattern.clone()))
            .collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((&x.0, &x.1, &x.2), (&y.0, &y.1, &y.2));
            assert!(x.3.is_empty());
            assert_eq!(y.3.len(), y.1.len(), "pattern aligned with items");
        }
        assert!(
            b.iter().flat_map(|r| &r.3).any(|&x| x),
            "40% IO should surface"
        );
        assert!(
            b.iter().flat_map(|r| &r.3).any(|&x| !x),
            "and leave some updates pure-CPU"
        );
    }

    #[test]
    fn class_mix_roughly_honoured() {
        let mut counts = [0usize; 3];
        for r in TraceSpec::trading_day(10_000, 2).stream() {
            counts[r.ty.0 as usize] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        let quote_share = counts[0] as f64 / 10_000.0;
        assert!((quote_share - 0.6).abs() < 0.05, "quotes {quote_share}");
    }
}
