//! `rtx-serve` — an in-process serving front-end for the rtx engine.
//!
//! The batch crates answer "what would this policy have done over a
//! fixed workload?"; this crate answers "what does it do while requests
//! keep arriving?". It wraps the engine's incremental stepping API
//! ([`rtx_rtdb::StepEngine`]) in:
//!
//! * [`server`] — a [`Server`] accepting [`TxnRequest`]s from concurrent
//!   client threads through a bounded queue, scheduling with any
//!   [`rtx_rtdb::Policy`], applying admission control at the front door,
//!   and resolving each submission's [`Ticket`] with its outcome;
//! * [`metrics`] — live windowed observability: streaming miss-ratio,
//!   throughput and p50/p95/p99 latency, exported as JSON;
//! * [`trace`] — the deterministic trading-day workload generator
//!   (diurnal load, open/close bursts, hot-key skew) scaled to millions
//!   of transactions.
//!
//! Two clock regimes, one code path: **virtual** serving replays a trace
//! bit-identically to the batch simulator; **wall-clock** serving paces
//! the same events against scaled real time. See `docs/SERVING.md` for
//! the walkthrough and [`server`] for the semantics.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use rtx_core::Cca;
//! use rtx_rtdb::SimConfig;
//! use rtx_serve::{ServeConfig, Server, TraceSpec};
//!
//! let mut cfg = SimConfig::mm_base();
//! cfg.workload.db_size = 10_000;
//!
//! let server = Server::start(
//!     ServeConfig::virtual_mode(),
//!     Arc::new(cfg),
//!     Arc::new(Cca::base()),
//! )
//! .unwrap();
//!
//! for req in TraceSpec::trading_day(100, 42).stream() {
//!     server.submit(req).unwrap();
//! }
//! let report = server.shutdown();
//! assert_eq!(report.summary.committed + report.summary.rejected, 100);
//! assert!(report.metrics.p99_ms >= report.metrics.p50_ms);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod request;
pub mod server;
pub mod trace;

pub use metrics::{LiveMetrics, MetricsSnapshot, WindowSnapshot};
pub use request::{Outcome, TxnRequest};
pub use server::{ClockMode, ServeConfig, ServeReport, Server, SubmitError, Ticket};
pub use trace::{TraceSpec, TradingDayTrace};
