//! Live serving metrics: streaming miss-ratio, throughput and latency
//! percentiles, sampled per window and exportable as JSON.
//!
//! The engine thread owns a [`LiveMetrics`] and publishes an immutable
//! [`MetricsSnapshot`] after every completed window (and at shutdown);
//! clients read the latest snapshot through
//! [`crate::Server::metrics`] without touching the hot path.
//!
//! All latency figures are *wall* milliseconds under the server's clock —
//! for virtual serving the clock is transparent, so they equal the
//! simulated response times.
//!
//! # Examples
//!
//! Snapshots render as self-contained JSON:
//!
//! ```
//! use rtx_serve::metrics::LiveMetrics;
//!
//! let mut m = LiveMetrics::new(1.0); // 1-second windows
//! m.on_submit();
//! m.on_commit(4.2, false, 0.3); // 4.2 ms response, met deadline
//! let snap = m.snapshot(0.5, 0);
//! assert_eq!(snap.committed, 1);
//! assert!(snap.to_json().contains("\"p99_ms\""));
//! ```

use rtx_sim::Histogram;

/// Tallies for one scope (cumulative or a single window).
#[derive(Debug, Clone, Default)]
struct Tally {
    submitted: u64,
    committed: u64,
    rejected: u64,
    missed: u64,
    shed: u64,
}

/// Streaming metrics accumulator for the serving loop.
///
/// Latencies go into two [`Histogram`]s (cumulative and per-window);
/// quantiles are bucketed to 1% relative error, counts are exact.
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    window_secs: f64,
    total: Tally,
    total_hist: Histogram,
    /// Requests lost to engine crashes (cumulative only; a crash is not
    /// attributable to a window).
    poisoned: u64,
    win: Tally,
    win_hist: Histogram,
    win_index: u64,
    win_started: f64,
    last_window: Option<WindowSnapshot>,
    /// Every completed window, in order. Small (a few dozen bytes per
    /// window), but unbounded: a server rolling 1-second windows grows
    /// this by ~5 MB per day of uptime.
    history: Vec<WindowSnapshot>,
}

impl LiveMetrics {
    /// A fresh accumulator sampling `window_secs`-long windows (wall
    /// seconds under the server's clock).
    ///
    /// # Panics
    /// Panics unless `window_secs` is positive.
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        LiveMetrics {
            window_secs,
            total: Tally::default(),
            total_hist: Histogram::for_latency_ms(),
            poisoned: 0,
            win: Tally::default(),
            win_hist: Histogram::for_latency_ms(),
            win_index: 0,
            win_started: 0.0,
            last_window: None,
            history: Vec::new(),
        }
    }

    /// Record a submission entering the queue.
    pub fn on_submit(&mut self) {
        self.total.submitted += 1;
        self.win.submitted += 1;
    }

    /// Record a commit with its response time (wall ms) and whether the
    /// deadline was missed; `elapsed_secs` drives window rolling.
    pub fn on_commit(&mut self, response_wall_ms: f64, missed: bool, elapsed_secs: f64) {
        self.total.committed += 1;
        self.win.committed += 1;
        if missed {
            self.total.missed += 1;
            self.win.missed += 1;
        }
        self.total_hist.record(response_wall_ms);
        self.win_hist.record(response_wall_ms);
        self.maybe_roll(elapsed_secs);
    }

    /// Record an admission-control rejection.
    pub fn on_reject(&mut self, elapsed_secs: f64) {
        self.total.rejected += 1;
        self.win.rejected += 1;
        self.maybe_roll(elapsed_secs);
    }

    /// Record a request dropped by deadline-aware load shedding at
    /// dequeue.
    pub fn on_shed(&mut self, elapsed_secs: f64) {
        self.total.shed += 1;
        self.win.shed += 1;
        self.maybe_roll(elapsed_secs);
    }

    /// Record `n` requests lost to an engine crash (their tickets were
    /// resolved to a poisoned outcome by the supervisor).
    pub fn on_poisoned(&mut self, n: u64) {
        self.poisoned += n;
    }

    /// Close the current window if `elapsed_secs` has passed its end.
    /// Returns `true` when a window was closed (a good moment for the
    /// server to publish a fresh snapshot).
    pub fn maybe_roll(&mut self, elapsed_secs: f64) -> bool {
        if elapsed_secs - self.win_started < self.window_secs {
            return false;
        }
        let span = (elapsed_secs - self.win_started).max(1e-9);
        let snap = WindowSnapshot {
            index: self.win_index,
            throughput_tps: (self.win.committed + self.win.rejected + self.win.shed) as f64 / span,
            miss_percent: percent(self.win.missed, self.win.committed),
            p50_ms: self.win_hist.quantile(0.50),
            p95_ms: self.win_hist.quantile(0.95),
            p99_ms: self.win_hist.quantile(0.99),
        };
        self.history.push(snap.clone());
        self.last_window = Some(snap);
        self.win = Tally::default();
        self.win_hist = Histogram::for_latency_ms();
        self.win_index += 1;
        self.win_started = elapsed_secs;
        true
    }

    /// An immutable snapshot of everything seen so far. `in_flight` is
    /// supplied by the server (the accumulator cannot derive it: queued
    /// submissions have been counted but not resolved).
    pub fn snapshot(&self, elapsed_secs: f64, in_flight: u64) -> MetricsSnapshot {
        let done = self.total.committed + self.total.rejected + self.total.shed;
        MetricsSnapshot {
            elapsed_secs,
            submitted: self.total.submitted,
            committed: self.total.committed,
            rejected: self.total.rejected,
            missed: self.total.missed,
            shed: self.total.shed,
            poisoned: self.poisoned,
            in_flight,
            throughput_tps: if elapsed_secs > 0.0 {
                done as f64 / elapsed_secs
            } else {
                0.0
            },
            miss_percent: percent(self.total.missed, self.total.committed),
            mean_ms: self.total_hist.mean(),
            p50_ms: self.total_hist.quantile(0.50),
            p95_ms: self.total_hist.quantile(0.95),
            p99_ms: self.total_hist.quantile(0.99),
            max_ms: self.total_hist.max(),
            window: self.last_window.clone(),
        }
    }

    /// Every completed window so far, in order. The chaos harness reads
    /// this to compare *windowed* miss ratios across admission policies;
    /// for virtual serving the roll points (and therefore this history)
    /// are deterministic.
    pub fn windows(&self) -> &[WindowSnapshot] {
        &self.history
    }
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// One completed sampling window, as published to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// 0-based window ordinal.
    pub index: u64,
    /// Terminations (commits + rejections) per wall second within the
    /// window.
    pub throughput_tps: f64,
    /// Deadline misses as a percentage of the window's commits.
    pub miss_percent: f64,
    /// Median response, wall ms.
    pub p50_ms: f64,
    /// 95th-percentile response, wall ms.
    pub p95_ms: f64,
    /// 99th-percentile response, wall ms.
    pub p99_ms: f64,
}

/// Cumulative serving metrics at one instant, plus the last completed
/// window. Everything a dashboard needs; see `docs/SERVING.md` for the
/// field reference.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall seconds since the server started (virtual serving: sim
    /// seconds, since the clock is transparent there).
    pub elapsed_secs: f64,
    /// Requests that entered the submission queue.
    pub submitted: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rejected by admission control.
    pub rejected: u64,
    /// Commits that happened after their deadline.
    pub missed: u64,
    /// Requests dropped by deadline-aware load shedding at dequeue.
    pub shed: u64,
    /// Requests lost to engine crashes (their tickets resolved to
    /// [`crate::Outcome::Poisoned`]).
    pub poisoned: u64,
    /// Submitted but not yet terminated.
    pub in_flight: u64,
    /// Terminations per wall second since start.
    pub throughput_tps: f64,
    /// `missed / committed`, as a percentage.
    pub miss_percent: f64,
    /// Mean response, wall ms (exact).
    pub mean_ms: f64,
    /// Median response, wall ms (±1% bucketing).
    pub p50_ms: f64,
    /// 95th-percentile response, wall ms (±1% bucketing).
    pub p95_ms: f64,
    /// 99th-percentile response, wall ms (±1% bucketing).
    pub p99_ms: f64,
    /// Largest response seen, wall ms (exact).
    pub max_ms: f64,
    /// The last completed sampling window, if any.
    pub window: Option<WindowSnapshot>,
}

impl MetricsSnapshot {
    /// Render as a self-contained JSON object (no external dependencies;
    /// all numbers finite).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        s.push_str(&format!("\"elapsed_secs\":{:.3},", self.elapsed_secs));
        s.push_str(&format!("\"submitted\":{},", self.submitted));
        s.push_str(&format!("\"committed\":{},", self.committed));
        s.push_str(&format!("\"rejected\":{},", self.rejected));
        s.push_str(&format!("\"missed\":{},", self.missed));
        s.push_str(&format!("\"shed\":{},", self.shed));
        s.push_str(&format!("\"poisoned\":{},", self.poisoned));
        s.push_str(&format!("\"in_flight\":{},", self.in_flight));
        s.push_str(&format!("\"throughput_tps\":{:.3},", self.throughput_tps));
        s.push_str(&format!("\"miss_percent\":{:.4},", self.miss_percent));
        s.push_str(&format!("\"mean_ms\":{:.4},", self.mean_ms));
        s.push_str(&format!("\"p50_ms\":{:.4},", self.p50_ms));
        s.push_str(&format!("\"p95_ms\":{:.4},", self.p95_ms));
        s.push_str(&format!("\"p99_ms\":{:.4},", self.p99_ms));
        s.push_str(&format!("\"max_ms\":{:.4},", self.max_ms));
        match &self.window {
            Some(w) => s.push_str(&format!(
                "\"window\":{{\"index\":{},\"throughput_tps\":{:.3},\"miss_percent\":{:.4},\
                 \"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4}}}",
                w.index, w.throughput_tps, w.miss_percent, w.p50_ms, w.p95_ms, w.p99_ms
            )),
            None => s.push_str("\"window\":null"),
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_and_totals_accumulate() {
        let mut m = LiveMetrics::new(1.0);
        for i in 0..10 {
            m.on_submit();
            m.on_commit(1.0 + i as f64, i % 2 == 0, 0.5);
        }
        assert!(m.last_window.is_none(), "first window still open");
        assert!(m.maybe_roll(1.2), "window closes once elapsed passes it");
        let w = m.last_window.clone().unwrap();
        assert_eq!(w.index, 0);
        assert!((w.throughput_tps - 10.0 / 1.2).abs() < 1e-9);
        assert!((w.miss_percent - 50.0).abs() < 1e-9);

        m.on_submit();
        m.on_commit(100.0, false, 1.5);
        let snap = m.snapshot(1.5, 0);
        assert_eq!(snap.submitted, 11);
        assert_eq!(snap.committed, 11);
        assert_eq!(snap.missed, 5);
        assert_eq!(snap.window.as_ref().unwrap().index, 0, "window 1 open");
        assert!(snap.max_ms >= 100.0);
    }

    #[test]
    fn rejections_counted_separately() {
        let mut m = LiveMetrics::new(10.0);
        m.on_submit();
        m.on_reject(0.1);
        let s = m.snapshot(0.1, 0);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.committed, 0);
        assert_eq!(s.miss_percent, 0.0, "no commits, no miss ratio");
    }

    #[test]
    fn sheds_and_poisons_counted() {
        let mut m = LiveMetrics::new(1.0);
        m.on_submit();
        m.on_submit();
        m.on_shed(0.1);
        m.on_poisoned(1);
        let s = m.snapshot(0.2, 0);
        assert_eq!(s.shed, 1);
        assert_eq!(s.poisoned, 1);
        assert_eq!(s.committed, 0);
        assert!(m.maybe_roll(1.5), "sheds keep the window live");
        let w = m.last_window.clone().unwrap();
        assert!(w.throughput_tps > 0.0, "a shed is a termination");
    }

    #[test]
    fn idle_gap_spanning_windows_rolls_once_with_diluted_throughput() {
        // A roll after a multi-window idle gap closes ONE window spanning
        // the whole gap (windows are event-driven, not timer-driven):
        // the span in the denominator dilutes the throughput, and the
        // next window starts at the roll point, not on the original
        // 1-second grid.
        let mut m = LiveMetrics::new(1.0);
        m.on_submit();
        m.on_commit(2.0, false, 0.5);
        assert!(m.maybe_roll(5.0), "gap closes the open window");
        let w = m.last_window.clone().unwrap();
        assert_eq!(w.index, 0);
        assert!((w.throughput_tps - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(m.windows().len(), 1, "one window for the whole gap");

        // The following window starts at 5.0: activity at 5.5 does not
        // roll, activity at 6.1 does.
        m.on_commit(2.0, true, 5.5);
        assert_eq!(m.windows().len(), 1);
        m.on_commit(2.0, false, 6.1);
        assert_eq!(m.windows().len(), 2);
        let w = m.last_window.clone().unwrap();
        assert_eq!(w.index, 1);
        assert!((w.miss_percent - 50.0).abs() < 1e-9);
        assert_eq!(m.windows()[1], w, "history records every closed window");
    }

    #[test]
    fn json_is_well_formed() {
        let mut m = LiveMetrics::new(0.5);
        m.on_submit();
        m.on_commit(2.0, true, 0.6);
        m.maybe_roll(0.7);
        let json = m.snapshot(0.7, 3).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "elapsed_secs",
            "submitted",
            "committed",
            "rejected",
            "missed",
            "shed",
            "poisoned",
            "in_flight",
            "throughput_tps",
            "miss_percent",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
            "window",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        assert!(json.contains("\"in_flight\":3"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }
}
