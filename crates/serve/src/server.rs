//! The in-process transaction server: concurrent submitters, a bounded
//! queue, one engine thread.
//!
//! # Architecture
//!
//! ```text
//!  client threads ──submit()──▶ bounded queue ──▶ engine thread
//!       ▲                                          │  StepEngine
//!       └────────── Ticket::wait() ◀── outcomes ◀──┘  + LiveMetrics
//! ```
//!
//! A [`Server`] owns one engine thread that drives a
//! [`rtx_rtdb::StepEngine`] — the exact event machinery of the batch
//! simulator, stepped incrementally. Any number of client threads submit
//! [`TxnRequest`]s through a bounded queue; each submission returns a
//! [`Ticket`] that resolves to the transaction's terminal [`Outcome`]
//! (committed, with deadline met or missed, or rejected by admission
//! control — the same front-door feasibility test batch runs use).
//!
//! # Clock modes
//!
//! * **Virtual** ([`ClockMode::Virtual`]): deterministic replay. Arrival
//!   stamps come from the requests; the engine processes an arrival only
//!   once its successor is queued (or the stream is closed), which pins
//!   the event-sequence order to the batch simulator's — same trace in,
//!   bit-identical [`RunSummary`] out.
//! * **Wall** ([`ClockMode::Wall`]): live serving. Arrivals are stamped
//!   with scaled real time, events fire only once the wall clock reaches
//!   them, and latency percentiles are reported in real milliseconds.
//!   Throughput and timing are machine-dependent — benchmarked, never
//!   byte-gated.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rtx_rtdb::{CompletionKind, Policy, RunError, RunSummary, SimConfig, StepEngine};
use rtx_sim::{Clock, SimTime};

use crate::metrics::{LiveMetrics, MetricsSnapshot};
use crate::request::{Outcome, TxnRequest};

/// Which time regime the server runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Deterministic replay: request arrival stamps are honoured
    /// verbatim and the run is bit-identical to the batch simulator.
    Virtual,
    /// Live serving against real time, scaled: `scale` sim microseconds
    /// pass per wall microsecond (`1.0` = real time).
    Wall {
        /// Sim microseconds per wall microsecond (`> 0`).
        scale: f64,
    },
}

/// Serving-layer knobs (the engine's own knobs live in [`SimConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Time regime.
    pub clock: ClockMode,
    /// Bounded submission-queue capacity; [`Server::submit`] blocks when
    /// it is full (back-pressure), [`Server::try_submit`] returns the
    /// request back.
    pub queue_capacity: usize,
    /// Metrics sampling-window length in wall seconds (sim seconds for
    /// virtual serving).
    pub window_secs: f64,
    /// Wall-mode intake throttle: the engine stops draining the
    /// submission queue while it already holds this many unterminated
    /// transactions, so a sustained overload fills the bounded queue and
    /// blocks submitters (real back-pressure) instead of piling an
    /// unbounded active set into the scheduler. Arrivals held at the
    /// door are stamped when they actually enter. Virtual serving
    /// ignores it — the deterministic replay gate already paces intake.
    pub max_in_engine: usize,
}

impl ServeConfig {
    /// Deterministic virtual-clock serving; 1-second windows, 1024-deep
    /// queue.
    pub fn virtual_mode() -> Self {
        ServeConfig {
            clock: ClockMode::Virtual,
            queue_capacity: 1024,
            window_secs: 1.0,
            max_in_engine: usize::MAX,
        }
    }

    /// Wall-clock serving at `scale` sim microseconds per wall
    /// microsecond; 1-second windows, 1024-deep queue, engine population
    /// capped at 1024.
    pub fn wall(scale: f64) -> Self {
        ServeConfig {
            clock: ClockMode::Wall { scale },
            queue_capacity: 1024,
            window_secs: 1.0,
            max_in_engine: 1024,
        }
    }
}

/// Why a submission was not accepted into the queue.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity (only [`Server::try_submit`] reports
    /// this; [`Server::submit`] blocks instead). The request is handed
    /// back.
    Full(TxnRequest),
    /// The server is shutting down; no further submissions are accepted.
    /// The request is handed back.
    Closed(TxnRequest),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "submission queue full"),
            SubmitError::Closed(_) => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to one submitted request; resolves to its terminal
/// [`Outcome`] when the engine commits or rejects the transaction.
#[derive(Debug, Clone)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the transaction terminates and return its outcome.
    pub fn wait(&self) -> Outcome {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.unwrap()
    }

    /// The outcome, if the transaction has already terminated.
    pub fn try_get(&self) -> Option<Outcome> {
        *self.state.slot.lock().unwrap()
    }
}

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Outcome>>,
    cv: Condvar,
}

struct QueueState {
    pending: VecDeque<(TxnRequest, Arc<TicketState>)>,
    closed: bool,
}

struct Shared {
    q: Mutex<QueueState>,
    /// Signalled on submit/close; the engine thread waits here when idle.
    work_cv: Condvar,
    /// Signalled when the engine drains the queue; blocked submitters
    /// wait here.
    space_cv: Condvar,
    capacity: usize,
    latest: Mutex<MetricsSnapshot>,
}

/// Everything a finished serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The engine's batch-style summary — for virtual replay, bit-equal
    /// to what [`rtx_rtdb::run_simulation_from`] returns on the same
    /// trace.
    pub summary: RunSummary,
    /// The final cumulative metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// An in-process transaction server. See the [module docs](self) for the
/// architecture and clock-mode semantics.
pub struct Server {
    shared: Arc<Shared>,
    engine: Option<JoinHandle<(RunSummary, MetricsSnapshot)>>,
}

impl Server {
    /// Start a server: spawns the engine thread and returns immediately.
    ///
    /// The engine runs `policy` over the resource model in `cfg` (with
    /// `cfg.system.admission` applied at the front door, when set);
    /// `cfg.run.num_transactions` is ignored — the run ends at
    /// [`Server::shutdown`].
    ///
    /// # Errors
    /// Returns `cfg`'s validation error, if any, without spawning.
    pub fn start(
        serve: ServeConfig,
        cfg: Arc<SimConfig>,
        policy: Arc<dyn Policy + Send + Sync>,
    ) -> Result<Server, RunError> {
        cfg.validate().map_err(RunError::from)?;
        assert!(serve.queue_capacity > 0, "queue capacity must be positive");
        assert!(serve.max_in_engine > 0, "engine cap must be positive");
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity: serve.queue_capacity,
            latest: Mutex::new(LiveMetrics::new(serve.window_secs).snapshot(0.0, 0)),
        });
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rtx-serve-engine".into())
                .spawn(move || engine_main(shared, cfg, policy, serve))
                .expect("spawn engine thread")
        };
        Ok(Server {
            shared,
            engine: Some(engine),
        })
    }

    /// Submit a request, blocking while the queue is full
    /// (back-pressure). Returns a [`Ticket`] that resolves when the
    /// transaction terminates.
    ///
    /// # Errors
    /// [`SubmitError::Closed`] once shutdown has begun (the request is
    /// handed back; it was not enqueued).
    ///
    /// # Examples
    ///
    /// Serve a two-transaction trace deterministically and wait for the
    /// outcomes:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use rtx_core::Cca;
    /// use rtx_preanalysis::{ItemId, TypeId};
    /// use rtx_rtdb::SimConfig;
    /// use rtx_serve::{ServeConfig, Server, TxnRequest};
    /// use rtx_sim::{SimDuration, SimTime};
    ///
    /// let server = Server::start(
    ///     ServeConfig::virtual_mode(),
    ///     Arc::new(SimConfig::mm_base()),
    ///     Arc::new(Cca::base()),
    /// )
    /// .unwrap();
    ///
    /// let tickets: Vec<_> = (0..2)
    ///     .map(|i| {
    ///         server
    ///             .submit(TxnRequest {
    ///                 ty: TypeId(0),
    ///                 items: vec![ItemId(i), ItemId(i + 10)],
    ///                 update_time: SimDuration::from_ms(2.0),
    ///                 slack: 2.0,
    ///                 arrival: SimTime::from_ms(10.0 * f64::from(i)),
    ///             })
    ///             .unwrap()
    ///     })
    ///     .collect();
    ///
    /// let report = server.shutdown();
    /// assert!(tickets.iter().all(|t| t.wait().accepted()));
    /// assert_eq!(report.summary.committed, 2);
    /// ```
    pub fn submit(&self, req: TxnRequest) -> Result<Ticket, SubmitError> {
        let mut q = self.shared.q.lock().unwrap();
        while !q.closed && q.pending.len() >= self.shared.capacity {
            q = self.shared.space_cv.wait(q).unwrap();
        }
        self.enqueue(q, req)
    }

    /// Submit without blocking.
    ///
    /// # Errors
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] once shutdown has begun; either way the
    /// request is handed back unenqueued.
    pub fn try_submit(&self, req: TxnRequest) -> Result<Ticket, SubmitError> {
        let q = self.shared.q.lock().unwrap();
        if !q.closed && q.pending.len() >= self.shared.capacity {
            return Err(SubmitError::Full(req));
        }
        self.enqueue(q, req)
    }

    fn enqueue(
        &self,
        mut q: std::sync::MutexGuard<'_, QueueState>,
        req: TxnRequest,
    ) -> Result<Ticket, SubmitError> {
        if q.closed {
            return Err(SubmitError::Closed(req));
        }
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        q.pending.push_back((req, Arc::clone(&state)));
        drop(q);
        self.shared.work_cv.notify_all();
        Ok(Ticket { state })
    }

    /// The latest published metrics snapshot (refreshed by the engine
    /// thread as it works; cheap to call from any thread).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.latest.lock().unwrap().clone()
    }

    /// Graceful shutdown: close the queue to new submissions, let the
    /// engine drain every queued and in-flight transaction to a terminal
    /// state (flat-out — the drain does not wait for the wall clock),
    /// and return the final report. All outstanding [`Ticket`]s are
    /// resolved before this returns.
    pub fn shutdown(mut self) -> ServeReport {
        self.close();
        let (summary, metrics) = self
            .engine
            .take()
            .expect("engine joined once")
            .join()
            .expect("engine thread panicked");
        ServeReport { summary, metrics }
    }

    fn close(&self) {
        let mut q = self.shared.q.lock().unwrap();
        q.closed = true;
        drop(q);
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still drains gracefully
    /// (the report is discarded).
    fn drop(&mut self) {
        if let Some(h) = self.engine.take() {
            self.close();
            let _ = h.join();
        }
    }
}

/// Seconds elapsed under the serving clock: real seconds for wall mode,
/// simulated seconds for virtual mode.
fn elapsed_secs(clock: &Clock, now: SimTime) -> f64 {
    if clock.is_virtual() {
        now.since(SimTime::ZERO).as_secs()
    } else {
        clock.elapsed_wall_secs()
    }
}

/// Max calendar events processed per outer-loop turn, so queue draining,
/// ticket resolution and metrics publication stay responsive under load.
const EVENT_BURST: u32 = 4096;

fn engine_main(
    shared: Arc<Shared>,
    cfg: Arc<SimConfig>,
    policy: Arc<dyn Policy + Send + Sync>,
    serve: ServeConfig,
) -> (RunSummary, MetricsSnapshot) {
    let clock = match serve.clock {
        ClockMode::Virtual => Clock::virtual_clock(),
        ClockMode::Wall { scale } => Clock::wall(scale),
    };
    let mut eng = StepEngine::new(&cfg, &*policy).expect("config validated in Server::start");
    let mut tickets: HashMap<u32, Arc<TicketState>> = HashMap::new();
    let mut metrics = LiveMetrics::new(serve.window_secs);
    let mut last_arrival = SimTime::ZERO;

    loop {
        // 1. Drain the submission queue into the engine, stamping
        //    arrivals. Virtual mode honours the requested stamps (the
        //    non-decreasing clamp is a no-op on a well-formed trace);
        //    wall mode stamps scaled real time and throttles intake to
        //    `max_in_engine` unterminated transactions — the overflow
        //    stays in the bounded queue, where it blocks submitters.
        let room = if clock.is_virtual() {
            usize::MAX
        } else {
            serve.max_in_engine.saturating_sub(eng.in_flight() as usize)
        };
        let (batch, closed, throttled) = {
            let mut q = shared.q.lock().unwrap();
            let take = q.pending.len().min(room);
            let batch: Vec<_> = q.pending.drain(..take).collect();
            (batch, q.closed, !q.pending.is_empty())
        };
        if !batch.is_empty() {
            shared.space_cv.notify_all();
        }
        for (req, state) in batch {
            let id = eng.next_txn_id();
            let arrival = if clock.is_virtual() {
                req.arrival.max(eng.now()).max(last_arrival)
            } else {
                clock.now(eng.now()).max(last_arrival)
            };
            last_arrival = arrival;
            tickets.insert(id.0, state);
            metrics.on_submit();
            eng.submit(req.into_transaction(id, arrival));
        }

        // 2. Process due events. The virtual-mode gate (successor queued
        //    or stream closed) is what makes replay bit-identical — see
        //    StepEngine::queued.
        let mut processed = 0u32;
        while processed < EVENT_BURST {
            if clock.is_virtual() && eng.queued() == 0 && !closed {
                break;
            }
            match eng.next_event_time() {
                // Once the stream is closed we drain flat-out: waiting for
                // the wall clock would only delay shutdown.
                Some(t) if closed || clock.due(t) => {
                    eng.step();
                    processed += 1;
                }
                Some(_) => break, // wall clock hasn't caught up yet
                None => {
                    // Calendar empty: either wedged lock-waiters (step
                    // resolves, as the batch loop would) or nothing at
                    // all to do.
                    if !eng.step() {
                        break;
                    }
                    processed += 1;
                }
            }
        }

        // 3. Resolve tickets and feed the live metrics.
        let now = eng.now();
        let elapsed = elapsed_secs(&clock, now);
        for c in eng.drain_completions() {
            let wall_ms = clock.to_wall_ms(c.response());
            match c.kind {
                CompletionKind::Committed { missed } => metrics.on_commit(wall_ms, missed, elapsed),
                CompletionKind::Rejected => metrics.on_reject(elapsed),
            }
            if let Some(state) = tickets.remove(&c.id.0) {
                *state.slot.lock().unwrap() = Some(Outcome {
                    completion: c,
                    response_wall_ms: wall_ms,
                });
                state.cv.notify_all();
            }
        }
        metrics.maybe_roll(elapsed);
        *shared.latest.lock().unwrap() = metrics.snapshot(elapsed, eng.in_flight());

        // 4. Done? (Queue emptiness is re-checked under the lock in the
        //    wait below; anything enqueued before `closed` was set is
        //    still drained first.)
        if closed && eng.in_flight() == 0 {
            let q = shared.q.lock().unwrap();
            if q.pending.is_empty() {
                break;
            }
            continue;
        }

        // 5. Idle? Wait for submissions / close / the wall clock. A
        //    throttled intake also waits here: the pending requests it
        //    left queued cannot enter until an event terminates
        //    something, so only the clock can make progress.
        if processed == 0 {
            let wait = eng.next_event_time().and_then(|t| clock.wall_wait(t));
            let q = shared.q.lock().unwrap();
            if (q.pending.is_empty() || throttled) && !q.closed {
                match wait {
                    // Wall clock: sleep until the next event is due (capped
                    // so queue wake-ups are never missed for long).
                    Some(d) if d > Duration::ZERO => {
                        let cap = d.min(Duration::from_millis(100));
                        let _ = shared.work_cv.wait_timeout(q, cap).unwrap();
                    }
                    // Due now (raced the clock) — loop again.
                    Some(_) => {}
                    // Virtual clock (or empty calendar): only new work or
                    // close can unblock us.
                    None => {
                        drop(shared.work_cv.wait(q).unwrap());
                    }
                }
            }
        }
    }

    let final_snapshot = {
        let now = eng.now();
        metrics.snapshot(elapsed_secs(&clock, now), 0)
    };
    *shared.latest.lock().unwrap() = final_snapshot.clone();
    (eng.finish(), final_snapshot)
}
