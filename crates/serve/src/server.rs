//! The in-process transaction server: concurrent submitters, a bounded
//! queue, one supervised engine thread.
//!
//! # Architecture
//!
//! ```text
//!  client threads ──submit()──▶ bounded queue ──▶ engine thread
//!       ▲                                          │  supervisor
//!       │                                          │   └ StepEngine
//!       └────────── Ticket::wait() ◀── outcomes ◀──┘     + LiveMetrics
//! ```
//!
//! A [`Server`] owns one engine thread that drives a
//! [`rtx_rtdb::StepEngine`] — the exact event machinery of the batch
//! simulator, stepped incrementally. Any number of client threads submit
//! [`TxnRequest`]s through a bounded queue; each submission returns a
//! [`Ticket`] that resolves to the transaction's terminal [`Outcome`]
//! (committed with deadline met or missed, rejected by admission
//! control, shed at dequeue, or poisoned by an engine crash).
//!
//! # Clock modes
//!
//! * **Virtual** ([`ClockMode::Virtual`]): deterministic replay. Arrival
//!   stamps come from the requests; the engine processes an arrival only
//!   once its successor is queued (or the stream is closed), which pins
//!   the event-sequence order to the batch simulator's — same trace in,
//!   bit-identical [`RunSummary`] out.
//! * **Wall** ([`ClockMode::Wall`]): live serving. Arrivals are stamped
//!   with scaled real time, events fire only once the wall clock reaches
//!   them, and latency percentiles are reported in real milliseconds.
//!   Throughput and timing are machine-dependent — benchmarked, never
//!   byte-gated.
//!
//! # Overload and failure semantics
//!
//! The serving layer degrades gracefully rather than falling over:
//!
//! * **Back-pressure** — the bounded queue blocks [`Server::submit`]
//!   when full; wall mode additionally throttles intake at
//!   [`ServeConfig::max_in_engine`] unterminated transactions.
//! * **Admission control** — `cfg.system.admission` applies the paper's
//!   feasibility test at the front door; with
//!   [`rtx_rtdb::AdmissionConfig::Adaptive`] the safety factor tracks
//!   the engine's windowed miss ratio, tightening under overload and
//!   relaxing after the burst passes.
//! * **Load shedding** — with [`ServeConfig::shed_infeasible`] on, a
//!   request whose *intended* deadline is already unreachable when it
//!   leaves the queue is dropped immediately ([`Outcome::Shed`]) instead
//!   of wasting engine time on a guaranteed miss.
//! * **Supervision** — the engine runs under `catch_unwind`. On a panic
//!   the supervisor resolves every in-flight [`Ticket`] to
//!   [`Outcome::Poisoned`] (no submitter ever hangs on a crashed
//!   engine), then restarts a fresh engine up to
//!   [`ServeConfig::max_restarts`] times; queued-but-not-yet-admitted
//!   requests survive into the next incarnation. [`ServeReport::crashes`]
//!   counts the panics.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rtx_rtdb::{CompletionKind, ConfigError, Policy, RunError, RunSummary, SimConfig, StepEngine};
use rtx_sim::{Clock, SimDuration, SimTime};

use crate::metrics::{LiveMetrics, MetricsSnapshot, WindowSnapshot};
use crate::request::{Outcome, TxnRequest};

/// Which time regime the server runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Deterministic replay: request arrival stamps are honoured
    /// verbatim and the run is bit-identical to the batch simulator.
    Virtual,
    /// Live serving against real time, scaled: `scale` sim microseconds
    /// pass per wall microsecond (`1.0` = real time).
    Wall {
        /// Sim microseconds per wall microsecond (`> 0`).
        scale: f64,
    },
}

/// Serving-layer knobs (the engine's own knobs live in [`SimConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Time regime.
    pub clock: ClockMode,
    /// Bounded submission-queue capacity; [`Server::submit`] blocks when
    /// it is full (back-pressure), [`Server::try_submit`] returns the
    /// request back.
    pub queue_capacity: usize,
    /// Metrics sampling-window length in wall seconds (sim seconds for
    /// virtual serving).
    pub window_secs: f64,
    /// Wall-mode intake throttle: the engine stops draining the
    /// submission queue while it already holds this many unterminated
    /// transactions, so a sustained overload fills the bounded queue and
    /// blocks submitters (real back-pressure) instead of piling an
    /// unbounded active set into the scheduler. Arrivals held at the
    /// door are stamped when they actually enter. Virtual serving
    /// ignores it — the deterministic replay gate already paces intake.
    pub max_in_engine: usize,
    /// Deadline-aware load shedding: drop a request at dequeue when its
    /// *intended* deadline ([`TxnRequest::deadline_from`] of the
    /// requested arrival) can no longer be met even on an idle engine
    /// (`stamp + resource_time > intended deadline`). The dropped
    /// request resolves to [`Outcome::Shed`] and is counted in
    /// [`MetricsSnapshot::shed`]. Bites in wall mode, where queueing
    /// delays the stamp past the intended arrival; a well-formed
    /// virtual-mode trace is never shed (its stamps equal its intended
    /// arrivals).
    pub shed_infeasible: bool,
    /// Fault-injection hook for the chaos harness: panic the engine
    /// thread once its `N`th `Arrival` event has fired (a deterministic
    /// event-sequence position under the virtual clock). Applies to the
    /// first engine incarnation only — restarted engines run clean.
    pub panic_at_arrival: Option<u64>,
    /// How many times the supervisor restarts the engine after a crash
    /// before giving up. Past the limit the server closes: in-flight
    /// *and* still-queued requests resolve to [`Outcome::Poisoned`] and
    /// further submissions return [`SubmitError::Closed`].
    pub max_restarts: u32,
}

impl ServeConfig {
    /// Deterministic virtual-clock serving; 1-second windows, 1024-deep
    /// queue, no shedding, no restarts.
    pub fn virtual_mode() -> Self {
        ServeConfig {
            clock: ClockMode::Virtual,
            queue_capacity: 1024,
            window_secs: 1.0,
            max_in_engine: usize::MAX,
            shed_infeasible: false,
            panic_at_arrival: None,
            max_restarts: 0,
        }
    }

    /// Wall-clock serving at `scale` sim microseconds per wall
    /// microsecond; 1-second windows, 1024-deep queue, engine population
    /// capped at 1024, no shedding, no restarts.
    pub fn wall(scale: f64) -> Self {
        ServeConfig {
            clock: ClockMode::Wall { scale },
            queue_capacity: 1024,
            window_secs: 1.0,
            max_in_engine: 1024,
            shed_infeasible: false,
            panic_at_arrival: None,
            max_restarts: 0,
        }
    }

    /// Check the serving knobs, mirroring what
    /// [`rtx_rtdb::SimConfig::validate`] does for the engine's.
    ///
    /// # Errors
    /// [`ConfigError::BadServe`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::BadServe(
                "queue_capacity must be positive".into(),
            ));
        }
        if self.max_in_engine == 0 {
            return Err(ConfigError::BadServe(
                "max_in_engine must be positive".into(),
            ));
        }
        if !self.window_secs.is_finite() || self.window_secs <= 0.0 {
            return Err(ConfigError::BadServe(format!(
                "window_secs must be positive and finite (got {})",
                self.window_secs
            )));
        }
        if let ClockMode::Wall { scale } = self.clock {
            if !scale.is_finite() || scale <= 0.0 {
                return Err(ConfigError::BadServe(format!(
                    "wall clock scale must be positive and finite (got {scale})"
                )));
            }
        }
        Ok(())
    }
}

/// Why a submission was not accepted into the queue.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity (only [`Server::try_submit`] reports
    /// this; [`Server::submit`] blocks instead). The request is handed
    /// back.
    Full(TxnRequest),
    /// The server is shutting down; no further submissions are accepted.
    /// The request is handed back.
    Closed(TxnRequest),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "submission queue full"),
            SubmitError::Closed(_) => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to one submitted request; resolves to its terminal
/// [`Outcome`] when the engine commits, rejects, sheds or loses the
/// transaction. Waiting never hangs on a crashed engine: the supervisor
/// resolves every outstanding ticket (to [`Outcome::Poisoned`]) before
/// restarting or giving up, and the waits below shrug off poisoned
/// mutexes from panicking peers.
#[derive(Debug, Clone)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the transaction terminates and return its outcome.
    pub fn wait(&self) -> Outcome {
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while slot.is_none() {
            slot = self
                .state
                .cv
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
        slot.unwrap()
    }

    /// Block until the transaction terminates or `timeout` elapses;
    /// `None` on timeout (the ticket remains valid — a later
    /// [`Ticket::wait`] still resolves).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while slot.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self
                .state
                .cv
                .wait_timeout(slot, left)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
        Some(slot.unwrap())
    }

    /// The outcome, if the transaction has already terminated.
    pub fn try_get(&self) -> Option<Outcome> {
        *self
            .state
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Outcome>>,
    cv: Condvar,
}

/// Publish `outcome` into a ticket and wake its waiters.
fn resolve_ticket(state: &TicketState, outcome: Outcome) {
    *state.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
    state.cv.notify_all();
}

struct QueueState {
    pending: VecDeque<(TxnRequest, Arc<TicketState>)>,
    closed: bool,
}

struct Shared {
    q: Mutex<QueueState>,
    /// Signalled on submit/close; the engine thread waits here when idle.
    work_cv: Condvar,
    /// Signalled when the engine drains the queue; blocked submitters
    /// wait here.
    space_cv: Condvar,
    capacity: usize,
    latest: Mutex<MetricsSnapshot>,
}

impl Shared {
    fn lock_q(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.q.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Everything a finished serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The engine's batch-style summary — for virtual replay, bit-equal
    /// to what [`rtx_rtdb::run_simulation_from`] returns on the same
    /// trace. After engine crashes it covers the *last* incarnation only
    /// (earlier incarnations' state died with them).
    pub summary: RunSummary,
    /// The final cumulative metrics snapshot (survives crashes — the
    /// supervisor owns it).
    pub metrics: MetricsSnapshot,
    /// Engine panics caught by the supervisor over the server's life.
    pub crashes: u32,
    /// Every completed metrics window, in order (deterministic for
    /// virtual serving). The chaos harness compares windowed miss ratios
    /// across admission policies from this.
    pub windows: Vec<WindowSnapshot>,
}

/// What the supervisor thread hands back at join time: the batch-style
/// summary, the final metrics, the crash count, and the window history.
type EngineExit = (RunSummary, MetricsSnapshot, u32, Vec<WindowSnapshot>);

/// An in-process transaction server. See the [module docs](self) for the
/// architecture, clock-mode and failure semantics.
pub struct Server {
    shared: Arc<Shared>,
    engine: Option<JoinHandle<EngineExit>>,
}

impl Server {
    /// Start a server: spawns the engine thread and returns immediately.
    ///
    /// The engine runs `policy` over the resource model in `cfg` (with
    /// `cfg.system.admission` applied at the front door, when set);
    /// `cfg.run.num_transactions` is ignored — the run ends at
    /// [`Server::shutdown`].
    ///
    /// # Errors
    /// Returns `cfg`'s validation error, or
    /// [`ConfigError::BadServe`] for a malformed [`ServeConfig`],
    /// without spawning.
    pub fn start(
        serve: ServeConfig,
        cfg: Arc<SimConfig>,
        policy: Arc<dyn Policy + Send + Sync>,
    ) -> Result<Server, RunError> {
        cfg.validate().map_err(RunError::from)?;
        serve.validate().map_err(RunError::from)?;
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity: serve.queue_capacity,
            latest: Mutex::new(LiveMetrics::new(serve.window_secs).snapshot(0.0, 0)),
        });
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rtx-serve-engine".into())
                .spawn(move || engine_main(shared, cfg, policy, serve))
                .expect("spawn engine thread")
        };
        Ok(Server {
            shared,
            engine: Some(engine),
        })
    }

    /// Submit a request, blocking while the queue is full
    /// (back-pressure). Returns a [`Ticket`] that resolves when the
    /// transaction terminates.
    ///
    /// # Errors
    /// [`SubmitError::Closed`] once shutdown has begun (the request is
    /// handed back; it was not enqueued).
    ///
    /// # Examples
    ///
    /// Serve a two-transaction trace deterministically and wait for the
    /// outcomes:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use rtx_core::Cca;
    /// use rtx_preanalysis::{ItemId, TypeId};
    /// use rtx_rtdb::SimConfig;
    /// use rtx_serve::{ServeConfig, Server, TxnRequest};
    /// use rtx_sim::{SimDuration, SimTime};
    ///
    /// let server = Server::start(
    ///     ServeConfig::virtual_mode(),
    ///     Arc::new(SimConfig::mm_base()),
    ///     Arc::new(Cca::base()),
    /// )
    /// .unwrap();
    ///
    /// let tickets: Vec<_> = (0..2)
    ///     .map(|i| {
    ///         server
    ///             .submit(TxnRequest {
    ///                 ty: TypeId(0),
    ///                 items: vec![ItemId(i), ItemId(i + 10)],
    ///                 update_time: SimDuration::from_ms(2.0),
    ///                 slack: 2.0,
    ///                 arrival: SimTime::from_ms(10.0 * f64::from(i)),
    ///                 io_pattern: vec![],
    ///             })
    ///             .unwrap()
    ///     })
    ///     .collect();
    ///
    /// let report = server.shutdown();
    /// assert!(tickets.iter().all(|t| t.wait().accepted()));
    /// assert_eq!(report.summary.committed, 2);
    /// ```
    pub fn submit(&self, req: TxnRequest) -> Result<Ticket, SubmitError> {
        let mut q = self.shared.lock_q();
        while !q.closed && q.pending.len() >= self.shared.capacity {
            q = self
                .shared
                .space_cv
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
        self.enqueue(q, req)
    }

    /// Submit without blocking.
    ///
    /// # Errors
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] once shutdown has begun; either way the
    /// request is handed back unenqueued.
    pub fn try_submit(&self, req: TxnRequest) -> Result<Ticket, SubmitError> {
        let q = self.shared.lock_q();
        if !q.closed && q.pending.len() >= self.shared.capacity {
            return Err(SubmitError::Full(req));
        }
        self.enqueue(q, req)
    }

    fn enqueue(
        &self,
        mut q: std::sync::MutexGuard<'_, QueueState>,
        req: TxnRequest,
    ) -> Result<Ticket, SubmitError> {
        if q.closed {
            return Err(SubmitError::Closed(req));
        }
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        q.pending.push_back((req, Arc::clone(&state)));
        drop(q);
        self.shared.work_cv.notify_all();
        Ok(Ticket { state })
    }

    /// The latest published metrics snapshot (refreshed by the engine
    /// thread as it works; cheap to call from any thread).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .latest
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Graceful shutdown: close the queue to new submissions, let the
    /// engine drain every queued and in-flight transaction to a terminal
    /// state (flat-out — the drain does not wait for the wall clock),
    /// and return the final report. All outstanding [`Ticket`]s are
    /// resolved before this returns — including tickets poisoned by
    /// engine crashes along the way.
    pub fn shutdown(mut self) -> ServeReport {
        self.close();
        let (summary, metrics, crashes, windows) = self
            .engine
            .take()
            .expect("engine joined once")
            .join()
            .expect("supervisor thread panicked");
        ServeReport {
            summary,
            metrics,
            crashes,
            windows,
        }
    }

    fn close(&self) {
        let mut q = self.shared.lock_q();
        q.closed = true;
        drop(q);
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
    }
}

impl Drop for Server {
    /// Dropping without [`Server::shutdown`] still drains gracefully
    /// (the report is discarded).
    fn drop(&mut self) {
        if let Some(h) = self.engine.take() {
            self.close();
            let _ = h.join();
        }
    }
}

/// Seconds elapsed under the serving clock: real seconds for wall mode,
/// simulated seconds for virtual mode.
fn elapsed_secs(clock: &Clock, now: SimTime) -> f64 {
    if clock.is_virtual() {
        now.since(SimTime::ZERO).as_secs()
    } else {
        clock.elapsed_wall_secs()
    }
}

/// Max calendar events processed per outer-loop turn, so queue draining,
/// ticket resolution and metrics publication stay responsive under load.
const EVENT_BURST: u32 = 4096;

/// The supervisor: runs engine incarnations under `catch_unwind`. Live
/// metrics, the ticket registry and the arrival-stamp clamp all live
/// here, *outside* the unwind boundary, so a crash loses only the engine
/// state — every in-flight ticket is resolved to [`Outcome::Poisoned`]
/// and (within [`ServeConfig::max_restarts`]) a fresh engine picks the
/// queue back up.
fn engine_main(
    shared: Arc<Shared>,
    cfg: Arc<SimConfig>,
    policy: Arc<dyn Policy + Send + Sync>,
    serve: ServeConfig,
) -> (RunSummary, MetricsSnapshot, u32, Vec<WindowSnapshot>) {
    let clock = match serve.clock {
        ClockMode::Virtual => Clock::virtual_clock(),
        ClockMode::Wall { scale } => Clock::wall(scale),
    };
    let mut metrics = LiveMetrics::new(serve.window_secs);
    let mut tickets: HashMap<u32, Arc<TicketState>> = HashMap::new();
    let mut last_arrival = SimTime::ZERO;
    let mut crashes = 0u32;
    let mut panic_at = serve.panic_at_arrival;

    let (summary, final_elapsed) = loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            serve_incarnation(
                &shared,
                &cfg,
                &*policy,
                &serve,
                &clock,
                &mut metrics,
                &mut tickets,
                &mut last_arrival,
                panic_at.take(),
            )
        }));
        match attempt {
            Ok(done) => break done,
            Err(_) => {
                crashes += 1;
                // Every ticket still registered was in flight inside the
                // crashed engine; its transaction state is gone. Resolve
                // them all so no submitter hangs on the condvar.
                let lost = tickets.len() as u64;
                for (_, state) in tickets.drain() {
                    resolve_ticket(&state, Outcome::Poisoned);
                }
                metrics.on_poisoned(lost);
                if crashes <= serve.max_restarts {
                    // Requests still in the shared queue were never
                    // admitted; the fresh incarnation drains them.
                    continue;
                }
                // Out of restarts: close the door and fail everything
                // still queued, then report with an empty last-engine
                // summary.
                let drained: Vec<_> = {
                    let mut q = shared.lock_q();
                    q.closed = true;
                    q.pending.drain(..).collect()
                };
                shared.work_cv.notify_all();
                shared.space_cv.notify_all();
                metrics.on_poisoned(drained.len() as u64);
                for (_req, state) in drained {
                    metrics.on_submit();
                    resolve_ticket(&state, Outcome::Poisoned);
                }
                let elapsed = shared
                    .latest
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .elapsed_secs;
                let summary = StepEngine::new(&cfg, &*policy)
                    .expect("config validated in Server::start")
                    .finish();
                break (summary, elapsed);
            }
        }
    };

    let final_snapshot = metrics.snapshot(final_elapsed, 0);
    *shared.latest.lock().unwrap_or_else(PoisonError::into_inner) = final_snapshot.clone();
    (summary, final_snapshot, crashes, metrics.windows().to_vec())
}

/// One engine incarnation: the serving loop proper, from a fresh
/// [`StepEngine`] to a drained shutdown. Returns the engine's batch
/// summary and the final elapsed-seconds reading. Panics propagate to
/// the supervisor in [`engine_main`].
#[allow(clippy::too_many_arguments)]
fn serve_incarnation(
    shared: &Shared,
    cfg: &SimConfig,
    policy: &(dyn Policy + Send + Sync),
    serve: &ServeConfig,
    clock: &Clock,
    metrics: &mut LiveMetrics,
    tickets: &mut HashMap<u32, Arc<TicketState>>,
    last_arrival: &mut SimTime,
    panic_at: Option<u64>,
) -> (RunSummary, f64) {
    let mut eng = StepEngine::new(cfg, policy).expect("config validated in Server::start");

    loop {
        // 1. Drain the submission queue into the engine, stamping
        //    arrivals. Virtual mode honours the requested stamps (the
        //    non-decreasing clamp is a no-op on a well-formed trace);
        //    wall mode stamps scaled real time and throttles intake to
        //    `max_in_engine` unterminated transactions — the overflow
        //    stays in the bounded queue, where it blocks submitters.
        let room = if clock.is_virtual() {
            usize::MAX
        } else {
            serve.max_in_engine.saturating_sub(eng.in_flight() as usize)
        };
        let (batch, closed, throttled) = {
            let mut q = shared.lock_q();
            let take = q.pending.len().min(room);
            let batch: Vec<_> = q.pending.drain(..take).collect();
            (batch, q.closed, !q.pending.is_empty())
        };
        if !batch.is_empty() {
            shared.space_cv.notify_all();
        }
        for (req, state) in batch {
            let arrival = if clock.is_virtual() {
                req.arrival.max(eng.now()).max(*last_arrival)
            } else {
                clock.now(eng.now()).max(*last_arrival)
            };
            *last_arrival = arrival;
            metrics.on_submit();
            // Deadline-aware shedding: a request that cannot meet its
            // intended deadline even uncontended is a guaranteed miss —
            // fail it now, cheaply, instead of inside the engine.
            if serve.shed_infeasible
                && arrival + req.resource_time() > req.deadline_from(req.arrival)
            {
                let queued_for = if arrival >= req.arrival {
                    arrival.since(req.arrival)
                } else {
                    SimDuration::ZERO
                };
                let at = if clock.is_virtual() {
                    arrival.since(SimTime::ZERO).as_secs()
                } else {
                    elapsed_secs(clock, eng.now())
                };
                metrics.on_shed(at);
                resolve_ticket(
                    &state,
                    Outcome::Shed {
                        response_wall_ms: clock.to_wall_ms(queued_for),
                    },
                );
                continue;
            }
            let id = eng.next_txn_id();
            tickets.insert(id.0, state);
            eng.submit(req.into_transaction(id, arrival));
        }

        // 2. Process due events. The virtual-mode gate (successor queued
        //    or stream closed) is what makes replay bit-identical — see
        //    StepEngine::queued.
        let mut processed = 0u32;
        while processed < EVENT_BURST {
            if clock.is_virtual() && eng.queued() == 0 && !closed {
                break;
            }
            match eng.next_event_time() {
                // Once the stream is closed we drain flat-out: waiting for
                // the wall clock would only delay shutdown.
                Some(t) if closed || clock.due(t) => {
                    eng.step();
                    processed += 1;
                    // Chaos hook: crash at a pinned event-sequence
                    // position (the Nth arrival), so supervised recovery
                    // is exercised at a reproducible point.
                    if panic_at.is_some_and(|n| eng.arrivals_fired() >= n) {
                        panic!(
                            "injected engine panic after {} arrivals",
                            eng.arrivals_fired()
                        );
                    }
                }
                Some(_) => break, // wall clock hasn't caught up yet
                None => {
                    // Calendar empty: either wedged lock-waiters (step
                    // resolves, as the batch loop would) or nothing at
                    // all to do.
                    if !eng.step() {
                        break;
                    }
                    processed += 1;
                }
            }
        }

        // 3. Resolve tickets and feed the live metrics. Virtual mode
        //    drives window rolls from each completion's *finish time* —
        //    a pure function of the event sequence — never from how much
        //    work this loop turn happened to batch, so the window
        //    history replays deterministically.
        let now = eng.now();
        let elapsed = elapsed_secs(clock, now);
        for c in eng.drain_completions() {
            let wall_ms = clock.to_wall_ms(c.response());
            let at = if clock.is_virtual() {
                c.finish.since(SimTime::ZERO).as_secs()
            } else {
                elapsed
            };
            match c.kind {
                CompletionKind::Committed { missed } => metrics.on_commit(wall_ms, missed, at),
                CompletionKind::Rejected => metrics.on_reject(at),
            }
            if let Some(state) = tickets.remove(&c.id.0) {
                resolve_ticket(
                    &state,
                    Outcome::Finished {
                        completion: c,
                        response_wall_ms: wall_ms,
                    },
                );
            }
        }
        if !clock.is_virtual() {
            metrics.maybe_roll(elapsed);
        }
        *shared.latest.lock().unwrap_or_else(PoisonError::into_inner) =
            metrics.snapshot(elapsed, eng.in_flight());

        // 4. Done? (Queue emptiness is re-checked under the lock in the
        //    wait below; anything enqueued before `closed` was set is
        //    still drained first.)
        if closed && eng.in_flight() == 0 {
            let q = shared.lock_q();
            if q.pending.is_empty() {
                break;
            }
            continue;
        }

        // 5. Idle? Wait for submissions / close / the wall clock. A
        //    throttled intake also waits here: the pending requests it
        //    left queued cannot enter until an event terminates
        //    something, so only the clock can make progress.
        if processed == 0 {
            let wait = eng.next_event_time().and_then(|t| clock.wall_wait(t));
            let q = shared.lock_q();
            if (q.pending.is_empty() || throttled) && !q.closed {
                match wait {
                    // Wall clock: sleep until the next event is due (capped
                    // so queue wake-ups are never missed for long).
                    Some(d) if d > Duration::ZERO => {
                        let cap = d.min(Duration::from_millis(100));
                        let _ = shared
                            .work_cv
                            .wait_timeout(q, cap)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    // Due now (raced the clock) — loop again.
                    Some(_) => {}
                    // Virtual clock (or empty calendar): only new work or
                    // close can unblock us.
                    None => {
                        drop(
                            shared
                                .work_cv
                                .wait(q)
                                .unwrap_or_else(PoisonError::into_inner),
                        );
                    }
                }
            }
        }
    }

    // Close the trailing window at the final instant (deterministic in
    // virtual mode: the last event's time), so the window history covers
    // the whole run.
    let final_elapsed = elapsed_secs(clock, eng.now());
    metrics.maybe_roll(final_elapsed);
    (eng.finish(), final_elapsed)
}
