//! Property-based tests of the pre-analysis: the §3.2.2 relations must
//! satisfy their defining axioms on arbitrary branching programs.

use proptest::prelude::*;
use rtx_preanalysis::program::{Block, Program};
use rtx_preanalysis::relations::{conflict, safety, Conflict, Position, Safety};
use rtx_preanalysis::sets::{DataSet, ItemId};
use rtx_preanalysis::table::{AnalysisSet, TypeId};
use rtx_preanalysis::tree::TransactionTree;
use rtx_preanalysis::Cursor;
use rtx_preanalysis::NextAction;

/// Strategy for a random block over a small item universe, with bounded
/// depth so trees stay small.
fn block_strategy(depth: u32) -> BoxedStrategy<Block> {
    let access_seq = proptest::collection::vec(0u32..12, 0..5);
    if depth == 0 {
        access_seq
            .prop_map(|items| {
                let mut b = Block::new();
                for i in items {
                    b.push_access(ItemId(i));
                }
                b
            })
            .boxed()
    } else {
        (
            access_seq,
            proptest::option::weighted(
                0.6,
                proptest::collection::vec(block_strategy(depth - 1), 2..4),
            ),
            proptest::collection::vec(0u32..12, 0..3),
        )
            .prop_map(|(pre, branches, post)| {
                let mut b = Block::new();
                for i in pre {
                    b.push_access(ItemId(i));
                }
                if let Some(branches) = branches {
                    b.push_decision(branches);
                    for i in post {
                        b.push_access(ItemId(i));
                    }
                }
                b
            })
            .boxed()
    }
}

fn program_strategy() -> impl Strategy<Value = Program> {
    block_strategy(2).prop_map(|b| Program::new("P", b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The per-node set invariants of transaction trees.
    #[test]
    fn tree_set_invariants(p in program_strategy()) {
        let t = TransactionTree::from_program(&p);
        for node in t.node_ids() {
            // hasaccessed ⊆ mightaccess
            prop_assert!(t.hasaccessed(node).is_subset(t.mightaccess(node)));
            // hasaccessed grows along paths; mightaccess shrinks.
            if let Some(parent) = t.parent(node) {
                prop_assert!(t.hasaccessed(parent).is_subset(t.hasaccessed(node)));
                prop_assert!(t.mightaccess(node).is_subset(t.mightaccess(parent)));
            }
            // Leaf: mightaccess == hasaccessed.
            if t.is_leaf(node) {
                prop_assert_eq!(t.mightaccess(node), t.hasaccessed(node));
                prop_assert_eq!(t.leaves(node), &[node]);
            } else {
                // Internal: mightaccess = union of children's.
                let mut union = DataSet::new();
                for &c in t.children(node) {
                    union.union_with(t.mightaccess(c));
                }
                prop_assert_eq!(&union, t.mightaccess(node));
            }
        }
        // Root mightaccess equals the program's full data set.
        prop_assert_eq!(&p.data_set(), t.mightaccess(t.root()));
    }

    /// Conflict is symmetric at every pair of positions.
    #[test]
    fn conflict_symmetry(p1 in program_strategy(), p2 in program_strategy()) {
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        for a in t1.node_ids() {
            for b in t2.node_ids() {
                prop_assert_eq!(
                    conflict(Position::at(&t1, a), Position::at(&t2, b)),
                    conflict(Position::at(&t2, b), Position::at(&t1, a))
                );
            }
        }
    }

    /// Refinement monotonicity: once two positions definitely conflict
    /// (resp. definitely don't), descending the trees cannot change that.
    #[test]
    fn conflict_refinement_monotone(p1 in program_strategy(), p2 in program_strategy()) {
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        for a in t1.node_ids() {
            for b in t2.node_ids() {
                let rel = conflict(Position::at(&t1, a), Position::at(&t2, b));
                for &ca in t1.children(a) {
                    let child_rel = conflict(Position::at(&t1, ca), Position::at(&t2, b));
                    match rel {
                        Conflict::Conflicts => prop_assert_eq!(child_rel, Conflict::Conflicts),
                        Conflict::None => prop_assert_eq!(child_rel, Conflict::None),
                        Conflict::Conditional => {} // may resolve either way
                    }
                }
            }
        }
    }

    /// Safety axioms: empty hasaccessed ⇒ Safe; disjoint data sets ⇒ Safe;
    /// actor at a leaf never yields ConditionallyUnsafe.
    #[test]
    fn safety_axioms(p1 in program_strategy(), p2 in program_strategy()) {
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        for s in t1.node_ids() {
            for a in t2.node_ids() {
                let rel = safety(Position::at(&t1, s), Position::at(&t2, a));
                if t1.hasaccessed(s).is_empty() {
                    prop_assert_eq!(rel, Safety::Safe);
                }
                if !t1.hasaccessed(s).intersects(t2.mightaccess(a)) {
                    prop_assert_eq!(rel, Safety::Safe);
                } else {
                    prop_assert!(rel.needs_rollback());
                }
                if t2.is_leaf(a) {
                    prop_assert_ne!(rel, Safety::ConditionallyUnsafe);
                }
            }
        }
    }

    /// Safety refinement w.r.t. the actor: if the subject is Unsafe against
    /// an actor position, it stays Unsafe against every child of that
    /// position (the actor can only narrow its future, and Unsafe says all
    /// its leaves already overlap).
    #[test]
    fn safety_refines_with_actor(p1 in program_strategy(), p2 in program_strategy()) {
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        for s in t1.node_ids() {
            for a in t2.node_ids() {
                let rel = safety(Position::at(&t1, s), Position::at(&t2, a));
                for &ca in t2.children(a) {
                    let child = safety(Position::at(&t1, s), Position::at(&t2, ca));
                    match rel {
                        Safety::Unsafe => prop_assert_eq!(child, Safety::Unsafe),
                        Safety::Safe => prop_assert_eq!(child, Safety::Safe),
                        Safety::ConditionallyUnsafe => {}
                    }
                }
            }
        }
    }

    /// The precomputed AnalysisSet tables agree with direct evaluation.
    #[test]
    fn analysis_set_matches_direct(p1 in program_strategy(), p2 in program_strategy()) {
        let set = AnalysisSet::new(&[p1.clone(), p2.clone()]);
        let (a, b) = (TypeId(0), TypeId(1));
        for na in set.tree(a).node_ids() {
            for nb in set.tree(b).node_ids() {
                prop_assert_eq!(
                    set.conflict_at(a, na, b, nb),
                    conflict(Position::at(set.tree(a), na), Position::at(set.tree(b), nb))
                );
                prop_assert_eq!(
                    set.safety_at(a, na, b, nb),
                    safety(Position::at(set.tree(a), na), Position::at(set.tree(b), nb))
                );
            }
        }
    }

    /// Walking a cursor along random branch choices maintains:
    /// accessed ⊆ hasaccessed(node) ⊆ mightaccess(node), and every item the
    /// cursor touches is in the program's data set.
    #[test]
    fn cursor_walk_invariants(p in program_strategy(), choices in proptest::collection::vec(0usize..4, 0..16)) {
        let t = TransactionTree::from_program(&p);
        let data_set = p.data_set();
        let mut cursor = Cursor::new(&t);
        let mut pick = choices.into_iter();
        loop {
            match cursor.next_action() {
                NextAction::Access(item) => {
                    prop_assert!(data_set.contains(item));
                    cursor.advance_access();
                }
                NextAction::Decide(n) => {
                    let k = pick.next().unwrap_or(0) % n;
                    cursor.choose(k);
                }
                NextAction::Finished => break,
            }
            prop_assert!(cursor.accessed().is_subset(cursor.hasaccessed_analytic()));
            prop_assert!(cursor.hasaccessed_analytic().is_subset(cursor.mightaccess()));
        }
        // At the end the cursor sits at a leaf: analytic and operational
        // views agree on *which items could still be touched* (nothing).
        prop_assert!(t.is_leaf(cursor.node()));
        prop_assert_eq!(cursor.hasaccessed_analytic(), cursor.mightaccess());
        // Reset restores the initial state.
        let before = cursor.tree().root();
        cursor.reset();
        prop_assert_eq!(cursor.node(), before);
        prop_assert!(cursor.accessed().is_empty());
    }
}
