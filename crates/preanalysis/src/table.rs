//! Precomputed relation tables for a fixed set of transaction types.
//!
//! "All transactions that the system executes are instances of one of a
//! number of transaction types. We assume that we know the programs of
//! these transactions and have pre-analyzed them" (§3.1). The scheduler
//! queries conflict/safety relations at every scheduling point, so an
//! [`AnalysisSet`] materializes them once per workload: for every pair of
//! types and every pair of tree nodes, both the conflict relation and the
//! (asymmetric) safety relation.
//!
//! "Even though maintaining the transaction relationship information
//! requires additional space, it is a reasonable approach for RTDBS to
//! trade-off space for better performance" (§3.2.2).

use crate::program::Program;
use crate::relations::{conflict, safety, Conflict, Position, Safety};
use crate::tree::{NodeId, TransactionTree};

/// Index of a transaction type within an [`AnalysisSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub u32);

/// Pre-analyzed trees plus dense relation tables for one workload.
pub struct AnalysisSet {
    trees: Vec<TransactionTree>,
    /// `conflict_tab[a][b]` is a `nodes(a) × nodes(b)` matrix.
    conflict_tab: Vec<Vec<Matrix<Conflict>>>,
    /// `safety_tab[subject][actor]`, `nodes(subject) × nodes(actor)`.
    safety_tab: Vec<Vec<Matrix<Safety>>>,
}

struct Matrix<T> {
    cols: usize,
    cells: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    fn build(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut cells = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                cells.push(f(r, c));
            }
        }
        Matrix { cols, cells }
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> T {
        self.cells[r * self.cols + c]
    }
}

impl AnalysisSet {
    /// Pre-analyze all `programs`.
    pub fn new(programs: &[Program]) -> Self {
        let trees: Vec<TransactionTree> =
            programs.iter().map(TransactionTree::from_program).collect();
        let n = trees.len();
        let mut conflict_tab = Vec::with_capacity(n);
        let mut safety_tab = Vec::with_capacity(n);
        for a in 0..n {
            let mut crow = Vec::with_capacity(n);
            let mut srow = Vec::with_capacity(n);
            for b in 0..n {
                let (ta, tb) = (&trees[a], &trees[b]);
                crow.push(Matrix::build(ta.node_count(), tb.node_count(), |r, c| {
                    conflict(
                        Position::at(ta, NodeId(r as u32)),
                        Position::at(tb, NodeId(c as u32)),
                    )
                }));
                srow.push(Matrix::build(ta.node_count(), tb.node_count(), |r, c| {
                    safety(
                        Position::at(ta, NodeId(r as u32)),
                        Position::at(tb, NodeId(c as u32)),
                    )
                }));
            }
            conflict_tab.push(crow);
            safety_tab.push(srow);
        }
        AnalysisSet {
            trees,
            conflict_tab,
            safety_tab,
        }
    }

    /// Number of transaction types.
    pub fn type_count(&self) -> usize {
        self.trees.len()
    }

    /// The pre-analyzed tree of a type.
    pub fn tree(&self, ty: TypeId) -> &TransactionTree {
        &self.trees[ty.0 as usize]
    }

    /// All trees, indexed by [`TypeId`].
    pub fn trees(&self) -> &[TransactionTree] {
        &self.trees
    }

    /// Conflict relation between type `a` at `node_a` and type `b` at
    /// `node_b` (O(1) table lookup).
    pub fn conflict_at(&self, a: TypeId, node_a: NodeId, b: TypeId, node_b: NodeId) -> Conflict {
        self.conflict_tab[a.0 as usize][b.0 as usize].get(node_a.0 as usize, node_b.0 as usize)
    }

    /// Safety of `subject` (partially executed, at `node_s`) w.r.t. `actor`
    /// at `node_a` (O(1) table lookup).
    pub fn safety_at(
        &self,
        subject: TypeId,
        node_s: NodeId,
        actor: TypeId,
        node_a: NodeId,
    ) -> Safety {
        self.safety_tab[subject.0 as usize][actor.0 as usize]
            .get(node_s.0 as usize, node_a.0 as usize)
    }

    /// Root-level conflict between two types ("might the types ever
    /// conflict?"), the pessimistic admission test.
    pub fn type_conflict(&self, a: TypeId, b: TypeId) -> Conflict {
        self.conflict_at(a, NodeId::ROOT, b, NodeId::ROOT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::sets::ItemId;

    fn figure1_set() -> AnalysisSet {
        let a = ProgramBuilder::new("A")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)).access(ItemId(2)).access(ItemId(3)))
                    .branch(|b| b.access(ItemId(4)).access(ItemId(5)).access(ItemId(6)))
            })
            .build();
        let b = Program::straight_line("B", [ItemId(1), ItemId(2), ItemId(3)]);
        AnalysisSet::new(&[a, b])
    }

    #[test]
    fn tables_match_direct_computation() {
        let set = figure1_set();
        let (a, b) = (TypeId(0), TypeId(1));
        for na in set.tree(a).node_ids() {
            for nb in set.tree(b).node_ids() {
                let direct = conflict(Position::at(set.tree(a), na), Position::at(set.tree(b), nb));
                assert_eq!(set.conflict_at(a, na, b, nb), direct);
                let direct_s = safety(Position::at(set.tree(a), na), Position::at(set.tree(b), nb));
                assert_eq!(set.safety_at(a, na, b, nb), direct_s);
            }
        }
    }

    #[test]
    fn paper_relations_via_table() {
        let set = figure1_set();
        let (a, b) = (TypeId(0), TypeId(1));
        let ta = set.tree(a);
        assert_eq!(set.type_conflict(a, b), Conflict::Conditional);
        let aa = ta.find("Aa").unwrap();
        let ab = ta.find("Ab").unwrap();
        assert_eq!(set.conflict_at(a, aa, b, NodeId::ROOT), Conflict::Conflicts);
        assert_eq!(set.conflict_at(a, ab, b, NodeId::ROOT), Conflict::None);
        // B fully executed vs actor A at Aa: unsafe.
        assert_eq!(set.safety_at(b, NodeId::ROOT, a, aa), Safety::Unsafe);
        assert_eq!(set.safety_at(b, NodeId::ROOT, a, ab), Safety::Safe);
    }

    #[test]
    fn symmetric_conflict_in_tables() {
        let set = figure1_set();
        let (a, b) = (TypeId(0), TypeId(1));
        for na in set.tree(a).node_ids() {
            for nb in set.tree(b).node_ids() {
                assert_eq!(set.conflict_at(a, na, b, nb), set.conflict_at(b, nb, a, na));
            }
        }
    }

    #[test]
    fn straight_line_fifty_types() {
        // The paper's workload shape: 50 straight-line types.
        let programs: Vec<Program> = (0..50)
            .map(|k| {
                Program::straight_line(format!("T{k}"), (0..5u32).map(|i| ItemId((k * 3 + i) % 30)))
            })
            .collect();
        let set = AnalysisSet::new(&programs);
        assert_eq!(set.type_count(), 50);
        // Every type tree is a single vertex.
        for t in set.trees() {
            assert_eq!(t.node_count(), 1);
        }
        // Conflict is symmetric, and self-conflict always holds (a type
        // shares its own items).
        for i in 0..50u32 {
            assert_eq!(set.type_conflict(TypeId(i), TypeId(i)), Conflict::Conflicts);
        }
    }
}
