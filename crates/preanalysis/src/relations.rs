//! Conflict and safety relations between (positions in) transactions.
//!
//! Direct transcriptions of the definitions in §3.2.2. Both relations are
//! evaluated between *refinement states* — a transaction tree plus the node
//! the transaction has reached — because that is exactly the information
//! the scheduler has at run time.
//!
//! * **Conflict** (symmetric): do the two transactions' future executions
//!   necessarily / possibly / never touch overlapping data?
//! * **Safety** (asymmetric): if the *subject* transaction `T_P` has
//!   partially executed and the *actor* `T_Q` is scheduled, must `T_P` be
//!   rolled back (`Unsafe`), merely blocked (`Safe`), or does it depend on
//!   `T_Q`'s future branches (`ConditionallyUnsafe`)?

use std::fmt;

use crate::tree::{NodeId, TransactionTree};

/// A transaction's refinement state: its pre-analyzed tree and the node the
/// execution has reached.
#[derive(Debug, Clone, Copy)]
pub struct Position<'t> {
    /// The pre-analyzed tree.
    pub tree: &'t TransactionTree,
    /// The node reached so far.
    pub node: NodeId,
}

impl<'t> Position<'t> {
    /// Position at the tree's root (transaction just started).
    pub fn at_root(tree: &'t TransactionTree) -> Self {
        Position {
            tree,
            node: tree.root(),
        }
    }

    /// Position at a specific node.
    pub fn at(tree: &'t TransactionTree, node: NodeId) -> Self {
        Position { tree, node }
    }
}

/// The three-valued conflict relation between two transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conflict {
    /// "No matter what their execution paths, they will access overlapping
    /// datasets."
    Conflicts,
    /// "Might or might not conflict based on their future execution."
    Conditional,
    /// "Given their current state, they won't access overlapping data sets
    /// for all possible execution paths."
    None,
}

impl Conflict {
    /// True for `Conflicts` or `Conditional` — the predicate
    /// `IOwait-schedule` uses ("don't conflict or conditionally conflict").
    pub fn possible(self) -> bool {
        !matches!(self, Conflict::None)
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conflict::Conflicts => write!(f, "conflict"),
            Conflict::Conditional => write!(f, "conditionally conflict"),
            Conflict::None => write!(f, "don't conflict"),
        }
    }
}

/// The three-valued safety relation of a partially executed transaction
/// with respect to another transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Safety {
    /// The subject "has not yet accessed any data items that [the actor]
    /// might access": blocking suffices, no rollback needed.
    Safe,
    /// The subject has accessed data the actor will access on every path:
    /// it must be rolled back if the actor runs to commit.
    Unsafe,
    /// Depends on the actor's future branches.
    ConditionallyUnsafe,
}

impl Safety {
    /// True for `Unsafe` or `ConditionallyUnsafe` — the predicate that
    /// contributes to the penalty of conflict (§3.3.1: "unsafe or
    /// conditionally unsafe").
    pub fn needs_rollback(self) -> bool {
        !matches!(self, Safety::Safe)
    }
}

impl fmt::Display for Safety {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Safety::Safe => write!(f, "safe"),
            Safety::Unsafe => write!(f, "unsafe"),
            Safety::ConditionallyUnsafe => write!(f, "conditionally unsafe"),
        }
    }
}

/// Compute the conflict relation between two positions.
///
/// Leaf case: leaves `p`, `q` conflict iff
/// `mightaccess(p) ∩ mightaccess(q) ≠ ∅`. General case quantifies over all
/// leaf pairs of the two subtrees.
pub fn conflict(a: Position<'_>, b: Position<'_>) -> Conflict {
    let mut any_overlap = false;
    let mut any_disjoint = false;
    for &la in a.tree.leaves(a.node) {
        let ma = a.tree.mightaccess(la);
        for &lb in b.tree.leaves(b.node) {
            if ma.intersects(b.tree.mightaccess(lb)) {
                any_overlap = true;
            } else {
                any_disjoint = true;
            }
            if any_overlap && any_disjoint {
                return Conflict::Conditional;
            }
        }
    }
    match (any_overlap, any_disjoint) {
        (true, false) => Conflict::Conflicts,
        (false, _) => Conflict::None,
        (true, true) => Conflict::Conditional, // unreachable (early return)
    }
}

/// Compute the safety of `subject` (partially executed) with respect to
/// `actor` (the transaction about to run).
///
/// * `Safe`   iff `hasaccessed(subject) ∩ mightaccess(actor) = ∅`;
/// * `Unsafe` iff for **every** leaf `q` of the actor's subtree,
///   `hasaccessed(subject) ∩ mightaccess(q) ≠ ∅`;
/// * `ConditionallyUnsafe` otherwise (some leaf overlaps, some doesn't).
pub fn safety(subject: Position<'_>, actor: Position<'_>) -> Safety {
    let has = subject.tree.hasaccessed(subject.node);
    if !has.intersects(actor.tree.mightaccess(actor.node)) {
        return Safety::Safe;
    }
    let all_leaves_overlap = actor
        .tree
        .leaves(actor.node)
        .iter()
        .all(|&q| has.intersects(actor.tree.mightaccess(q)));
    if all_leaves_overlap {
        Safety::Unsafe
    } else {
        Safety::ConditionallyUnsafe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramBuilder};
    use crate::sets::ItemId;

    /// Figure 1 / 2: program A branches to {1,2,3} or {4,5,6} after reading
    /// item 0; program B always accesses {1,2,3}.
    fn figure_trees() -> (TransactionTree, TransactionTree) {
        let a = ProgramBuilder::new("A")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)).access(ItemId(2)).access(ItemId(3)))
                    .branch(|b| b.access(ItemId(4)).access(ItemId(5)).access(ItemId(6)))
            })
            .build();
        let b = Program::straight_line("B", [ItemId(1), ItemId(2), ItemId(3)]);
        (
            TransactionTree::from_program(&a),
            TransactionTree::from_program(&b),
        )
    }

    #[test]
    fn paper_example_conflicts() {
        let (ta, tb) = figure_trees();
        // "T_A1 [at the root] conditionally conflicts with T_B1": before the
        // decision, A might take either branch.
        let a_root = Position::at_root(&ta);
        let b_root = Position::at_root(&tb);
        assert_eq!(conflict(a_root, b_root), Conflict::Conditional);
        // "T_Aa conflicts with T_B1"
        let aa = Position::at(&ta, ta.find("Aa").unwrap());
        assert_eq!(conflict(aa, b_root), Conflict::Conflicts);
        // "T_Ab doesn't conflict with T_B1"
        let ab = Position::at(&ta, ta.find("Ab").unwrap());
        assert_eq!(conflict(ab, b_root), Conflict::None);
    }

    #[test]
    fn conflict_is_symmetric() {
        let (ta, tb) = figure_trees();
        for node_a in ta.node_ids() {
            for node_b in tb.node_ids() {
                let ab = conflict(Position::at(&ta, node_a), Position::at(&tb, node_b));
                let ba = conflict(Position::at(&tb, node_b), Position::at(&ta, node_a));
                assert_eq!(ab, ba);
            }
        }
    }

    #[test]
    fn self_conflict_of_overlapping_type() {
        let (ta, _) = figure_trees();
        // Two instances of A share item 0 on every path → conflict.
        let p = Position::at_root(&ta);
        assert_eq!(conflict(p, p), Conflict::Conflicts);
    }

    #[test]
    fn disjoint_types_never_conflict() {
        let p1 = Program::straight_line("X", [ItemId(1), ItemId(2)]);
        let p2 = Program::straight_line("Y", [ItemId(3), ItemId(4)]);
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        let c = conflict(Position::at_root(&t1), Position::at_root(&t2));
        assert_eq!(c, Conflict::None);
        assert!(!c.possible());
    }

    #[test]
    fn safety_of_fresh_transaction_is_safe() {
        // A transaction that has accessed nothing is safe w.r.t. anything…
        // unless its root segment is non-empty. Build one with an empty
        // prefix (decision first).
        let p = ProgramBuilder::new("F")
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)))
                    .branch(|b| b.access(ItemId(2)))
            })
            .build();
        let t = TransactionTree::from_program(&p);
        let (ta, _) = figure_trees();
        assert!(t.hasaccessed(t.root()).is_empty());
        assert_eq!(
            safety(Position::at_root(&t), Position::at_root(&ta)),
            Safety::Safe
        );
    }

    #[test]
    fn safety_cases_from_figure() {
        let (ta, tb) = figure_trees();
        // B has executed fully (single node): hasaccessed = {1,2,3}.
        let b_pos = Position::at_root(&tb);
        // Actor A at root: leaves Aa (might {0,1,2,3}) and Ab ({0,4,5,6}).
        // hasaccessed(B) overlaps mightaccess(A) but not every leaf
        // → conditionally unsafe.
        assert_eq!(
            safety(b_pos, Position::at_root(&ta)),
            Safety::ConditionallyUnsafe
        );
        // Actor A at Aa: every leaf overlaps → unsafe.
        let aa = Position::at(&ta, ta.find("Aa").unwrap());
        assert_eq!(safety(b_pos, aa), Safety::Unsafe);
        // Actor A at Ab: no overlap → safe.
        let ab = Position::at(&ta, ta.find("Ab").unwrap());
        assert_eq!(safety(b_pos, ab), Safety::Safe);
    }

    #[test]
    fn safety_depends_on_subject_progress() {
        let (ta, tb) = figure_trees();
        // Subject A at root has accessed only item 0; B never touches 0.
        let a_root = Position::at_root(&ta);
        let b = Position::at_root(&tb);
        assert_eq!(safety(a_root, b), Safety::Safe);
        // Subject A at Aa has accessed {0,1,2,3}; B accesses {1,2,3} on its
        // only path → unsafe.
        let aa = Position::at(&ta, ta.find("Aa").unwrap());
        assert_eq!(safety(aa, b), Safety::Unsafe);
        // Subject A at Ab accessed {0,4,5,6} → safe w.r.t. B.
        let ab = Position::at(&ta, ta.find("Ab").unwrap());
        assert_eq!(safety(ab, b), Safety::Safe);
    }

    #[test]
    fn needs_rollback_predicate() {
        assert!(!Safety::Safe.needs_rollback());
        assert!(Safety::Unsafe.needs_rollback());
        assert!(Safety::ConditionallyUnsafe.needs_rollback());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Conflict::Conflicts.to_string(), "conflict");
        assert_eq!(Conflict::Conditional.to_string(), "conditionally conflict");
        assert_eq!(Conflict::None.to_string(), "don't conflict");
        assert_eq!(Safety::Safe.to_string(), "safe");
        assert_eq!(Safety::Unsafe.to_string(), "unsafe");
        assert_eq!(
            Safety::ConditionallyUnsafe.to_string(),
            "conditionally unsafe"
        );
    }

    #[test]
    fn straight_line_relations_degenerate_to_set_tests() {
        // For straight-line programs the three-valued relations collapse to
        // a binary intersection test — the regime of the paper's simulation.
        let p1 = Program::straight_line("X", [ItemId(1), ItemId(2)]);
        let p2 = Program::straight_line("Y", [ItemId(2), ItemId(3)]);
        let t1 = TransactionTree::from_program(&p1);
        let t2 = TransactionTree::from_program(&p2);
        assert_eq!(
            conflict(Position::at_root(&t1), Position::at_root(&t2)),
            Conflict::Conflicts
        );
        assert_eq!(
            safety(Position::at_root(&t1), Position::at_root(&t2)),
            Safety::Unsafe
        );
    }
}
