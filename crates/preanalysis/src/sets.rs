//! Data sets: compact sets of database item identifiers.
//!
//! Every relation in the pre-analysis (§3.2.2) reduces to intersections and
//! unions of item sets (`accesses`, `hasaccessed`, `mightaccess`), and the
//! scheduler evaluates them at every scheduling point, so the
//! representation matters: a fixed-width bitset over item ids gives O(n/64)
//! intersection tests with no allocation on the query path.

use std::fmt;

/// Identifier of a database item (an "object" in the paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A set of [`ItemId`]s, stored as a bitset.
///
/// The universe is open-ended: the word vector grows on insert, and all
/// binary operations (including equality) treat missing high words as
/// zeros.
#[derive(Clone, Default)]
pub struct DataSet {
    words: Vec<u64>,
    len: usize,
}

impl PartialEq for DataSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for DataSet {}

impl DataSet {
    /// The empty set.
    pub fn new() -> Self {
        DataSet::default()
    }

    /// Set containing the given items.
    pub fn from_items<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut s = DataSet::new();
        for item in items {
            s.insert(item);
        }
        s
    }

    /// Number of items in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, item: ItemId) -> bool {
        let (w, m) = Self::locate(item);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & m != 0 {
            false
        } else {
            self.words[w] |= m;
            self.len += 1;
            true
        }
    }

    /// Remove an item; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, item: ItemId) -> bool {
        let (w, m) = Self::locate(item);
        if w < self.words.len() && self.words[w] & m != 0 {
            self.words[w] &= !m;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        let (w, m) = Self::locate(item);
        w < self.words.len() && self.words[w] & m != 0
    }

    /// Remove all items.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// True iff `self` and `other` share no item. This is the hot query:
    /// "two transactions don't conflict if … they won't access overlapping
    /// data sets".
    #[inline]
    pub fn is_disjoint(&self, other: &DataSet) -> bool {
        // An empty side decides without touching either word vector; items
        // past min(words.len()) cannot overlap, so the scan stops there.
        if self.len == 0 || other.len == 0 {
            return true;
        }
        let n = self.words.len().min(other.words.len());
        let (a, b) = (&self.words[..n], &other.words[..n]);
        // 4-wide OR-accumulated AND: the branch-free block body is a
        // shape LLVM auto-vectorizes (two 128-bit or one 256-bit lane
        // per step), with one early-exit test per block instead of one
        // per word. The remainder tail is at most 3 words.
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        for (x, y) in (&mut ca).zip(&mut cb) {
            let hit = (x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3]);
            if hit != 0 {
                return false;
            }
        }
        ca.remainder()
            .iter()
            .zip(cb.remainder())
            .all(|(&x, &y)| x & y == 0)
    }

    /// True iff the sets share at least one item.
    #[inline]
    pub fn intersects(&self, other: &DataSet) -> bool {
        !self.is_disjoint(other)
    }

    /// True iff every item of `self` is in `other`.
    #[inline]
    pub fn is_subset(&self, other: &DataSet) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &DataSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &b) in other.words.iter().enumerate() {
            self.words[i] |= b;
        }
        self.recount();
    }

    /// New set: union of the two.
    pub fn union(&self, other: &DataSet) -> DataSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// New set: intersection of the two.
    pub fn intersection(&self, other: &DataSet) -> DataSet {
        let n = self.words.len().min(other.words.len());
        let mut out = DataSet {
            words: (0..n).map(|i| self.words[i] & other.words[i]).collect(),
            len: 0,
        };
        out.recount();
        out
    }

    /// Iterate items in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi * 64) as u32;
            BitIter { word, base }
        })
    }

    #[inline]
    fn locate(item: ItemId) -> (usize, u64) {
        ((item.0 / 64) as usize, 1u64 << (item.0 % 64))
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = ItemId;
    fn next(&mut self) -> Option<ItemId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(ItemId(self.base + tz))
    }
}

impl FromIterator<ItemId> for DataSet {
    fn from_iter<I: IntoIterator<Item = ItemId>>(iter: I) -> Self {
        DataSet::from_items(iter)
    }
}

impl FromIterator<u32> for DataSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        DataSet::from_items(iter.into_iter().map(ItemId))
    }
}

impl fmt::Debug for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|i| i.0)).finish()
    }
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[u32]) -> DataSet {
        items.iter().copied().collect()
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = DataSet::new();
        assert!(s.insert(ItemId(3)));
        assert!(!s.insert(ItemId(3)), "duplicate insert reports false");
        assert!(s.insert(ItemId(200)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ItemId(3)));
        assert!(s.contains(ItemId(200)));
        assert!(!s.contains(ItemId(4)));
        assert!(s.remove(ItemId(3)));
        assert!(!s.remove(ItemId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disjoint_and_intersects() {
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5, 6]);
        let c = set(&[3, 4]);
        assert!(a.is_disjoint(&b));
        assert!(!a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(a.is_disjoint(&DataSet::new()));
        assert!(DataSet::new().is_disjoint(&a));
    }

    #[test]
    fn disjoint_across_word_boundaries() {
        let a = set(&[0, 64, 128]);
        let b = set(&[63, 127, 191]);
        assert!(a.is_disjoint(&b));
        let c = set(&[128]);
        assert!(a.intersects(&c));
        // Shorter word vector vs longer.
        let short = set(&[1]);
        let long = set(&[1, 1000]);
        assert!(short.intersects(&long));
        assert!(long.intersects(&short));
    }

    #[test]
    fn disjoint_wide_sets_exercise_the_blocked_path() {
        // > 4 words per side so the 4-wide blocks run; probe an overlap
        // in every block position and in the remainder tail.
        let a = set(&[0, 70, 140, 210, 280, 350, 420]);
        let b = set(&[1, 71, 141, 211, 281, 351, 421]);
        assert!(a.is_disjoint(&b));
        for &hit in &[0u32, 70, 140, 210, 280, 350, 420] {
            let mut c = b.clone();
            c.insert(ItemId(hit));
            assert!(a.intersects(&c), "missed overlap at {hit}");
            assert!(c.intersects(&a), "missed overlap at {hit} (flipped)");
        }
        // Exhaustive cross-check against the naive definition on a
        // pseudo-random population.
        let mut state = 1u64;
        let mut step = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32 % 500
        };
        for _ in 0..200 {
            let xs: Vec<u32> = (0..8).map(|_| step()).collect();
            let ys: Vec<u32> = (0..8).map(|_| step()).collect();
            let (x, y) = (set(&xs), set(&ys));
            let naive = xs.iter().all(|i| !ys.contains(i));
            assert_eq!(x.is_disjoint(&y), naive, "{xs:?} vs {ys:?}");
        }
    }

    #[test]
    fn union_and_intersection() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), set(&[3]));
        assert_eq!(a.intersection(&set(&[9])), DataSet::new());
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn subset() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(DataSet::new().is_subset(&a));
        assert!(a.is_subset(&a));
        let big = set(&[1, 2, 500]);
        assert!(!big.is_subset(&b));
    }

    #[test]
    fn iteration_in_order() {
        let s = set(&[100, 1, 65, 2]);
        let v: Vec<u32> = s.iter().map(|i| i.0).collect();
        assert_eq!(v, vec![1, 2, 65, 100]);
    }

    #[test]
    fn clear_resets() {
        let mut s = set(&[1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(ItemId(1)));
    }

    #[test]
    fn display_format() {
        let s = set(&[2, 5]);
        assert_eq!(format!("{s}"), "{i2, i5}");
        assert_eq!(format!("{}", DataSet::new()), "{}");
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut a = set(&[1]);
        let mut b = set(&[1, 500]);
        b.remove(ItemId(500));
        // b's word vector is longer but semantically equal… our PartialEq
        // derives on words, so normalize by comparing via subset both ways.
        assert!(a.is_subset(&b) && b.is_subset(&a));
        assert_eq!(a.len(), b.len());
        // And operations behave identically:
        a.insert(ItemId(7));
        b.insert(ItemId(7));
        assert!(a.intersects(&b));
    }
}
