//! A small text format for transaction programs.
//!
//! The paper's Figure 1 presents transaction types as program fragments;
//! this module provides an equivalent notation so examples and tests can
//! state workloads declaratively:
//!
//! ```text
//! # Figure 1 of the paper
//! program A {
//!     access w
//!     branch {                 # the `if (w > 100)` decision point
//!         { access i1 i2 i3 }  # then-arm
//!         { access i4 i5 i6 }  # else-arm
//!     }
//! }
//! program B {
//!     access i1 i2 i3
//! }
//! ```
//!
//! Item names are interned in order of first appearance; the resulting
//! [`Interner`] maps names to the [`ItemId`]s used throughout the library.

use std::collections::HashMap;
use std::fmt;

use crate::program::{Block, Program};
use crate::sets::ItemId;

/// Maps symbolic item names to dense [`ItemId`]s.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_name: HashMap<String, ItemId>,
    names: Vec<String>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its id (allocating a new one if unseen).
    pub fn intern(&mut self, name: &str) -> ItemId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ItemId(self.names.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<ItemId> {
        self.by_name.get(name).copied()
    }

    /// The name of an id, if allocated.
    pub fn name(&self, id: ItemId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct items interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token (0 for end-of-input errors).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error at end of input: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
}

struct Lexer<'s> {
    src: &'s str,
    tokens: Vec<(Tok, u32)>,
}

impl<'s> Lexer<'s> {
    fn lex(src: &'s str) -> Result<Vec<(Tok, u32)>, ParseError> {
        let mut lexer = Lexer {
            src,
            tokens: Vec::new(),
        };
        lexer.run()?;
        Ok(lexer.tokens)
    }

    fn run(&mut self) -> Result<(), ParseError> {
        for (lineno, line) in self.src.lines().enumerate() {
            let line_no = lineno as u32 + 1;
            // Strip comments: `#` or `//` to end of line.
            let code = match (line.find('#'), line.find("//")) {
                (Some(a), Some(b)) => &line[..a.min(b)],
                (Some(a), None) => &line[..a],
                (None, Some(b)) => &line[..b],
                (None, None) => line,
            };
            let mut rest = code;
            while !rest.is_empty() {
                let c = rest.chars().next().expect("non-empty");
                if c.is_whitespace() {
                    rest = &rest[c.len_utf8()..];
                } else if c == '{' {
                    self.tokens.push((Tok::LBrace, line_no));
                    rest = &rest[1..];
                } else if c == '}' {
                    self.tokens.push((Tok::RBrace, line_no));
                    rest = &rest[1..];
                } else if c.is_alphanumeric() || c == '_' {
                    let end = rest
                        .find(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                        .unwrap_or(rest.len());
                    self.tokens
                        .push((Tok::Ident(rest[..end].to_string()), line_no));
                    rest = &rest[end..];
                } else {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unexpected character {c:?}"),
                    });
                }
            }
        }
        Ok(())
    }
}

struct Parser {
    tokens: Vec<(Tok, u32)>,
    pos: usize,
    interner: Interner,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: if self.pos < self.tokens.len() {
                self.line()
            } else {
                0
            },
            message: message.into(),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(other) => Err(ParseError {
                line: self.tokens[self.pos - 1].1,
                message: format!("expected {what}, found {other:?}"),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            Some(other) => Err(ParseError {
                line: self.tokens[self.pos - 1].1,
                message: format!("expected {what}, found {other:?}"),
            }),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_programs(&mut self) -> Result<Vec<Program>, ParseError> {
        let mut programs = Vec::new();
        while self.peek().is_some() {
            let kw = self.expect_ident("`program`")?;
            if kw != "program" {
                return Err(ParseError {
                    line: self.tokens[self.pos - 1].1,
                    message: format!("expected `program`, found `{kw}`"),
                });
            }
            let name = self.expect_ident("program name")?;
            self.expect_tok(Tok::LBrace, "`{`")?;
            let body = self.parse_block()?;
            programs.push(Program::new(name, body));
        }
        if programs.is_empty() {
            return Err(ParseError {
                line: 0,
                message: "input contains no programs".to_string(),
            });
        }
        Ok(programs)
    }

    /// Parses statements until the matching `}` (consumed).
    fn parse_block(&mut self) -> Result<Block, ParseError> {
        let mut block = Block::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    return Ok(block);
                }
                Some(Tok::Ident(kw)) if kw == "access" => {
                    self.next();
                    let mut any = false;
                    while let Some(Tok::Ident(_)) = self.peek() {
                        // Stop if the identifier is a keyword starting the
                        // next statement.
                        if matches!(self.peek(), Some(Tok::Ident(k)) if k == "access" || k == "branch" || k == "program")
                        {
                            break;
                        }
                        let name = self.expect_ident("item name")?;
                        block.push_access(self.interner.intern(&name));
                        any = true;
                    }
                    if !any {
                        return Err(self.err("`access` requires at least one item"));
                    }
                }
                Some(Tok::Ident(kw)) if kw == "branch" => {
                    self.next();
                    self.expect_tok(Tok::LBrace, "`{` after `branch`")?;
                    let mut branches = Vec::new();
                    loop {
                        match self.peek() {
                            Some(Tok::LBrace) => {
                                self.next();
                                branches.push(self.parse_block()?);
                            }
                            Some(Tok::RBrace) => {
                                self.next();
                                break;
                            }
                            Some(other) => {
                                let other = other.clone();
                                return Err(self.err(format!(
                                    "expected `{{` or `}}` in branch list, found {other:?}"
                                )));
                            }
                            None => return Err(self.err("unterminated branch list")),
                        }
                    }
                    if branches.len() < 2 {
                        return Err(self.err(format!(
                            "`branch` requires at least two arms, found {}",
                            branches.len()
                        )));
                    }
                    block.push_decision(branches);
                }
                Some(other) => {
                    let other = other.clone();
                    return Err(self.err(format!(
                        "expected `access`, `branch` or `}}`, found {other:?}"
                    )));
                }
                None => return Err(self.err("unterminated block (missing `}`)")),
            }
        }
    }
}

/// Parse a source string containing one or more programs.
pub fn parse_programs(src: &str) -> Result<(Vec<Program>, Interner), ParseError> {
    let tokens = Lexer::lex(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        interner: Interner::new(),
    };
    let programs = parser.parse_programs()?;
    Ok((programs, parser.interner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::{conflict, safety, Conflict, Position, Safety};
    use crate::tree::TransactionTree;

    const FIGURE1: &str = r#"
        # Figure 1 of the paper
        program A {
            access w
            branch {
                { access i1 i2 i3 }
                { access i4 i5 i6 }
            }
        }
        program B {
            access i1 i2 i3
        }
    "#;

    #[test]
    fn parses_figure1() {
        let (programs, interner) = parse_programs(FIGURE1).unwrap();
        assert_eq!(programs.len(), 2);
        assert_eq!(programs[0].name(), "A");
        assert_eq!(programs[1].name(), "B");
        assert_eq!(interner.len(), 7); // w, i1..i6
        assert_eq!(interner.get("w"), Some(ItemId(0)));
        assert_eq!(interner.name(ItemId(0)), Some("w"));
        assert!(programs[1].is_straight_line());
        assert_eq!(programs[0].body().decision_count(), 1);
    }

    #[test]
    fn parsed_programs_reproduce_paper_relations() {
        let (programs, _) = parse_programs(FIGURE1).unwrap();
        let ta = TransactionTree::from_program(&programs[0]);
        let tb = TransactionTree::from_program(&programs[1]);
        assert_eq!(
            conflict(Position::at_root(&ta), Position::at_root(&tb)),
            Conflict::Conditional
        );
        let aa = ta.find("Aa").unwrap();
        assert_eq!(
            conflict(Position::at(&ta, aa), Position::at_root(&tb)),
            Conflict::Conflicts
        );
        assert_eq!(
            safety(Position::at_root(&tb), Position::at(&ta, aa)),
            Safety::Unsafe
        );
    }

    #[test]
    fn comments_both_styles() {
        let src = "program P { access a // trailing\n access b # other\n }";
        let (programs, interner) = parse_programs(src).unwrap();
        assert_eq!(programs[0].data_set().len(), 2);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn nested_branches() {
        let src = r#"
            program N {
                access a
                branch {
                    { access b branch { { access c } { access d } } }
                    { access e }
                }
            }
        "#;
        let (programs, _) = parse_programs(src).unwrap();
        assert_eq!(programs[0].body().decision_count(), 2);
        let t = TransactionTree::from_program(&programs[0]);
        assert_eq!(t.leaves(t.root()).len(), 3);
    }

    #[test]
    fn error_missing_brace() {
        let err = parse_programs("program P { access a").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
    }

    #[test]
    fn error_single_arm_branch() {
        let err = parse_programs("program P { branch { { access a } } }").unwrap_err();
        assert!(err.message.contains("two arms"), "{err}");
    }

    #[test]
    fn error_empty_access() {
        let err = parse_programs("program P { access branch { { access a } { access b } } }")
            .unwrap_err();
        assert!(err.message.contains("at least one item"), "{err}");
    }

    #[test]
    fn error_bad_keyword_reports_line() {
        let err = parse_programs("program P {\n  write a\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("write"), "{err}");
    }

    #[test]
    fn error_unexpected_character() {
        let err = parse_programs("program P { access a; }").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
    }

    #[test]
    fn error_empty_input() {
        let err = parse_programs("  \n # only a comment\n").unwrap_err();
        assert!(err.message.contains("no programs"), "{err}");
        assert_eq!(
            err.to_string(),
            "parse error at end of input: input contains no programs"
        );
    }

    #[test]
    fn shared_interner_across_programs() {
        let (programs, interner) =
            parse_programs("program X { access a b } program Y { access b c }").unwrap();
        let xb = programs[0].data_set();
        let yb = programs[1].data_set();
        assert!(xb.intersects(&yb));
        assert_eq!(interner.len(), 3);
    }
}
