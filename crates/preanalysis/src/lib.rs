//! `rtx-preanalysis` — transaction program pre-analysis (§3.2.2 of the
//! paper).
//!
//! The Cost Conscious Approach rests on a *finer analysis of conflicts*
//! than classic pessimistic pre-analysis: a transaction program is modeled
//! as a **transaction tree** whose branches are *decision points*, and for
//! every node the sets `accesses`, `hasaccessed` and `mightaccess` are
//! precomputed. From those, two run-time relations are derived:
//!
//! * the three-valued **conflict** relation — conflict / conditionally
//!   conflict / don't conflict — used by `IOwait-schedule` to pick
//!   transactions that can safely run during IO waits;
//! * the three-valued **safety** relation — safe / unsafe / conditionally
//!   unsafe — used by the penalty-of-conflict priority term to price the
//!   work that scheduling a transaction would destroy.
//!
//! # Modules
//!
//! * [`sets`] — bitset item sets;
//! * [`program`] — the program AST and builders;
//! * [`dsl`] — a textual notation for programs (Figure 1 style);
//! * [`tree`] — transaction trees with the precomputed per-node sets;
//! * [`relations`] — the conflict and safety definitions;
//! * [`cursor`] — run-time execution position tracking;
//! * [`table`] — dense relation tables for a whole workload.
//!
//! # Example: the paper's Figure 1
//!
//! ```
//! use rtx_preanalysis::dsl::parse_programs;
//! use rtx_preanalysis::relations::{conflict, Conflict, Position};
//! use rtx_preanalysis::tree::TransactionTree;
//!
//! let (programs, _items) = parse_programs(r#"
//!     program A {
//!         access w
//!         branch {
//!             { access i1 i2 i3 }
//!             { access i4 i5 i6 }
//!         }
//!     }
//!     program B { access i1 i2 i3 }
//! "#).unwrap();
//!
//! let a = TransactionTree::from_program(&programs[0]);
//! let b = TransactionTree::from_program(&programs[1]);
//!
//! // Before A executes its decision point it *conditionally* conflicts
//! // with B; once it takes the first branch they conflict outright.
//! assert_eq!(conflict(Position::at_root(&a), Position::at_root(&b)),
//!            Conflict::Conditional);
//! let aa = a.find("Aa").unwrap();
//! assert_eq!(conflict(Position::at(&a, aa), Position::at_root(&b)),
//!            Conflict::Conflicts);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cursor;
pub mod dsl;
pub mod program;
pub mod relations;
pub mod sets;
pub mod table;
pub mod tree;

pub use cursor::{Cursor, NextAction};
pub use dsl::{parse_programs, Interner, ParseError};
pub use program::{Block, Program, ProgramBuilder, Step};
pub use relations::{conflict, safety, Conflict, Position, Safety};
pub use sets::{DataSet, ItemId};
pub use table::{AnalysisSet, TypeId};
pub use tree::{NodeId, TransactionTree};
