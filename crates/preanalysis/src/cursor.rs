//! Execution cursors: tracking a live transaction's position in its tree.
//!
//! The scheduler needs two views of a running transaction:
//!
//! * the **analytic** view — which tree node it has reached, from which all
//!   §3.2.2 relations are computed ("safety relationships are computed
//!   based on the assumption that a transaction accesses its data items
//!   when it begins and immediately after its decision points");
//! * the **operational** view — the next concrete item to lock/update,
//!   which the engine uses to drive execution item by item.
//!
//! A [`Cursor`] provides both, and supports `reset()` for restarts after an
//! abort.

use crate::relations::Position;
use crate::sets::{DataSet, ItemId};
use crate::tree::{NodeId, TransactionTree};

/// What a transaction does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextAction {
    /// Access (write-lock and update) this item.
    Access(ItemId),
    /// Execute a decision point with this many branches; the caller must
    /// pick one via [`Cursor::choose`].
    Decide(usize),
    /// The transaction has reached its commit point.
    Finished,
}

/// A cursor over one transaction's execution through its pre-analyzed tree.
#[derive(Debug, Clone)]
pub struct Cursor<'t> {
    tree: &'t TransactionTree,
    node: NodeId,
    /// Index of the next access within the current node's segment.
    step: usize,
    /// Items concretely accessed so far (operational view; a subset of the
    /// analytic `hasaccessed` of the current node).
    accessed: DataSet,
}

impl<'t> Cursor<'t> {
    /// Start a fresh execution at the tree root.
    pub fn new(tree: &'t TransactionTree) -> Self {
        Cursor {
            tree,
            node: tree.root(),
            step: 0,
            accessed: DataSet::new(),
        }
    }

    /// The tree being executed.
    pub fn tree(&self) -> &'t TransactionTree {
        self.tree
    }

    /// The node reached so far (the analytic refinement state).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This cursor's [`Position`] for relation queries.
    pub fn position(&self) -> Position<'t> {
        Position::at(self.tree, self.node)
    }

    /// Items concretely accessed so far.
    pub fn accessed(&self) -> &DataSet {
        &self.accessed
    }

    /// The analytic `hasaccessed` set of the current node (what the
    /// pre-analysis assumes has been touched by now).
    pub fn hasaccessed_analytic(&self) -> &DataSet {
        self.tree.hasaccessed(self.node)
    }

    /// Everything this transaction might still access (including what it
    /// already has).
    pub fn mightaccess(&self) -> &DataSet {
        self.tree.mightaccess(self.node)
    }

    /// What happens next.
    pub fn next_action(&self) -> NextAction {
        let segment = self.tree.segment(self.node);
        if self.step < segment.len() {
            NextAction::Access(segment[self.step])
        } else {
            let children = self.tree.children(self.node);
            if children.is_empty() {
                NextAction::Finished
            } else {
                NextAction::Decide(children.len())
            }
        }
    }

    /// Perform the pending access, recording the item. Returns the item.
    ///
    /// # Panics
    /// Panics if the next action is not an access.
    pub fn advance_access(&mut self) -> ItemId {
        match self.next_action() {
            NextAction::Access(item) => {
                self.accessed.insert(item);
                self.step += 1;
                item
            }
            other => panic!("advance_access called but next action is {other:?}"),
        }
    }

    /// Take branch `branch` of the pending decision point.
    ///
    /// # Panics
    /// Panics if the next action is not a decision, or the index is out of
    /// range.
    pub fn choose(&mut self, branch: usize) {
        match self.next_action() {
            NextAction::Decide(n) => {
                assert!(
                    branch < n,
                    "branch {branch} out of range (decision has {n})"
                );
                self.node = self.tree.children(self.node)[branch];
                self.step = 0;
            }
            other => panic!("choose called but next action is {other:?}"),
        }
    }

    /// True iff the transaction has reached its commit point.
    pub fn is_finished(&self) -> bool {
        matches!(self.next_action(), NextAction::Finished)
    }

    /// Reset to the root with no recorded accesses — a restart after an
    /// abort (the transaction re-executes from the beginning).
    pub fn reset(&mut self) {
        self.node = self.tree.root();
        self.step = 0;
        self.accessed.clear();
    }

    /// Number of accesses performed since the last (re)start.
    pub fn accesses_done(&self) -> usize {
        // step counts only the current segment; walk ancestors for totals.
        let mut total = self.step;
        let mut node = self.node;
        while let Some(parent) = self.tree.parent(node) {
            total += self.tree.segment(parent).len();
            node = parent;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, ProgramBuilder};

    fn branching_tree() -> TransactionTree {
        let p = ProgramBuilder::new("A")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)).access(ItemId(2)))
                    .branch(|b| b.access(ItemId(3)))
            })
            .build();
        TransactionTree::from_program(&p)
    }

    #[test]
    fn straight_line_walk() {
        let p = Program::straight_line("B", [ItemId(5), ItemId(6)]);
        let t = TransactionTree::from_program(&p);
        let mut c = Cursor::new(&t);
        assert_eq!(c.next_action(), NextAction::Access(ItemId(5)));
        assert_eq!(c.advance_access(), ItemId(5));
        assert_eq!(c.advance_access(), ItemId(6));
        assert!(c.is_finished());
        assert_eq!(c.accesses_done(), 2);
        assert!(c.accessed().contains(ItemId(5)));
    }

    #[test]
    fn branching_walk_left() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        assert_eq!(c.advance_access(), ItemId(0));
        assert_eq!(c.next_action(), NextAction::Decide(2));
        c.choose(0);
        assert_eq!(t.label(c.node()), "Aa");
        assert_eq!(c.advance_access(), ItemId(1));
        assert_eq!(c.advance_access(), ItemId(2));
        assert!(c.is_finished());
        assert_eq!(c.accesses_done(), 3);
    }

    #[test]
    fn branching_walk_right() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        c.advance_access();
        c.choose(1);
        assert_eq!(t.label(c.node()), "Ab");
        assert_eq!(c.advance_access(), ItemId(3));
        assert!(c.is_finished());
        assert!(!c.accessed().contains(ItemId(1)));
    }

    #[test]
    fn analytic_vs_operational_hasaccessed() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        // Analytically, reaching the root node means item 0 is accessed
        // even before the engine performs the access.
        assert!(c.hasaccessed_analytic().contains(ItemId(0)));
        assert!(!c.accessed().contains(ItemId(0)));
        c.advance_access();
        assert!(c.accessed().contains(ItemId(0)));
        // Operational set is always a subset of the analytic one.
        assert!(c.accessed().is_subset(c.hasaccessed_analytic()));
    }

    #[test]
    fn mightaccess_narrows_at_decisions() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        assert_eq!(c.mightaccess().len(), 4); // {0,1,2,3}
        c.advance_access();
        c.choose(0);
        assert_eq!(c.mightaccess().len(), 3); // {0,1,2}
        assert!(!c.mightaccess().contains(ItemId(3)));
    }

    #[test]
    fn reset_restores_fresh_state() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        c.advance_access();
        c.choose(0);
        c.advance_access();
        c.reset();
        assert_eq!(c.node(), t.root());
        assert_eq!(c.accesses_done(), 0);
        assert!(c.accessed().is_empty());
        assert_eq!(c.next_action(), NextAction::Access(ItemId(0)));
    }

    #[test]
    #[should_panic(expected = "advance_access called")]
    fn advance_at_decision_panics() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        c.advance_access();
        c.advance_access(); // next action is Decide
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_branch_panics() {
        let t = branching_tree();
        let mut c = Cursor::new(&t);
        c.advance_access();
        c.choose(5);
    }

    #[test]
    #[should_panic(expected = "choose called")]
    fn choose_without_decision_panics() {
        let p = Program::straight_line("B", [ItemId(5)]);
        let t = TransactionTree::from_program(&p);
        let mut c = Cursor::new(&t);
        c.choose(0);
    }
}
