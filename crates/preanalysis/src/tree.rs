//! Transaction trees (§3.2.2, Figures 2 and 3).
//!
//! "We can model each transaction as a tree, with the root labeled by the
//! name of the transaction program. At each decision point, the tree
//! branches … These nodes represent refinements of what we know about the
//! transaction's execution."
//!
//! A node covers the *segment* of accesses from the previous decision point
//! up to (but excluding) the next one. For every node `P` the tree
//! precomputes, exactly as defined in the paper:
//!
//! * `accesses(P)` — items accessed within the segment;
//! * `hasaccessed(P) = ⋃_{k on root→P path} accesses(k)`;
//! * `mightaccess(P)` — `hasaccessed(P)` at a leaf, else the union of the
//!   children's `mightaccess`;
//! * `leaves(P)` — the leaves of the subtree rooted at `P`.
//!
//! The paper notes a loop-free program is really a DAG but uses a tree "for
//! the sake of simplicity"; we do the same, duplicating any straight-line
//! continuation that follows a decision point into each branch.

use std::fmt;

use crate::program::{Program, Step};
use crate::sets::{DataSet, ItemId};

/// Index of a node within a [`TransactionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node of any tree.
    pub const ROOT: NodeId = NodeId(0);
}

#[derive(Debug, Clone)]
struct Node {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Ordered accesses of this segment (duplicates preserved — they cost
    /// execution time even though the *set* collapses them).
    segment: Vec<ItemId>,
    accesses: DataSet,
    hasaccessed: DataSet,
    mightaccess: DataSet,
    leaves: Vec<NodeId>,
}

/// The pre-analyzed tree of one transaction program.
#[derive(Debug, Clone)]
pub struct TransactionTree {
    name: String,
    nodes: Vec<Node>,
}

impl TransactionTree {
    /// Build (pre-analyze) the tree of `program`.
    pub fn from_program(program: &Program) -> Self {
        let mut tree = TransactionTree {
            name: program.name().to_string(),
            nodes: Vec::new(),
        };
        // The root covers the program body from the start.
        tree.build_node(
            program.name().to_string(),
            None,
            program.body().steps(),
            &[],
        );
        tree.compute_hasaccessed(NodeId::ROOT, DataSet::new());
        tree.compute_mightaccess_and_leaves(NodeId::ROOT);
        tree
    }

    /// Recursively build the node covering `steps` followed by the
    /// continuation stack `rest` (segments that follow enclosing decision
    /// points, innermost last). Returns the new node's id.
    fn build_node(
        &mut self,
        label: String,
        parent: Option<NodeId>,
        steps: &[Step],
        rest: &[&[Step]],
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label,
            parent,
            children: Vec::new(),
            segment: Vec::new(),
            accesses: DataSet::new(),
            hasaccessed: DataSet::new(),
            mightaccess: DataSet::new(),
            leaves: Vec::new(),
        });

        // Walk the flattened step stream: `steps` then each level of `rest`.
        let mut stream: Vec<&[Step]> = Vec::with_capacity(rest.len() + 1);
        stream.push(steps);
        stream.extend(rest.iter().copied());

        let mut level = 0usize;
        let mut pos = 0usize;
        loop {
            if level >= stream.len() {
                break; // no decision point remains: this node is a leaf
            }
            if pos >= stream[level].len() {
                level += 1;
                pos = 0;
                continue;
            }
            match &stream[level][pos] {
                Step::Access(item) => {
                    self.nodes[id.0 as usize].segment.push(*item);
                    self.nodes[id.0 as usize].accesses.insert(*item);
                    pos += 1;
                }
                Step::Decision(branches) => {
                    // Everything after this decision (at this level and the
                    // outer levels) becomes the continuation of each branch.
                    let continuation: Vec<&[Step]> = std::iter::once(&stream[level][pos + 1..])
                        .chain(stream[level + 1..].iter().copied())
                        .collect();
                    let parent_label = self.nodes[id.0 as usize].label.clone();
                    for (bi, branch) in branches.iter().enumerate() {
                        let child_label = format!("{parent_label}{}", branch_suffix(bi));
                        let child =
                            self.build_node(child_label, Some(id), branch.steps(), &continuation);
                        self.nodes[id.0 as usize].children.push(child);
                    }
                    return id;
                }
            }
        }
        id
    }

    fn compute_hasaccessed(&mut self, node: NodeId, inherited: DataSet) {
        let mut has = inherited;
        has.union_with(&self.nodes[node.0 as usize].accesses);
        self.nodes[node.0 as usize].hasaccessed = has.clone();
        let children = self.nodes[node.0 as usize].children.clone();
        for child in children {
            self.compute_hasaccessed(child, has.clone());
        }
    }

    fn compute_mightaccess_and_leaves(&mut self, node: NodeId) {
        let children = self.nodes[node.0 as usize].children.clone();
        if children.is_empty() {
            // "mightaccess(Tp) = hasaccessed(Tp), P a leaf"
            let has = self.nodes[node.0 as usize].hasaccessed.clone();
            self.nodes[node.0 as usize].mightaccess = has;
            self.nodes[node.0 as usize].leaves = vec![node];
            return;
        }
        let mut might = DataSet::new();
        let mut leaves = Vec::new();
        for child in children {
            self.compute_mightaccess_and_leaves(child);
            might.union_with(&self.nodes[child.0 as usize].mightaccess);
            leaves.extend_from_slice(&self.nodes[child.0 as usize].leaves);
        }
        self.nodes[node.0 as usize].mightaccess = might;
        self.nodes[node.0 as usize].leaves = leaves;
    }

    /// The program/tree name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// The node's label, e.g. `"A"`, `"Aa"`, `"Ab"` as in Figure 2.
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].label
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.0 as usize].parent
    }

    /// Children of `node`, one per branch of its trailing decision point.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0 as usize].children
    }

    /// True iff `node` will execute no further decision points.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].children.is_empty()
    }

    /// `accesses(node)`: items accessed between this node's start and its
    /// next decision point.
    pub fn accesses(&self, node: NodeId) -> &DataSet {
        &self.nodes[node.0 as usize].accesses
    }

    /// The ordered access sequence of the node's segment (with duplicates).
    pub fn segment(&self, node: NodeId) -> &[ItemId] {
        &self.nodes[node.0 as usize].segment
    }

    /// `hasaccessed(node)`: everything accessed from the root up to and
    /// including this node's segment.
    pub fn hasaccessed(&self, node: NodeId) -> &DataSet {
        &self.nodes[node.0 as usize].hasaccessed
    }

    /// `mightaccess(node)`: everything the transaction might access given
    /// it has reached this node.
    pub fn mightaccess(&self, node: NodeId) -> &DataSet {
        &self.nodes[node.0 as usize].mightaccess
    }

    /// `leaves(node)`: the leaves of the subtree rooted at `node`.
    pub fn leaves(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.0 as usize].leaves
    }

    /// Iterate all node ids in construction (pre-)order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Find a node by its label.
    pub fn find(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }
}

fn branch_suffix(index: usize) -> String {
    // a, b, …, z, then numeric suffixes for pathological arities.
    if index < 26 {
        char::from(b'a' + index as u8).to_string()
    } else {
        format!("#{index}")
    }
}

impl fmt::Display for TransactionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &TransactionTree,
            node: NodeId,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(
                f,
                "{:indent$}{} accesses={} might={}",
                "",
                tree.label(node),
                tree.accesses(node),
                tree.mightaccess(node),
                indent = depth * 2
            )?;
            for &c in tree.children(node) {
                rec(tree, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, self.root(), 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    /// Figure 1/2's program A: `access w; if … {i1,i2,i3} else {i4,i5,i6}`.
    fn figure2_a() -> TransactionTree {
        let p = ProgramBuilder::new("A")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)).access(ItemId(2)).access(ItemId(3)))
                    .branch(|b| b.access(ItemId(4)).access(ItemId(5)).access(ItemId(6)))
            })
            .build();
        TransactionTree::from_program(&p)
    }

    fn figure2_b() -> TransactionTree {
        let p = Program::straight_line("B", [ItemId(1), ItemId(2), ItemId(3)]);
        TransactionTree::from_program(&p)
    }

    #[test]
    fn figure2_structure() {
        let a = figure2_a();
        assert_eq!(a.node_count(), 3);
        let root = a.root();
        assert_eq!(a.label(root), "A");
        assert!(!a.is_leaf(root));
        let children = a.children(root).to_vec();
        assert_eq!(children.len(), 2);
        assert_eq!(a.label(children[0]), "Aa");
        assert_eq!(a.label(children[1]), "Ab");
        assert!(a.is_leaf(children[0]));
        assert_eq!(a.parent(children[0]), Some(root));
        assert_eq!(a.parent(root), None);
    }

    #[test]
    fn figure2_sets() {
        let a = figure2_a();
        let root = a.root();
        let aa = a.find("Aa").unwrap();
        let ab = a.find("Ab").unwrap();
        // Root accessed only w (item 0) before the decision point.
        assert_eq!(a.accesses(root), &DataSet::from_items([ItemId(0)]));
        // mightaccess(A) = {w, i1..i6}
        assert_eq!(a.mightaccess(root).len(), 7);
        // Aa: accesses {i1,i2,i3}; hasaccessed {w,i1,i2,i3} = mightaccess.
        assert_eq!(a.accesses(aa).len(), 3);
        assert_eq!(a.hasaccessed(aa).len(), 4);
        assert_eq!(a.mightaccess(aa), a.hasaccessed(aa));
        assert!(a.mightaccess(ab).contains(ItemId(6)));
        assert!(!a.mightaccess(ab).contains(ItemId(1)));
    }

    #[test]
    fn single_vertex_tree_for_straight_line() {
        // "Since program B contains no decision points, its transaction
        // tree consists of a single vertex."
        let b = figure2_b();
        assert_eq!(b.node_count(), 1);
        assert!(b.is_leaf(b.root()));
        assert_eq!(b.leaves(b.root()), &[b.root()]);
        assert_eq!(b.mightaccess(b.root()), b.hasaccessed(b.root()));
        assert_eq!(b.segment(b.root()).len(), 3);
    }

    #[test]
    fn leaves_collected_per_subtree() {
        let a = figure2_a();
        assert_eq!(a.leaves(a.root()).len(), 2);
        let aa = a.find("Aa").unwrap();
        assert_eq!(a.leaves(aa), &[aa]);
    }

    /// Figure 3's auxiliary tree: root accesses {A}; first decision splits
    /// into segments {B} and {C(?)}… we model the published access sets:
    /// T21 {A}; T22 {B}, T23 {B}? — the figure's exact labels are garbled in
    /// the source scan, so we test the *invariants* it illustrates instead:
    /// hasaccessed grows monotonically along a path, and mightaccess of an
    /// internal node is the union over its children.
    #[test]
    fn figure3_invariants_on_two_level_tree() {
        let p = ProgramBuilder::new("T2")
            .access(ItemId(0)) // A
            .decision(|d| {
                d.branch(|b| {
                    b.access(ItemId(1)).decision(|d2| {
                        d2.branch(|b2| b2.access(ItemId(2))) // C
                            .branch(|b2| b2.access(ItemId(3))) // D
                    })
                })
                .branch(|b| {
                    b.access(ItemId(9)).decision(|d2| {
                        d2.branch(|b2| b2.access(ItemId(2)))
                            .branch(|b2| b2.access(ItemId(3)))
                    })
                })
            })
            .build();
        let t = TransactionTree::from_program(&p);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.leaves(t.root()).len(), 4);
        for node in t.node_ids() {
            // hasaccessed(child) ⊇ hasaccessed(parent)
            if let Some(parent) = t.parent(node) {
                assert!(t.hasaccessed(parent).is_subset(t.hasaccessed(node)));
            }
            // hasaccessed ⊆ mightaccess everywhere
            assert!(t.hasaccessed(node).is_subset(t.mightaccess(node)));
            // internal mightaccess = union of children's
            if !t.is_leaf(node) {
                let mut union = DataSet::new();
                for &c in t.children(node) {
                    union.union_with(t.mightaccess(c));
                }
                assert_eq!(&union, t.mightaccess(node));
            }
        }
    }

    #[test]
    fn continuation_after_decision_is_duplicated() {
        // access a; if {b} else {c}; access z  — z must appear in both
        // branches' segments (tree duplication of the DAG continuation).
        let p = ProgramBuilder::new("C")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)))
                    .branch(|b| b.access(ItemId(2)))
            })
            .access(ItemId(9))
            .build();
        let t = TransactionTree::from_program(&p);
        let ca = t.find("Ca").unwrap();
        let cb = t.find("Cb").unwrap();
        assert!(t.accesses(ca).contains(ItemId(9)));
        assert!(t.accesses(cb).contains(ItemId(9)));
        assert_eq!(t.segment(ca), &[ItemId(1), ItemId(9)]);
        assert_eq!(t.segment(cb), &[ItemId(2), ItemId(9)]);
    }

    #[test]
    fn nested_continuations_flow_to_inner_branches() {
        // access a; if { if {b} else {c}; access m } else {d}; access z
        let p = ProgramBuilder::new("N")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| {
                    b.decision(|d2| {
                        d2.branch(|b2| b2.access(ItemId(1)))
                            .branch(|b2| b2.access(ItemId(2)))
                    })
                    .access(ItemId(5))
                })
                .branch(|b| b.access(ItemId(3)))
            })
            .access(ItemId(9))
            .build();
        let t = TransactionTree::from_program(&p);
        // Leaf under branch a → sub-branch a must include m (5) and z (9).
        let naa = t.find("Naa").unwrap();
        assert_eq!(t.segment(naa), &[ItemId(1), ItemId(5), ItemId(9)]);
        let nb = t.find("Nb").unwrap();
        assert_eq!(t.segment(nb), &[ItemId(3), ItemId(9)]);
    }

    #[test]
    fn labels_for_many_branches() {
        let mut builder = ProgramBuilder::new("W").access(ItemId(0));
        builder = builder.decision(|mut d| {
            for i in 0..30 {
                d = d.branch(move |b| b.access(ItemId(i + 1)));
            }
            d
        });
        let t = TransactionTree::from_program(&builder.build());
        assert_eq!(t.children(t.root()).len(), 30);
        assert!(t.find("Wa").is_some());
        assert!(t.find("Wz").is_some());
        assert!(t.find("W#26").is_some());
    }

    #[test]
    fn display_renders_whole_tree() {
        let a = figure2_a();
        let s = format!("{a}");
        assert!(s.contains("Aa"));
        assert!(s.contains("Ab"));
    }
}
