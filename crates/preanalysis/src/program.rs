//! Transaction programs.
//!
//! A transaction program is a loop-free program whose only analyzed
//! operations are data accesses and *decision points* — conditional
//! statements at which the transaction "commits itself to accessing a
//! subset of its data set" (§3.2.2, Figure 1). We model a program as a
//! block of steps, where each step either accesses an item or branches
//! into alternative sub-blocks.

use std::fmt;

use crate::sets::{DataSet, ItemId};

/// One step of a transaction program block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Write-access a database item (the paper analyzes write locks only).
    Access(ItemId),
    /// A decision point with two or more alternative continuations.
    Decision(Vec<Block>),
}

/// A straight-line sequence of steps.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    steps: Vec<Step>,
}

impl Block {
    /// Empty block.
    pub fn new() -> Self {
        Block::default()
    }

    /// The steps of the block.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Append an access step.
    pub fn push_access(&mut self, item: ItemId) {
        self.steps.push(Step::Access(item));
    }

    /// Append a decision point.
    pub fn push_decision(&mut self, branches: Vec<Block>) {
        self.steps.push(Step::Decision(branches));
    }

    /// All items this block (including nested branches) might access.
    pub fn all_items(&self) -> DataSet {
        let mut out = DataSet::new();
        self.collect_items(&mut out);
        out
    }

    fn collect_items(&self, out: &mut DataSet) {
        for step in &self.steps {
            match step {
                Step::Access(item) => {
                    out.insert(*item);
                }
                Step::Decision(branches) => {
                    for b in branches {
                        b.collect_items(out);
                    }
                }
            }
        }
    }

    /// Number of decision points, including nested ones.
    pub fn decision_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Access(_) => 0,
                Step::Decision(branches) => {
                    1 + branches.iter().map(Block::decision_count).sum::<usize>()
                }
            })
            .sum()
    }

    /// Longest possible number of accesses along any execution path.
    pub fn max_path_accesses(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Access(_) => 1,
                Step::Decision(branches) => branches
                    .iter()
                    .map(Block::max_path_accesses)
                    .max()
                    .unwrap_or(0),
            })
            .sum()
    }
}

/// A named, pre-analyzable transaction program (one of the paper's
/// "transaction types").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    name: String,
    body: Block,
}

impl Program {
    /// Create a program from its name and body.
    pub fn new(name: impl Into<String>, body: Block) -> Self {
        Program {
            name: name.into(),
            body,
        }
    }

    /// A straight-line program accessing the given items in order — the
    /// shape used by the paper's simulation workloads, which have no
    /// decision points.
    pub fn straight_line(name: impl Into<String>, items: impl IntoIterator<Item = ItemId>) -> Self {
        let mut body = Block::new();
        for item in items {
            body.push_access(item);
        }
        Program::new(name, body)
    }

    /// The program's name (used as the transaction-tree root label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program body.
    pub fn body(&self) -> &Block {
        &self.body
    }

    /// The program's *data set*: every item any execution path might
    /// access.
    pub fn data_set(&self) -> DataSet {
        self.body.all_items()
    }

    /// True iff the program has no decision points.
    pub fn is_straight_line(&self) -> bool {
        self.body.decision_count() == 0
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program {} {}", self.name, self.data_set())
    }
}

/// Fluent builder for programs with nested decision points.
///
/// ```
/// use rtx_preanalysis::program::ProgramBuilder;
/// use rtx_preanalysis::sets::ItemId;
///
/// // Figure 1's program A: access w, then branch on (w > 100).
/// let a = ProgramBuilder::new("A")
///     .access(ItemId(0)) // w
///     .decision(|d| {
///         d.branch(|b| b.access(ItemId(1)).access(ItemId(2)).access(ItemId(3)))
///          .branch(|b| b.access(ItemId(4)).access(ItemId(5)).access(ItemId(6)))
///     })
///     .build();
/// assert_eq!(a.data_set().len(), 7);
/// assert!(!a.is_straight_line());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    block: BlockBuilder,
}

/// Builder for one block; obtained inside [`ProgramBuilder::decision`]
/// closures.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    block: Block,
}

impl BlockBuilder {
    /// Append an access.
    pub fn access(mut self, item: ItemId) -> Self {
        self.block.push_access(item);
        self
    }

    /// Append a nested decision point.
    pub fn decision<F>(mut self, f: F) -> Self
    where
        F: FnOnce(DecisionBuilder) -> DecisionBuilder,
    {
        let d = f(DecisionBuilder::default());
        self.block.push_decision(d.branches);
        self
    }
}

/// Builder for the branches of one decision point.
#[derive(Debug, Default)]
pub struct DecisionBuilder {
    branches: Vec<Block>,
}

impl DecisionBuilder {
    /// Add one branch, built by the closure.
    pub fn branch<F>(mut self, f: F) -> Self
    where
        F: FnOnce(BlockBuilder) -> BlockBuilder,
    {
        let b = f(BlockBuilder::default());
        self.branches.push(b.block);
        self
    }
}

impl ProgramBuilder {
    /// Start building a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            block: BlockBuilder::default(),
        }
    }

    /// Append an access.
    pub fn access(mut self, item: ItemId) -> Self {
        self.block = self.block.access(item);
        self
    }

    /// Append a decision point.
    pub fn decision<F>(mut self, f: F) -> Self
    where
        F: FnOnce(DecisionBuilder) -> DecisionBuilder,
    {
        self.block = self.block.decision(f);
        self
    }

    /// Finish, producing the [`Program`].
    ///
    /// # Panics
    /// Panics if any decision point has fewer than two branches — a
    /// one-armed "decision" is not a decision and would corrupt the
    /// transaction tree's labelling.
    pub fn build(self) -> Program {
        fn validate(block: &Block) {
            for step in block.steps() {
                if let Step::Decision(branches) = step {
                    assert!(
                        branches.len() >= 2,
                        "decision points need at least two branches"
                    );
                    for b in branches {
                        validate(b);
                    }
                }
            }
        }
        validate(&self.block.block);
        Program::new(self.name, self.block.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_a() -> Program {
        ProgramBuilder::new("A")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| b.access(ItemId(1)).access(ItemId(2)).access(ItemId(3)))
                    .branch(|b| b.access(ItemId(4)).access(ItemId(5)).access(ItemId(6)))
            })
            .build()
    }

    fn figure1_b() -> Program {
        Program::straight_line("B", [ItemId(1), ItemId(2), ItemId(3)])
    }

    #[test]
    fn straight_line_program() {
        let b = figure1_b();
        assert!(b.is_straight_line());
        assert_eq!(b.data_set().len(), 3);
        assert_eq!(b.body().decision_count(), 0);
        assert_eq!(b.body().max_path_accesses(), 3);
    }

    #[test]
    fn branching_program() {
        let a = figure1_a();
        assert!(!a.is_straight_line());
        assert_eq!(a.data_set().len(), 7);
        assert_eq!(a.body().decision_count(), 1);
        // longest path: w + 3 items
        assert_eq!(a.body().max_path_accesses(), 4);
    }

    #[test]
    fn nested_decisions() {
        let p = ProgramBuilder::new("N")
            .access(ItemId(0))
            .decision(|d| {
                d.branch(|b| {
                    b.access(ItemId(1)).decision(|d2| {
                        d2.branch(|b2| b2.access(ItemId(2)))
                            .branch(|b2| b2.access(ItemId(3)))
                    })
                })
                .branch(|b| b.access(ItemId(4)))
            })
            .build();
        assert_eq!(p.body().decision_count(), 2);
        assert_eq!(p.data_set().len(), 5);
        assert_eq!(p.body().max_path_accesses(), 3); // 0 → 1 → (2|3)
    }

    #[test]
    #[should_panic(expected = "at least two branches")]
    fn single_branch_decision_rejected() {
        ProgramBuilder::new("bad")
            .decision(|d| d.branch(|b| b.access(ItemId(1))))
            .build();
    }

    #[test]
    fn duplicate_accesses_collapse_in_data_set() {
        let p = Program::straight_line("D", [ItemId(1), ItemId(1), ItemId(2)]);
        assert_eq!(p.data_set().len(), 2);
        assert_eq!(p.body().max_path_accesses(), 3);
    }

    #[test]
    fn display_includes_name_and_items() {
        let p = figure1_b();
        let s = format!("{p}");
        assert!(s.contains("program B"));
        assert!(s.contains("i1"));
    }
}
