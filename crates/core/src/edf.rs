//! EDF-HP: Earliest Deadline First with High Priority conflict resolution
//! — the paper's baseline (Abbott & Garcia-Molina 1988).
//!
//! A dynamic priority assignment with *static* evaluation: the priority is
//! just the (negated) absolute deadline, fixed at arrival. Conflicts are
//! resolved by HP (the higher-priority transaction wins, aborting the
//! holder), and IO waits are filled with whatever ready transaction has
//! the highest priority — the source of the noncontributing executions
//! §3.3.2 describes.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

/// The EDF-HP baseline policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfHp;

impl Policy for EdfHp {
    fn name(&self) -> &str {
        "EDF-HP"
    }

    fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
        Priority(-txn.deadline.as_ms())
    }

    fn depends_on(&self) -> PriorityDeps {
        // The deadline is fixed at arrival: compute once, cache forever.
        PriorityDeps::Static
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, deadline_ms: f64) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(deadline_ms),
            resource_time: SimDuration::from_ms(80.0),
            items: vec![ItemId(0)],
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: DataSet::from_items([ItemId(0)]),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn earlier_deadline_wins() {
        let txns = vec![mk(0, 50.0), mk(1, 200.0)];
        let v = SystemView::new(SimTime::ZERO, &txns, SimDuration::ZERO);
        assert!(EdfHp.priority(&txns[0], &v) > EdfHp.priority(&txns[1], &v));
    }

    #[test]
    fn no_iowait_restriction() {
        assert!(!EdfHp.iowait_restrict());
        assert_eq!(EdfHp.name(), "EDF-HP");
    }
}
