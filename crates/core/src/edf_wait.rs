//! EDF-Wait: the `w → ∞` limit of CCA (§3.3.3).
//!
//! "If penalty-weight is ∞ (i.e a value large enough so that transaction
//! abort may not happen), it produces the EDF-Wait for main memory
//! database": any transaction whose execution would destroy partially
//! executed work is deprioritized below every conflict-free transaction,
//! so aborts effectively never happen — at the price of the excessive
//! waiting (and the deadline pressure) that motivates CCA's finite `w`.
//!
//! Implemented as a lexicographic priority: conflict-free transactions
//! first (by deadline), then conflicting ones (by deadline), realised with
//! a penalty weight large enough that any non-zero penalty dominates any
//! deadline in the simulated horizon.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

use crate::penalty::conflicting_victims;

/// A weight that dwarfs any deadline value (ms) reachable in a run.
const EFFECTIVE_INFINITY_MS: f64 = 1e12;

/// The EDF-Wait limit policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfWait;

impl Policy for EdfWait {
    fn name(&self) -> &str {
        "EDF-Wait"
    }

    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority {
        // Using the victim *count* rather than the penalty duration keeps
        // the ordering pure-lexicographic regardless of service times.
        let victims = conflicting_victims(txn, view) as f64;
        Priority(-(txn.deadline.as_ms() + victims * EFFECTIVE_INFINITY_MS))
    }

    fn iowait_restrict(&self) -> bool {
        true
    }

    fn conflict_clear_raise(&self, _cleared: &Transaction, _view: &SystemView<'_>) -> f64 {
        // The clear removes at most one victim from each other
        // transaction's count — one lexicographic step.
        EFFECTIVE_INFINITY_MS
    }

    fn depends_on(&self) -> PriorityDeps {
        // The victim count reads P-list membership and access sets, and
        // nothing else about other transactions — exactly the set of
        // unsafe partials that per-transaction conflict stamps track, so
        // targeted invalidation is sufficient. Fall-monotonicity holds
        // trivially: growth can only add victims (priority falls, which
        // the lazy heap tolerates), a clear removes them (eager walk),
        // and there is no dependence on the victims' service at all — a
        // cached value survives clock advances bit-exactly, which is a
        // zero runner fall rate: no key ever needs the timed half.
        PriorityDeps::ConflictState {
            runner_fall_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, deadline_ms: f64, might: &[u32], accessed: &[u32]) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(deadline_ms),
            resource_time: SimDuration::from_ms(80.0),
            items: might.iter().map(|&i| ItemId(i)).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: might.iter().map(|&i| ItemId(i)).collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: accessed.iter().map(|&i| ItemId(i)).collect(),
            written: DataSet::new(),
            service: SimDuration::from_ms(10.0),
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn any_conflict_loses_to_any_deadline() {
        let txns = vec![
            mk(0, 10.0, &[1], &[1]),   // partial
            mk(1, 20.0, &[1], &[]),    // conflicts, urgent deadline
            mk(2, 99999.0, &[9], &[]), // conflict-free, distant deadline
        ];
        let v = SystemView::new(SimTime::ZERO, &txns, SimDuration::from_ms(4.0));
        let p_conflicting = EdfWait.priority(&txns[1], &v);
        let p_free = EdfWait.priority(&txns[2], &v);
        assert!(
            p_free > p_conflicting,
            "EDF-Wait must defer conflicting work regardless of deadlines"
        );
    }

    #[test]
    fn ties_fall_back_to_deadline() {
        let txns = vec![mk(0, 50.0, &[1], &[]), mk(1, 100.0, &[2], &[])];
        let v = SystemView::new(SimTime::ZERO, &txns, SimDuration::ZERO);
        assert!(EdfWait.priority(&txns[0], &v) > EdfWait.priority(&txns[1], &v));
    }

    #[test]
    fn restricts_iowait() {
        assert!(EdfWait.iowait_restrict());
        assert_eq!(EdfWait.name(), "EDF-Wait");
    }
}
