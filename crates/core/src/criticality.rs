//! Multiple criticalness (§6 future work).
//!
//! "In this paper we assumed that we only have exclusive locks and same
//! criticalness in the system. The effect of shared locks in transactions
//! and multiple criticalness will affect the performance of RTDBS."
//!
//! [`Criticality`] lifts any base policy to a class-aware one with
//! **lexicographic** semantics: a higher-criticality transaction always
//! outranks a lower one; within a class the base policy decides. This is
//! the standard treatment of criticality in the RTDB literature (value
//! classes), and it composes with HP/wound-wait unchanged: a critical
//! transaction wounds its way past non-critical lock holders.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

/// Priority head-room per criticality class: larger than any |deadline +
/// w·penalty| value reachable in a simulated horizon, so classes never
/// interleave.
const CLASS_BAND: f64 = 1e15;

/// Class-aware wrapper around a base policy.
#[derive(Debug, Clone)]
pub struct Criticality<P> {
    inner: P,
    name: String,
}

impl<P: Policy> Criticality<P> {
    /// Wrap `inner` with lexicographic criticality classes.
    pub fn new(inner: P) -> Self {
        let name = format!("Crit<{}>", inner.name());
        Criticality { inner, name }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for Criticality<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority {
        let base = self.inner.priority(txn, view);
        Priority(base.0 + txn.criticality as f64 * CLASS_BAND)
    }

    fn iowait_restrict(&self) -> bool {
        self.inner.iowait_restrict()
    }

    fn conflict_clear_raise(&self, cleared: &Transaction, view: &SystemView<'_>) -> f64 {
        // The class offset is a per-transaction constant: it cancels in
        // any before/after difference, so the base policy's rise bound is
        // the wrapper's rise bound.
        self.inner.conflict_clear_raise(cleared, view)
    }

    fn depends_on(&self) -> PriorityDeps {
        // The class offset is static; the base policy's dependencies are
        // the wrapper's dependencies. Adding a per-transaction constant
        // preserves the base policy's `ConflictState` invalidation
        // contract (including its runner fall rate — constants drop out
        // of any difference), so the delegated hint stays valid under
        // targeted (per-pair) invalidation too.
        self.inner.depends_on()
    }

    fn time_invariant_key(&self, txn: &Transaction) -> Option<f64> {
        // base ≈ now + K_inner  ⇒  wrapped ≈ now + (K_inner + class·band).
        // The extra addition re-rounds, but the slack index only needs
        // `K` to order candidates and bound the exact value to within a
        // few ulp of the largest magnitude involved — the engine's
        // validation slack covers the band term's rounding.
        self.inner
            .time_invariant_key(txn)
            .map(|k| k + txn.criticality as f64 * CLASS_BAND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cca, EdfHp};
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, deadline_ms: f64, criticality: u8) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(deadline_ms),
            resource_time: SimDuration::from_ms(80.0),
            items: vec![ItemId(0)],
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: DataSet::from_items([ItemId(0)]),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    fn view(txns: &[Transaction]) -> SystemView<'_> {
        SystemView::new(SimTime::ZERO, txns, SimDuration::from_ms(4.0))
    }

    #[test]
    fn higher_class_always_wins() {
        let p = Criticality::new(EdfHp);
        // Critical txn with a *much later* deadline still outranks.
        let txns = vec![mk(0, 10.0, 0), mk(1, 1_000_000.0, 1)];
        let v = view(&txns);
        assert!(p.priority(&txns[1], &v) > p.priority(&txns[0], &v));
    }

    #[test]
    fn within_class_base_policy_decides() {
        let p = Criticality::new(EdfHp);
        let txns = vec![mk(0, 10.0, 1), mk(1, 20.0, 1)];
        let v = view(&txns);
        assert!(p.priority(&txns[0], &v) > p.priority(&txns[1], &v));
    }

    #[test]
    fn inherits_iowait_restriction() {
        assert!(Criticality::new(Cca::base()).iowait_restrict());
        assert!(!Criticality::new(EdfHp).iowait_restrict());
        assert_eq!(Criticality::new(EdfHp).name(), "Crit<EDF-HP>");
        assert_eq!(Criticality::new(Cca::base()).inner().weight(), 1.0);
    }

    #[test]
    fn class_zero_is_transparent() {
        let wrapped = Criticality::new(EdfHp);
        let txns = vec![mk(0, 123.0, 0)];
        let v = view(&txns);
        assert_eq!(wrapped.priority(&txns[0], &v), EdfHp.priority(&txns[0], &v));
    }
}
