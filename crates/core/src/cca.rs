//! The Cost Conscious Approach — the paper's contribution.
//!
//! Dynamic priority assignment with continuous evaluation:
//!
//! ```text
//! Pr(Ti) = -(di + w · TLi)
//! ```
//!
//! where `di` is the deadline, `TLi` the penalty of conflict and `w` the
//! penalty-weight parameter. With `w = 0` this degenerates to EDF-HP; as
//! `w → ∞` it approaches EDF-Wait (transactions whose execution would
//! destroy partially executed work are deferred essentially forever).
//! On disk-resident databases CCA additionally enables the
//! `IOwait-schedule` step, which only runs transactions compatible with
//! every partially executed transaction during IO waits, eliminating
//! noncontributing executions.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

use crate::penalty::penalty_of_conflict;

/// The CCA scheduling policy.
#[derive(Debug, Clone)]
pub struct Cca {
    /// The penalty-weight `w` ("will be [adjusted] accordingly to get the
    /// best performance"; Table 1 uses 1).
    weight: f64,
    name: String,
}

impl Cca {
    /// CCA with the given penalty weight.
    ///
    /// # Panics
    /// Panics if `weight` is negative, NaN or infinite (use
    /// [`crate::edf_wait::EdfWait`] for the `w → ∞` limit).
    pub fn new(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "penalty weight must be finite and non-negative"
        );
        Cca {
            weight,
            name: format!("CCA(w={weight})"),
        }
    }

    /// The base-parameter CCA of Tables 1 and 2 (`w = 1`).
    pub fn base() -> Self {
        Cca::new(1.0)
    }

    /// The penalty weight in use.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Default for Cca {
    fn default() -> Self {
        Cca::base()
    }
}

impl Policy for Cca {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority {
        // Procedure Pr: "calculate (deadline + (penalty-weight × penalty of
        // conflict)); take negative value".
        let penalty_ms = penalty_of_conflict(txn, view).as_ms();
        Priority(-(txn.deadline.as_ms() + self.weight * penalty_ms))
    }

    fn iowait_restrict(&self) -> bool {
        true
    }

    fn conflict_clear_raise(&self, cleared: &Transaction, view: &SystemView<'_>) -> f64 {
        // A victim of the clear loses exactly `w · (effective_service +
        // abort_cost)` of penalty — the term `cleared` contributed — and
        // a non-victim loses nothing, so this bound is tight.
        self.weight * (cleared.effective_service(view.now) + view.abort_cost).as_ms()
    }

    fn depends_on(&self) -> PriorityDeps {
        // The penalty term reads the P-list membership, the victims'
        // access sets and their effective service: time, own state and
        // conflict state all matter. It satisfies both halves of the
        // `ConflictState` invalidation contract: other transactions
        // enter only through `is_unsafe_with` (which partials would be
        // destroyed) and those partials' effective service (shape), and
        // since every penalty term is nonnegative and grows with access
        // growth and the clock, only a partial's clear can *raise* the
        // priority (fall-monotonicity, w >= 0).
        //
        // The only penalty term that moves with the clock is the
        // *runner's* effective service (Running + Compute), which grows
        // 1 ms per ms — so every priority unsafe w.r.t. the runner falls
        // at exactly `w` per ms of runner compute time, and all other
        // priorities hold still. That is the split-index fall rate.
        PriorityDeps::ConflictState {
            runner_fall_rate: self.weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(
        id: u32,
        deadline_ms: f64,
        might: &[u32],
        accessed: &[u32],
        service_ms: f64,
    ) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(deadline_ms),
            resource_time: SimDuration::from_ms(80.0),
            items: might.iter().map(|&i| ItemId(i)).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: might.iter().map(|&i| ItemId(i)).collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: accessed.iter().map(|&i| ItemId(i)).collect(),
            written: DataSet::new(),
            service: SimDuration::from_ms(service_ms),
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    fn view(txns: &[Transaction]) -> SystemView<'_> {
        SystemView::new(SimTime::ZERO, txns, SimDuration::from_ms(4.0))
    }

    #[test]
    fn zero_weight_is_pure_edf() {
        let cca = Cca::new(0.0);
        let txns = vec![mk(0, 100.0, &[1], &[1], 50.0), mk(1, 90.0, &[1], &[], 0.0)];
        let v = view(&txns);
        // With w=0 the conflicting partial work is ignored entirely.
        assert_eq!(cca.priority(&txns[1], &v), Priority(-90.0));
        assert_eq!(cca.priority(&txns[0], &v), Priority(-100.0));
    }

    #[test]
    fn penalty_demotes_conflicting_candidate() {
        let cca = Cca::base();
        // Candidate 1 (deadline 90) conflicts with a partial that has 50 ms
        // of service → effective priority -(90 + 54) = -144, now WORSE than
        // the non-conflicting candidate 2 (deadline 120).
        let txns = vec![
            mk(0, 100.0, &[1], &[1], 50.0),
            mk(1, 90.0, &[1], &[], 0.0),
            mk(2, 120.0, &[9], &[], 0.0),
        ];
        let v = view(&txns);
        let p1 = cca.priority(&txns[1], &v);
        let p2 = cca.priority(&txns[2], &v);
        assert_eq!(p1, Priority(-144.0));
        assert_eq!(p2, Priority(-120.0));
        assert!(p2 > p1, "CCA defers the expensive transaction");
    }

    #[test]
    fn weight_scales_penalty_linearly() {
        let txns = vec![mk(0, 100.0, &[1], &[1], 16.0), mk(1, 90.0, &[1], &[], 0.0)];
        let v = view(&txns);
        // penalty = 16 + 4 = 20 ms
        for (w, expect) in [(0.5, -100.0), (1.0, -110.0), (5.0, -190.0)] {
            let p = Cca::new(w).priority(&txns[1], &v);
            assert_eq!(p, Priority(expect), "w={w}");
        }
    }

    #[test]
    fn enables_iowait_restriction() {
        assert!(Cca::base().iowait_restrict());
    }

    #[test]
    fn name_includes_weight() {
        assert_eq!(Cca::new(2.0).name(), "CCA(w=2)");
        assert_eq!(Cca::base().weight(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_rejected() {
        Cca::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinite_weight_rejected() {
        Cca::new(f64::INFINITY);
    }

    #[test]
    fn aborting_victims_raises_runner_priority() {
        // Lemma 1's mechanism: when the runner aborts its victim, the
        // victim leaves the P-list and the runner's penalty drops, so its
        // priority rises.
        let cca = Cca::base();
        let mut txns = vec![mk(0, 100.0, &[1], &[1], 50.0), mk(1, 90.0, &[1], &[], 0.0)];
        let before = {
            let v = view(&txns);
            cca.priority(&txns[1], &v)
        };
        // Abort the victim: it releases its lock (accessed clears).
        txns[0].accessed = DataSet::new();
        txns[0].service = SimDuration::ZERO;
        let after = {
            let v = view(&txns);
            cca.priority(&txns[1], &v)
        };
        assert!(after > before);
        assert_eq!(after, Priority(-90.0));
    }
}
