//! `rtx-core` — the Cost Conscious Approach (CCA) to real-time transaction
//! scheduling, plus the baselines it is evaluated against.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`penalty`] — the *penalty of conflict*: the effective service time
//!   plus rollback time of every partially executed transaction that
//!   scheduling a candidate would destroy (§3.3.1);
//! * [`cca`] — the CCA policy, `Pr(T) = -(deadline + w · penalty)` with
//!   continuous evaluation and the `IOwait-schedule` restriction (§3.3);
//! * [`edf`] — EDF-HP, the baseline the paper measures against;
//! * [`edf_wait`] — the `w → ∞` limit (EDF-Wait);
//! * [`lsf`], [`fcfs`] — additional baselines for the ablation benches;
//! * [`criticality`] — the §6 "multiple criticalness" class wrapper.
//!
//! # Properties (§3.3.4)
//!
//! Under CCA the running transaction is always the highest-priority
//! transaction in the system (Lemma 1), so HP conflict resolution never
//! blocks it: there is **no lock wait** (Theorem 1, deadlock freedom) and
//! no circular abort (Theorem 2). The engine's wound-wait guard makes
//! these theorems *observable*: the `lock_waits` metric is identically 0
//! for every CCA run, which the integration suite asserts.
//!
//! # Example
//!
//! ```
//! use rtx_core::{Cca, EdfHp};
//! use rtx_rtdb::{run_simulation, SimConfig};
//!
//! let mut cfg = SimConfig::mm_base();
//! cfg.run.num_transactions = 100;
//! cfg.run.arrival_rate_tps = 8.0;
//!
//! let cca = run_simulation(&cfg, &Cca::base());
//! let edf = run_simulation(&cfg, &EdfHp);
//! assert_eq!(cca.lock_waits, 0); // Theorem 1: no lock wait under CCA
//! assert_eq!(cca.committed, edf.committed);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cca;
pub mod criticality;
pub mod edf;
pub mod edf_wait;
pub mod fcfs;
pub mod lsf;
pub mod penalty;

pub use cca::Cca;
pub use criticality::Criticality;
pub use edf::EdfHp;
pub use edf_wait::EdfWait;
pub use fcfs::Fcfs;
pub use lsf::Lsf;
pub use penalty::{conflicting_victims, is_unsafe_with, penalty_of_conflict};

use rtx_rtdb::policy::Policy;

/// Construct a policy by name: `"cca"` (optionally `"cca:<weight>"`),
/// `"edf-hp"`, `"edf-wait"`, `"lsf"`, `"fcfs"`. Used by the experiment
/// CLI and the examples.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    let lower = name.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("cca:") {
        let w: f64 = rest.parse().ok()?;
        if !w.is_finite() || w < 0.0 {
            return None;
        }
        return Some(Box::new(Cca::new(w)));
    }
    match lower.as_str() {
        "cca" => Some(Box::new(Cca::base())),
        "edf-hp" | "edf" => Some(Box::new(EdfHp)),
        "edf-wait" => Some(Box::new(EdfWait)),
        "lsf" => Some(Box::new(Lsf)),
        "fcfs" => Some(Box::new(Fcfs)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_registry() {
        assert_eq!(policy_by_name("cca").unwrap().name(), "CCA(w=1)");
        assert_eq!(policy_by_name("cca:2.5").unwrap().name(), "CCA(w=2.5)");
        assert_eq!(policy_by_name("EDF-HP").unwrap().name(), "EDF-HP");
        assert_eq!(policy_by_name("edf").unwrap().name(), "EDF-HP");
        assert_eq!(policy_by_name("edf-wait").unwrap().name(), "EDF-Wait");
        assert_eq!(policy_by_name("lsf").unwrap().name(), "LSF");
        assert_eq!(policy_by_name("fcfs").unwrap().name(), "FCFS");
        assert!(policy_by_name("unknown").is_none());
        assert!(policy_by_name("cca:-1").is_none());
        assert!(policy_by_name("cca:inf").is_none());
    }
}
