//! FCFS: First Come, First Served — the deadline-blind control baseline.
//!
//! Not evaluated in the paper, but useful as a floor: it shows how much of
//! CCA's and EDF's advantage comes from using deadline information at all.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

/// The FCFS baseline: earlier arrival = higher priority.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> &str {
        "FCFS"
    }

    fn priority(&self, txn: &Transaction, _view: &SystemView<'_>) -> Priority {
        Priority(-txn.arrival.as_ms())
    }

    fn depends_on(&self) -> PriorityDeps {
        // The arrival time never changes: compute once, cache forever.
        PriorityDeps::Static
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, arrival_ms: f64) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::from_ms(arrival_ms),
            deadline: SimTime::from_ms(arrival_ms + 100.0),
            resource_time: SimDuration::from_ms(80.0),
            items: vec![ItemId(0)],
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: DataSet::from_items([ItemId(0)]),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    #[test]
    fn earlier_arrival_wins() {
        let txns = vec![mk(0, 5.0), mk(1, 50.0)];
        let v = SystemView::new(SimTime::ZERO, &txns, SimDuration::ZERO);
        assert!(Fcfs.priority(&txns[0], &v) > Fcfs.priority(&txns[1], &v));
        assert_eq!(Fcfs.name(), "FCFS");
    }
}
