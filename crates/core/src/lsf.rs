//! LSF: Least Slack First — a continuously evaluated baseline (§3.2).
//!
//! `slack = deadline − now − remaining service estimate`. The paper argues
//! LSF "is not appropriate for RTDBS because it is not easy to estimate
//! the worst case execution time of a transaction"; we give it the best
//! estimate the simulator can honestly provide — the instance's remaining
//! isolated resource time, prorated by progress — which is *optimistic*
//! (it ignores blocking and restarts), exactly the weakness the paper
//! points at.

use rtx_rtdb::policy::{Policy, Priority, PriorityDeps, SystemView};
use rtx_rtdb::txn::Transaction;

/// The Least Slack First baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lsf;

impl Lsf {
    /// Remaining isolated service estimate, ms.
    fn remaining_estimate_ms(txn: &Transaction) -> f64 {
        let total = txn.total_updates().max(1) as f64;
        let left = (txn.total_updates() - txn.progress) as f64;
        txn.resource_time.as_ms() * (left / total)
    }
}

impl Policy for Lsf {
    fn name(&self) -> &str {
        "LSF"
    }

    fn priority(&self, txn: &Transaction, view: &SystemView<'_>) -> Priority {
        let slack = txn.deadline.as_ms() - view.now.as_ms() - Self::remaining_estimate_ms(txn);
        Priority(-slack)
    }

    fn depends_on(&self) -> PriorityDeps {
        // Slack reads the clock and the transaction's own progress, but
        // no other transaction's state.
        PriorityDeps::TimeAndSelf
    }

    fn time_invariant_key(&self, txn: &Transaction) -> Option<f64> {
        // -slack = now - (deadline - estimate): the clock enters as a
        // plain additive term, so ordering by `estimate - deadline` is
        // ordering by priority at any instant. Changes only when
        // `progress` does (update completion, restart).
        Some(Self::remaining_estimate_ms(txn) - txn.deadline.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::{DataSet, ItemId};
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::{SimDuration, SimTime};

    fn mk(id: u32, deadline_ms: f64, updates: usize, progress: usize) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(deadline_ms),
            resource_time: SimDuration::from_ms(4.0 * updates as f64),
            items: (0..updates as u32).map(ItemId).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: (0..updates as u32).map(ItemId).collect(),
            state: TxnState::Ready,
            progress,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: DataSet::new(),
            written: DataSet::new(),
            service: SimDuration::ZERO,
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    fn view_at(txns: &[Transaction], now_ms: f64) -> SystemView<'_> {
        SystemView::new(SimTime::from_ms(now_ms), txns, SimDuration::ZERO)
    }

    #[test]
    fn smaller_slack_is_higher_priority() {
        // Same deadline, more remaining work → less slack → higher priority.
        let txns = vec![mk(0, 200.0, 10, 0), mk(1, 200.0, 2, 0)];
        let v = view_at(&txns, 0.0);
        assert!(Lsf.priority(&txns[0], &v) > Lsf.priority(&txns[1], &v));
    }

    #[test]
    fn progress_increases_slack() {
        let fresh = mk(0, 200.0, 10, 0);
        let half_done = mk(1, 200.0, 10, 5);
        let txns = vec![fresh, half_done];
        let v = view_at(&txns, 0.0);
        assert!(
            Lsf.priority(&txns[0], &v) > Lsf.priority(&txns[1], &v),
            "completed work shrinks the remaining estimate"
        );
    }

    #[test]
    fn continuous_evaluation_raises_urgency_over_time() {
        let txns = vec![mk(0, 200.0, 10, 0)];
        let early = Lsf.priority(&txns[0], &view_at(&txns, 0.0));
        let late = Lsf.priority(&txns[0], &view_at(&txns, 150.0));
        assert!(late > early, "slack shrinks as the clock advances");
    }

    #[test]
    fn name_and_defaults() {
        assert_eq!(Lsf.name(), "LSF");
        assert!(!Lsf.iowait_restrict());
    }
}
