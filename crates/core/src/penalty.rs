//! The penalty of conflict (§3.3.1).
//!
//! "If the transaction `Ta` which is selected to be run next conflicts
//! with m transactions that are unsafe or conditionally unsafe with `Ta`,
//! we might lose `TL = Σ_{t∈M} (rollback_t + exec_t)` where `M = {t |
//! transaction t is unsafe or conditionally unsafe with Ta}`, `exec_t` is
//! the effective service time of `Tt` and `rollback_t` is the time
//! required to roll back `Tt`."
//!
//! The simulation evaluates safety with the paper's oracle assumption
//! ("whenever we assign new priorities we can decide whether the
//! relationship is safe or unsafe"): a partially executed transaction `t`
//! is unsafe w.r.t. `Ta` iff `hasaccessed(t) ∩ mightaccess(Ta) ≠ ∅` —
//! for straight-line workloads the conditionally-unsafe case never arises.

use rtx_rtdb::policy::SystemView;
use rtx_rtdb::txn::Transaction;
use rtx_sim::time::SimDuration;

// The unsafety test lives with the transaction state (so the engine's
// pair memo shares the single definition its cached verdicts must stay
// bit-identical to); re-exported here, its historical home.
pub use rtx_rtdb::txn::is_unsafe_with;

/// The penalty of conflict of `candidate`: the total effective service
/// time plus rollback time of every partially executed transaction that
/// would have to be rolled back for `candidate` to run to its commit
/// point without interruption.
///
/// The pair tests go through [`SystemView::is_unsafe_with`], so inside
/// the engine they hit the version-gated memo; the sum itself is over
/// exact integer durations, so its value is independent of evaluation
/// order and of whether verdicts came from the cache.
///
/// Invalidation contract (see `PriorityDeps::ConflictState`): other
/// transactions influence this sum only through (a) which partials test
/// unsafe against `candidate` and (b) each such partial's effective
/// service — `candidate`'s own `might_access` is an input to the unsafe
/// test, but the partial's is not. Every term is nonnegative and grows
/// monotonically under access growth and clock advance, so those events
/// only *raise* the penalty (lower the priority); only a partial's
/// clear shrinks it. The engine exploits exactly this shape: eager
/// per-transaction stamp bumps on clears, lazy stale-high tolerance for
/// everything else.
pub fn penalty_of_conflict(candidate: &Transaction, view: &SystemView<'_>) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for t in view.partially_executed(candidate.id) {
        if view.is_unsafe_with(t, candidate) {
            total += t.effective_service(view.now) + view.abort_cost;
        }
    }
    total
}

/// The number of transactions `candidate` would destroy (the `m` above).
pub fn conflicting_victims(candidate: &Transaction, view: &SystemView<'_>) -> usize {
    view.partially_executed(candidate.id)
        .filter(|t| view.is_unsafe_with(t, candidate))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_preanalysis::sets::DataSet;
    use rtx_preanalysis::table::TypeId;
    use rtx_preanalysis::ItemId;
    use rtx_rtdb::txn::{Stage, TxnId, TxnState};
    use rtx_sim::time::SimTime;

    fn mk(id: u32, might: &[u32], accessed: &[u32], service_ms: f64) -> Transaction {
        Transaction {
            id: TxnId(id),
            ty: TypeId(0),
            arrival: SimTime::ZERO,
            deadline: SimTime::from_ms(100.0),
            resource_time: SimDuration::from_ms(80.0),
            items: might.iter().map(|&i| ItemId(i)).collect(),
            io_pattern: vec![],
            modes: Vec::new(),
            update_time: SimDuration::from_ms(4.0),
            might_access: might.iter().map(|&i| ItemId(i)).collect(),
            state: TxnState::Ready,
            progress: 0,
            stage: Stage::Lock,
            cpu_left: SimDuration::ZERO,
            burst_start: SimTime::ZERO,
            accessed: accessed.iter().map(|&i| ItemId(i)).collect(),
            written: DataSet::new(),
            service: SimDuration::from_ms(service_ms),
            restarts: 0,
            waiting_for: None,
            decision: None,
            criticality: 0,
            doomed: false,
            doomed_at: SimTime::ZERO,
            io_retries: 0,
            retry_token: 0,
            finish: None,
        }
    }

    fn view(txns: &[Transaction]) -> SystemView<'_> {
        SystemView::new(SimTime::ZERO, txns, SimDuration::from_ms(4.0))
    }

    #[test]
    fn unsafe_iff_accessed_overlaps_might() {
        let partial = mk(1, &[1, 2, 3], &[1], 8.0);
        let cand_overlap = mk(2, &[1, 9], &[], 0.0);
        let cand_disjoint = mk(3, &[8, 9], &[], 0.0);
        assert!(is_unsafe_with(&partial, &cand_overlap));
        assert!(!is_unsafe_with(&partial, &cand_disjoint));
    }

    #[test]
    fn future_only_overlap_is_safe() {
        // The partial txn *will* access item 5 but hasn't yet: blocking
        // suffices, no rollback needed → no penalty.
        let partial = mk(1, &[1, 5], &[1], 8.0);
        let cand = mk(2, &[5], &[], 0.0);
        assert!(!is_unsafe_with(&partial, &cand));
    }

    #[test]
    fn penalty_sums_service_plus_rollback() {
        let txns = vec![
            mk(0, &[1], &[1], 10.0), // victim 1: 10 + 4
            mk(1, &[2], &[2], 6.0),  // victim 2: 6 + 4
            mk(2, &[3], &[3], 99.0), // disjoint from candidate
            mk(3, &[1, 2, 9], &[], 0.0),
        ];
        let v = view(&txns);
        let p = penalty_of_conflict(&txns[3], &v);
        assert_eq!(p, SimDuration::from_ms(24.0));
        assert_eq!(conflicting_victims(&txns[3], &v), 2);
    }

    #[test]
    fn penalty_excludes_self() {
        let txns = vec![mk(0, &[1], &[1], 10.0)];
        let v = view(&txns);
        assert_eq!(penalty_of_conflict(&txns[0], &v), SimDuration::ZERO);
    }

    #[test]
    fn fresh_transactions_cost_nothing() {
        // A conflicting transaction that holds no locks is not in the
        // P-list: aborting it destroys nothing.
        let txns = vec![mk(0, &[1], &[], 10.0), mk(1, &[1], &[], 0.0)];
        let v = view(&txns);
        assert_eq!(penalty_of_conflict(&txns[1], &v), SimDuration::ZERO);
        assert_eq!(conflicting_victims(&txns[1], &v), 0);
    }

    #[test]
    fn committed_transactions_cost_nothing() {
        let mut done = mk(0, &[1], &[1], 10.0);
        done.state = TxnState::Committed;
        let txns = vec![done, mk(1, &[1], &[], 0.0)];
        let v = view(&txns);
        assert_eq!(penalty_of_conflict(&txns[1], &v), SimDuration::ZERO);
    }
}
