//! `rtx` — cost-conscious real-time transaction scheduling.
//!
//! A from-scratch Rust reproduction of *Hong, Johnson & Chakravarthy,
//! "Real-Time Transaction Scheduling: A Cost Conscious Approach"*
//! (UF-CIS-TR-92-043 / SIGMOD 1993): the CCA scheduling policy, the
//! transaction pre-analysis it builds on, the EDF-HP / EDF-Wait / LSF /
//! FCFS baselines, and the discrete-event RTDB simulator the paper's
//! evaluation ran on.
//!
//! This umbrella crate re-exports the five underlying crates:
//!
//! * [`sim`] (`rtx-sim`) — deterministic discrete-event kernel;
//! * [`preanalysis`] (`rtx-preanalysis`) — transaction trees, decision
//!   points, conflict & safety relations;
//! * [`rtdb`] (`rtx-rtdb`) — workload generation, locks, CPU & disk
//!   models, the execution engine and metrics;
//! * [`policies`] (`rtx-core`) — CCA and the baselines;
//! * [`serve`] (`rtx-serve`) — the wall-clock serving front-end with
//!   live miss-ratio/latency metrics (see `docs/SERVING.md`).
//!
//! # Quickstart
//!
//! ```
//! use rtx::policies::{Cca, EdfHp};
//! use rtx::rtdb::{run_simulation, SimConfig};
//!
//! // Table 1 parameters, shortened run.
//! let mut cfg = SimConfig::mm_base();
//! cfg.run.arrival_rate_tps = 8.0;
//! cfg.run.num_transactions = 200;
//!
//! let edf = run_simulation(&cfg, &EdfHp);
//! let cca = run_simulation(&cfg, &Cca::base());
//!
//! // Soft deadlines: everything commits under both policies…
//! assert_eq!(edf.committed, 200);
//! assert_eq!(cca.committed, 200);
//! // …and CCA never waits for a lock (Theorem 1).
//! assert_eq!(cca.lock_waits, 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use rtx_core as policies;
pub use rtx_preanalysis as preanalysis;
pub use rtx_rtdb as rtdb;
pub use rtx_serve as serve;
pub use rtx_sim as sim;

/// The most commonly used items in one import.
pub mod prelude {
    pub use rtx_core::{Cca, EdfHp, EdfWait, Fcfs, Lsf};
    pub use rtx_preanalysis::{
        conflict, safety, AnalysisSet, Conflict, Cursor, DataSet, ItemId, Position, Program,
        ProgramBuilder, Safety, TransactionTree,
    };
    pub use rtx_rtdb::{
        run_replications, run_simulation, Policy, Priority, RunSummary, SimConfig, SystemView,
        Transaction,
    };
    pub use rtx_sim::{SimDuration, SimTime};
}
