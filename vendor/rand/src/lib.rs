//! Offline stub of the `rand` crate.
//!
//! The container this repository builds in has no network access to a
//! crates.io mirror, so the workspace vendors the *tiny* slice of the
//! `rand` 0.8 API it actually uses: the [`RngCore`] trait (implemented by
//! `rtx_sim::rng::Xoshiro256`) and the [`Error`] type its fallible method
//! returns. The trait signatures match `rand` 0.8 exactly, so swapping the
//! real crate back in is a one-line `Cargo.toml` change.

#![warn(missing_docs)]

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The in-repo generators are infallible, so this is never constructed;
/// it exists to keep the `rand` 0.8 signatures intact.
#[derive(Debug)]
pub struct Error {
    _private: (),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as defined by `rand` 0.8.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fill `dest` with random data, reporting failure via `Error`.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
