//! Offline stub of the `criterion` benchmark harness.
//!
//! The build container has no crates.io mirror, so this crate keeps the
//! workspace's `benches/` targets compiling and runnable without the real
//! dependency. It mirrors the criterion 0.5 API surface the benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `black_box`,
//! `BenchmarkId`) but performs no statistical analysis: each benchmark
//! body runs a small fixed number of iterations and the mean wall-clock
//! time per iteration is printed. Good enough for a smoke signal and for
//! keeping the real measurement code honest; swap the real crate back in
//! for publishable numbers.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations per benchmark. A handful, not thousands: the stub reports a
/// coarse per-iteration mean rather than a distribution.
const STUB_ITERS: u32 = 3;

/// Top-level benchmark driver (stub).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accept (and ignore) CLI configuration, as the real crate does.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accept (and ignore) a sample-size hint.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accept (and ignore) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed / bencher.iters;
        println!(
            "bench {label:<48} ~{per_iter:>10.1?}/iter (stub, n={})",
            bencher.iters
        );
    } else {
        println!("bench {label:<48} (no measurement)");
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a small fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = STUB_ITERS;
    }
}

/// Identifier for one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Define a benchmark group entry point, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
