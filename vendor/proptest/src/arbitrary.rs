//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (mirrors `proptest::prelude::any`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for one primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::for_case(8, 0);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
