//! `Option` strategies (`proptest::option::{of, weighted}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<S::Value>` with a fixed `Some` probability.
pub struct OptionStrategy<S> {
    inner: S,
    some_probability: f64,
}

/// `Some` with probability 0.5, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    weighted(0.5, inner)
}

/// `Some` with probability `some_probability`, `None` otherwise.
pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
    assert!(
        (0.0..=1.0).contains(&some_probability),
        "probability out of range"
    );
    OptionStrategy {
        inner,
        some_probability,
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.unit_f64() < self.some_probability {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn weighted_respects_extremes() {
        let mut rng = TestRng::for_case(11, 0);
        let always = weighted(1.0, Just(1u8));
        let never = weighted(0.0, Just(1u8));
        for _ in 0..100 {
            assert_eq!(always.generate(&mut rng), Some(1));
            assert_eq!(never.generate(&mut rng), None);
        }
    }

    #[test]
    fn of_hits_both_variants() {
        let s = of(Just(1u8));
        let mut rng = TestRng::for_case(12, 0);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50, "some={some} none={none}");
    }
}
